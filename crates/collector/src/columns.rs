//! Columnar (struct-of-arrays) storage for the high-volume tables.
//!
//! Seven tables dominate a study's memory footprint — the four
//! consent-gated Traffic tables (per-minute packet statistics, flows,
//! DNS samples, MAC sightings) plus the consent-free WiFi scans,
//! associations, and latency probes that *every* home emits: the
//! 197-day deployment materializes tens of millions of them, and scaling
//! the deployment to 10k+ homes multiplies that by two orders of
//! magnitude. Row-of-structs `Vec<Record>` storage pays padding and full
//! `u64` width for every field; this module stores each table as one
//! column per field, grouped per router, with narrow encodings:
//!
//! * **timestamps** ([`TimeCol`]) — delta-from-previous as `u32`
//!   microseconds, with a sentinel escape to a 64-bit side array for
//!   backward jumps or gaps over ~71 minutes. Per-router record streams
//!   are chronological, so escapes are rare;
//! * **counters** ([`NarrowCol`]) — `u32` fast lane with the same
//!   sentinel escape for values that need 64 bits;
//! * **domains** ([`DomainPool`]) — per-router interning of
//!   [`ReportedDomain`] values to `u32` ids (homes revisit the same
//!   handful of domains all study long);
//! * **everything small** (`AnonMac`, ports, protocols, flags) — plain
//!   dense vectors at natural width.
//!
//! The encodings are *pure functions of the pushed record sequence*, so
//! `PartialEq` on a table equals record-sequence equality — determinism
//! tests can keep comparing snapshots directly. Iteration rebuilds
//! records by value in (router, arrival) order, which after a snapshot
//! merge is exactly the (router, time)-sorted global order the legacy row
//! vectors had; callers iterate (`for r in &data.flows`) without caring
//! that rows no longer exist in memory.
//!
//! Under a spill budget ([`crate::spill`]) a table may additionally own a
//! disk-backed part: per-router blocks of these same columns in a merged
//! segment file, framed little-endian by the `encode`/`decode` pairs in
//! this module. Per-router iteration then streams the spilled head from
//! disk before the resident tail; flat iteration walks the ordered union
//! of resident and spilled routers, so every consumer sees the identical
//! record sequence whether or not the study spilled.

use crate::spill::{
    put_u16, put_u32, put_u64, put_u8, read_block, BlockRef, Cursor, SegmentStore, SpillError,
    TableToc,
};
use firmware::anonymize::{AnonMac, ReportedDomain};
use firmware::latency::LatencyRecord;
use firmware::records::{
    ApSighting, AssociationRecord, DnsSampleRecord, FlowRecord, MacSightingRecord, Medium,
    NatProbeRecord, NatType, PacketStatsRecord, PunchTrialRecord, RouterId, WifiScanRecord,
};
use simnet::dns::DomainName;
use simnet::packet::IpProtocol;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::Band;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The escape marker in a narrow lane: the real value lives in the wide
/// side array. Chosen at the top of the `u32` range so every in-range
/// value encodes as itself.
const ESCAPE: u32 = u32::MAX;

/// A timestamp column: `u32` microsecond deltas from the previous entry,
/// escaping to an absolute 64-bit side array when a record jumps backward
/// or more than `u32::MAX - 1` microseconds (~71 minutes) forward.
/// Lossless for any input order; 4 bytes per record in the steady state.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeCol {
    enc: Vec<u32>,
    wide: Vec<u64>,
    /// Encoder state: absolute microseconds of the last appended entry.
    last: u64,
}

impl TimeCol {
    /// An empty column (`const`, so shared static empties are possible).
    pub const fn empty() -> TimeCol {
        TimeCol { enc: Vec::new(), wide: Vec::new(), last: 0 }
    }

    /// Append one timestamp.
    pub fn append(&mut self, t: SimTime) {
        let us = t.as_micros();
        let delta = us.wrapping_sub(self.last);
        if us >= self.last && delta < u64::from(ESCAPE) {
            self.enc.push(delta as u32);
        } else {
            self.enc.push(ESCAPE);
            self.wide.push(us);
        }
        self.last = us;
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// Sequential decode of every timestamp, in append order.
    pub fn iter(&self) -> TimeColIter<'_> {
        TimeColIter { enc: self.enc.iter(), wide: self.wide.iter(), last: 0 }
    }

    /// Heap bytes held by the column.
    pub fn heap_bytes(&self) -> usize {
        self.enc.capacity() * 4 + self.wide.capacity() * 8
    }

    /// Append the little-endian segment framing of this column.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.last);
        put_u64(out, self.enc.len() as u64);
        for &v in &self.enc {
            put_u32(out, v);
        }
        put_u64(out, self.wide.len() as u64);
        for &v in &self.wide {
            put_u64(out, v);
        }
    }

    /// Decode a column previously written by [`TimeCol::encode`].
    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<TimeCol, SpillError> {
        let last = cur.u64()?;
        let n = cur.len_prefix(4)?;
        let mut enc = Vec::with_capacity(n);
        for _ in 0..n {
            enc.push(cur.u32()?);
        }
        let w = cur.len_prefix(8)?;
        let mut wide = Vec::with_capacity(w);
        for _ in 0..w {
            wide.push(cur.u64()?);
        }
        if enc.iter().filter(|&&e| e == ESCAPE).count() != wide.len() {
            return Err(SpillError::Corrupt("time column escape/wide mismatch"));
        }
        Ok(TimeCol { enc, wide, last })
    }
}

impl Default for TimeCol {
    fn default() -> TimeCol {
        TimeCol::empty()
    }
}

/// Sequential decoder over a [`TimeCol`].
#[derive(Debug, Clone)]
pub struct TimeColIter<'a> {
    enc: std::slice::Iter<'a, u32>,
    wide: std::slice::Iter<'a, u64>,
    last: u64,
}

impl Iterator for TimeColIter<'_> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let &e = self.enc.next()?;
        self.last = if e == ESCAPE {
            self.wide.next().copied()?
        } else {
            self.last + u64::from(e)
        };
        Some(SimTime::from_micros(self.last))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.enc.size_hint()
    }
}

impl ExactSizeIterator for TimeColIter<'_> {}

/// A `u64` value column with a `u32` fast lane: values below the escape
/// threshold store in 4 bytes, the rest go to a 64-bit side array. Byte
/// and packet counts per one-minute window almost always fit.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowCol {
    enc: Vec<u32>,
    wide: Vec<u64>,
}

impl NarrowCol {
    /// An empty column.
    pub const fn empty() -> NarrowCol {
        NarrowCol { enc: Vec::new(), wide: Vec::new() }
    }

    /// Append one value.
    pub fn append(&mut self, v: u64) {
        if v < u64::from(ESCAPE) {
            self.enc.push(v as u32);
        } else {
            self.enc.push(ESCAPE);
            self.wide.push(v);
        }
    }

    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.enc.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// Sequential decode of every value, in append order.
    pub fn iter(&self) -> NarrowColIter<'_> {
        NarrowColIter { enc: self.enc.iter(), wide: self.wide.iter() }
    }

    /// Heap bytes held by the column.
    pub fn heap_bytes(&self) -> usize {
        self.enc.capacity() * 4 + self.wide.capacity() * 8
    }

    /// Append the little-endian segment framing of this column.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.enc.len() as u64);
        for &v in &self.enc {
            put_u32(out, v);
        }
        put_u64(out, self.wide.len() as u64);
        for &v in &self.wide {
            put_u64(out, v);
        }
    }

    /// Decode a column previously written by [`NarrowCol::encode`].
    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<NarrowCol, SpillError> {
        let n = cur.len_prefix(4)?;
        let mut enc = Vec::with_capacity(n);
        for _ in 0..n {
            enc.push(cur.u32()?);
        }
        let w = cur.len_prefix(8)?;
        let mut wide = Vec::with_capacity(w);
        for _ in 0..w {
            wide.push(cur.u64()?);
        }
        if enc.iter().filter(|&&e| e == ESCAPE).count() != wide.len() {
            return Err(SpillError::Corrupt("narrow column escape/wide mismatch"));
        }
        Ok(NarrowCol { enc, wide })
    }
}

impl Default for NarrowCol {
    fn default() -> NarrowCol {
        NarrowCol::empty()
    }
}

/// Sequential decoder over a [`NarrowCol`].
#[derive(Debug, Clone)]
pub struct NarrowColIter<'a> {
    enc: std::slice::Iter<'a, u32>,
    wide: std::slice::Iter<'a, u64>,
}

impl Iterator for NarrowColIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let &e = self.enc.next()?;
        if e == ESCAPE {
            self.wide.next().copied()
        } else {
            Some(u64::from(e))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.enc.size_hint()
    }
}

impl ExactSizeIterator for NarrowColIter<'_> {}

/// A per-router domain interner: each distinct [`ReportedDomain`] is
/// stored once and referenced by a dense `u32` id. Equality compares the
/// pool only — first-appearance order is a pure function of the pushed
/// sequence, and the lookup map is derivable from the pool.
#[derive(Debug, Clone)]
pub struct DomainPool {
    pool: Vec<ReportedDomain>,
    lookup: BTreeMap<ReportedDomain, u32>,
}

impl DomainPool {
    /// An empty pool.
    pub const fn empty() -> DomainPool {
        DomainPool { pool: Vec::new(), lookup: BTreeMap::new() }
    }

    /// The id for a domain, interning it on first sight.
    pub fn intern(&mut self, domain: &ReportedDomain) -> u32 {
        if let Some(&id) = self.lookup.get(domain) {
            return id;
        }
        let id = self.pool.len() as u32;
        // simlint: allow(hot-path-transitive) — first-sight interning clones once per unique domain, amortized away on the per-record path
        self.pool.push(domain.clone());
        // simlint: allow(hot-path-transitive) — second copy of the same first-sight-only clone
        self.lookup.insert(domain.clone(), id);
        id
    }

    /// The domain behind an id issued by this pool.
    ///
    /// # Panics
    /// If the id was not issued by this pool (a column/pool pairing bug).
    pub fn get(&self, id: u32) -> &ReportedDomain {
        &self.pool[id as usize]
    }

    /// Distinct domains interned.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Append the little-endian segment framing of the pool, in id order
    /// (so decoding re-interns into the identical pool).
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.pool.len() as u64);
        for d in &self.pool {
            match d {
                ReportedDomain::Clear(name) => {
                    put_u8(out, 0);
                    let s = name.as_str().as_bytes();
                    put_u32(out, s.len() as u32);
                    out.extend_from_slice(s);
                }
                ReportedDomain::Obfuscated(token) => {
                    put_u8(out, 1);
                    put_u64(out, *token);
                }
            }
        }
    }

    /// Decode a pool previously written by [`DomainPool::encode`].
    pub(crate) fn decode(cur: &mut Cursor<'_>) -> Result<DomainPool, SpillError> {
        let n = cur.len_prefix(1)?;
        let mut pool = DomainPool::empty();
        for _ in 0..n {
            let domain = match cur.u8()? {
                0 => {
                    let len = cur.u32()? as usize;
                    let bytes = cur.take(len)?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| SpillError::Corrupt("domain name is not utf-8"))?;
                    let name = DomainName::new(s)
                        .map_err(|_| SpillError::Corrupt("invalid domain name"))?;
                    ReportedDomain::Clear(name)
                }
                1 => ReportedDomain::Obfuscated(cur.u64()?),
                _ => return Err(SpillError::Corrupt("unknown domain tag")),
            };
            pool.intern(&domain);
        }
        if pool.len() != n {
            return Err(SpillError::Corrupt("duplicate domain in pool"));
        }
        Ok(pool)
    }
}

/// Encode a dense [`AnonMac`] column.
fn encode_macs(out: &mut Vec<u8>, macs: &[AnonMac]) {
    put_u64(out, macs.len() as u64);
    for m in macs {
        put_u32(out, m.oui);
        put_u32(out, m.suffix_hash);
    }
}

/// Decode a dense [`AnonMac`] column.
fn decode_macs(cur: &mut Cursor<'_>) -> Result<Vec<AnonMac>, SpillError> {
    let n = cur.len_prefix(8)?;
    let mut macs = Vec::with_capacity(n);
    for _ in 0..n {
        let oui = cur.u32()?;
        let suffix_hash = cur.u32()?;
        macs.push(AnonMac { oui, suffix_hash });
    }
    Ok(macs)
}

impl Default for DomainPool {
    fn default() -> DomainPool {
        DomainPool::empty()
    }
}

impl PartialEq for DomainPool {
    fn eq(&self, other: &DomainPool) -> bool {
        self.pool == other.pool
    }
}

/// Columns of one router's [`PacketStatsRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct PacketStatsCols {
    at: TimeCol,
    bytes_down: NarrowCol,
    bytes_up: NarrowCol,
    pkts_down: NarrowCol,
    pkts_up: NarrowCol,
    peak_down_1s: NarrowCol,
    peak_up_1s: NarrowCol,
}

impl PacketStatsCols {
    const fn empty() -> PacketStatsCols {
        PacketStatsCols {
            at: TimeCol::empty(),
            bytes_down: NarrowCol::empty(),
            bytes_up: NarrowCol::empty(),
            pkts_down: NarrowCol::empty(),
            pkts_up: NarrowCol::empty(),
            peak_down_1s: NarrowCol::empty(),
            peak_up_1s: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &PacketStatsRecord) {
        self.at.append(r.at);
        self.bytes_down.append(r.bytes_down);
        self.bytes_up.append(r.bytes_up);
        self.pkts_down.append(r.pkts_down);
        self.pkts_up.append(r.pkts_up);
        self.peak_down_1s.append(r.peak_down_1s);
        self.peak_up_1s.append(r.peak_up_1s);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentPacketStats<'_> {
        ResidentPacketStats {
            router,
            at: self.at.iter(),
            bytes_down: self.bytes_down.iter(),
            bytes_up: self.bytes_up.iter(),
            pkts_down: self.pkts_down.iter(),
            pkts_up: self.pkts_up.iter(),
            peak_down_1s: self.peak_down_1s.iter(),
            peak_up_1s: self.peak_up_1s.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.bytes_down.heap_bytes()
            + self.bytes_up.heap_bytes()
            + self.pkts_down.heap_bytes()
            + self.pkts_up.heap_bytes()
            + self.peak_down_1s.heap_bytes()
            + self.peak_up_1s.heap_bytes()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.bytes_down.encode(out);
        self.bytes_up.encode(out);
        self.pkts_down.encode(out);
        self.pkts_up.encode(out);
        self.peak_down_1s.encode(out);
        self.peak_up_1s.encode(out);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<PacketStatsCols, SpillError> {
        let cols = PacketStatsCols {
            at: TimeCol::decode(cur)?,
            bytes_down: NarrowCol::decode(cur)?,
            bytes_up: NarrowCol::decode(cur)?,
            pkts_down: NarrowCol::decode(cur)?,
            pkts_up: NarrowCol::decode(cur)?,
            peak_down_1s: NarrowCol::decode(cur)?,
            peak_up_1s: NarrowCol::decode(cur)?,
        };
        let n = cols.at.len();
        if [
            cols.bytes_down.len(),
            cols.bytes_up.len(),
            cols.pkts_down.len(),
            cols.pkts_up.len(),
            cols.peak_down_1s.len(),
            cols.peak_up_1s.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(SpillError::Corrupt("packet-stats column length mismatch"));
        }
        Ok(cols)
    }
}

impl Default for PacketStatsCols {
    fn default() -> PacketStatsCols {
        PacketStatsCols::empty()
    }
}

/// One router's packet statistics, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentPacketStats<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    bytes_down: NarrowColIter<'a>,
    bytes_up: NarrowColIter<'a>,
    pkts_down: NarrowColIter<'a>,
    pkts_up: NarrowColIter<'a>,
    peak_down_1s: NarrowColIter<'a>,
    peak_up_1s: NarrowColIter<'a>,
}

impl Iterator for ResidentPacketStats<'_> {
    type Item = PacketStatsRecord;

    fn next(&mut self) -> Option<PacketStatsRecord> {
        Some(PacketStatsRecord {
            router: self.router,
            at: self.at.next()?,
            bytes_down: self.bytes_down.next()?,
            bytes_up: self.bytes_up.next()?,
            pkts_down: self.pkts_down.next()?,
            pkts_up: self.pkts_up.next()?,
            peak_down_1s: self.peak_down_1s.next()?,
            peak_up_1s: self.peak_up_1s.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentPacketStats<'_> {}

/// Columns of one router's [`FlowRecord`] stream. `ended` is the
/// chronological axis (records are emitted at completion); `started`
/// stores as the flow duration relative to `ended`, which is small for
/// real flows and losslessly wrapping for arbitrary test input.
#[derive(Debug, Clone, PartialEq)]
struct FlowCols {
    ended: TimeCol,
    dur: NarrowCol,
    device: Vec<AnonMac>,
    remote_ip_hash: Vec<u64>,
    remote_port: Vec<u16>,
    proto: Vec<IpProtocol>,
    domain: Vec<u32>,
    domains: DomainPool,
    bytes_down: NarrowCol,
    bytes_up: NarrowCol,
}

impl FlowCols {
    const fn empty() -> FlowCols {
        FlowCols {
            ended: TimeCol::empty(),
            dur: NarrowCol::empty(),
            device: Vec::new(),
            remote_ip_hash: Vec::new(),
            remote_port: Vec::new(),
            proto: Vec::new(),
            domain: Vec::new(),
            domains: DomainPool::empty(),
            bytes_down: NarrowCol::empty(),
            bytes_up: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &FlowRecord) {
        self.ended.append(r.ended);
        self.dur.append(r.ended.as_micros().wrapping_sub(r.started.as_micros()));
        self.device.push(r.device);
        self.remote_ip_hash.push(r.remote_ip_hash);
        self.remote_port.push(r.remote_port);
        self.proto.push(r.proto);
        let id = self.domains.intern(&r.domain);
        self.domain.push(id);
        self.bytes_down.append(r.bytes_down);
        self.bytes_up.append(r.bytes_up);
    }

    fn len(&self) -> usize {
        self.ended.len()
    }

    fn iter(&self, router: RouterId) -> ResidentFlows<'_> {
        ResidentFlows {
            router,
            ended: self.ended.iter(),
            dur: self.dur.iter(),
            device: self.device.iter(),
            remote_ip_hash: self.remote_ip_hash.iter(),
            remote_port: self.remote_port.iter(),
            proto: self.proto.iter(),
            domain: self.domain.iter(),
            domains: &self.domains,
            bytes_down: self.bytes_down.iter(),
            bytes_up: self.bytes_up.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.ended.heap_bytes()
            + self.dur.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.remote_ip_hash.capacity() * 8
            + self.remote_port.capacity() * 2
            + self.proto.capacity()
            + self.domain.capacity() * 4
            + self.bytes_down.heap_bytes()
            + self.bytes_up.heap_bytes()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.ended.encode(out);
        self.dur.encode(out);
        encode_macs(out, &self.device);
        put_u64(out, self.remote_ip_hash.len() as u64);
        for &v in &self.remote_ip_hash {
            put_u64(out, v);
        }
        put_u64(out, self.remote_port.len() as u64);
        for &v in &self.remote_port {
            put_u16(out, v);
        }
        put_u64(out, self.proto.len() as u64);
        for &p in &self.proto {
            put_u8(out, u8::from(p));
        }
        put_u64(out, self.domain.len() as u64);
        for &v in &self.domain {
            put_u32(out, v);
        }
        self.domains.encode(out);
        self.bytes_down.encode(out);
        self.bytes_up.encode(out);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<FlowCols, SpillError> {
        let ended = TimeCol::decode(cur)?;
        let dur = NarrowCol::decode(cur)?;
        let device = decode_macs(cur)?;
        let n_ip = cur.len_prefix(8)?;
        let mut remote_ip_hash = Vec::with_capacity(n_ip);
        for _ in 0..n_ip {
            remote_ip_hash.push(cur.u64()?);
        }
        let n_port = cur.len_prefix(2)?;
        let mut remote_port = Vec::with_capacity(n_port);
        for _ in 0..n_port {
            remote_port.push(cur.u16()?);
        }
        let n_proto = cur.len_prefix(1)?;
        let mut proto = Vec::with_capacity(n_proto);
        for _ in 0..n_proto {
            proto.push(IpProtocol::from(cur.u8()?));
        }
        let n_dom = cur.len_prefix(4)?;
        let mut domain = Vec::with_capacity(n_dom);
        for _ in 0..n_dom {
            domain.push(cur.u32()?);
        }
        let domains = DomainPool::decode(cur)?;
        let bytes_down = NarrowCol::decode(cur)?;
        let bytes_up = NarrowCol::decode(cur)?;
        let n = ended.len();
        if [
            dur.len(),
            device.len(),
            remote_ip_hash.len(),
            remote_port.len(),
            proto.len(),
            domain.len(),
            bytes_down.len(),
            bytes_up.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(SpillError::Corrupt("flow column length mismatch"));
        }
        if domain.iter().any(|&id| id as usize >= domains.len()) {
            return Err(SpillError::Corrupt("flow domain id out of pool range"));
        }
        Ok(FlowCols {
            ended,
            dur,
            device,
            remote_ip_hash,
            remote_port,
            proto,
            domain,
            domains,
            bytes_down,
            bytes_up,
        })
    }
}

impl Default for FlowCols {
    fn default() -> FlowCols {
        FlowCols::empty()
    }
}

/// One router's flows, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentFlows<'a> {
    router: RouterId,
    ended: TimeColIter<'a>,
    dur: NarrowColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    remote_ip_hash: std::slice::Iter<'a, u64>,
    remote_port: std::slice::Iter<'a, u16>,
    proto: std::slice::Iter<'a, IpProtocol>,
    domain: std::slice::Iter<'a, u32>,
    domains: &'a DomainPool,
    bytes_down: NarrowColIter<'a>,
    bytes_up: NarrowColIter<'a>,
}

impl Iterator for ResidentFlows<'_> {
    type Item = FlowRecord;

    fn next(&mut self) -> Option<FlowRecord> {
        let ended = self.ended.next()?;
        let dur = self.dur.next()?;
        Some(FlowRecord {
            router: self.router,
            started: SimTime::from_micros(ended.as_micros().wrapping_sub(dur)),
            ended,
            device: self.device.next().copied()?,
            remote_ip_hash: self.remote_ip_hash.next().copied()?,
            remote_port: self.remote_port.next().copied()?,
            proto: self.proto.next().copied()?,
            domain: self.domains.get(*self.domain.next()?).clone(),
            bytes_down: self.bytes_down.next()?,
            bytes_up: self.bytes_up.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ended.size_hint()
    }
}

impl ExactSizeIterator for ResidentFlows<'_> {}

/// Columns of one router's [`DnsSampleRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct DnsCols {
    at: TimeCol,
    device: Vec<AnonMac>,
    name: Vec<u32>,
    names: DomainPool,
    cname_links: Vec<u8>,
    resolved: Vec<bool>,
}

impl DnsCols {
    const fn empty() -> DnsCols {
        DnsCols {
            at: TimeCol::empty(),
            device: Vec::new(),
            name: Vec::new(),
            names: DomainPool::empty(),
            cname_links: Vec::new(),
            resolved: Vec::new(),
        }
    }

    fn append(&mut self, r: &DnsSampleRecord) {
        self.at.append(r.at);
        self.device.push(r.device);
        let id = self.names.intern(&r.name);
        self.name.push(id);
        self.cname_links.push(r.cname_links);
        self.resolved.push(r.resolved);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentDns<'_> {
        ResidentDns {
            router,
            at: self.at.iter(),
            device: self.device.iter(),
            name: self.name.iter(),
            names: &self.names,
            cname_links: self.cname_links.iter(),
            resolved: self.resolved.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.name.capacity() * 4
            + self.cname_links.capacity()
            + self.resolved.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        encode_macs(out, &self.device);
        put_u64(out, self.name.len() as u64);
        for &v in &self.name {
            put_u32(out, v);
        }
        self.names.encode(out);
        put_u64(out, self.cname_links.len() as u64);
        for &v in &self.cname_links {
            put_u8(out, v);
        }
        put_u64(out, self.resolved.len() as u64);
        for &v in &self.resolved {
            put_u8(out, u8::from(v));
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<DnsCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let device = decode_macs(cur)?;
        let n_name = cur.len_prefix(4)?;
        let mut name = Vec::with_capacity(n_name);
        for _ in 0..n_name {
            name.push(cur.u32()?);
        }
        let names = DomainPool::decode(cur)?;
        let n_links = cur.len_prefix(1)?;
        let mut cname_links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            cname_links.push(cur.u8()?);
        }
        let n_res = cur.len_prefix(1)?;
        let mut resolved = Vec::with_capacity(n_res);
        for _ in 0..n_res {
            resolved.push(match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SpillError::Corrupt("dns resolved flag out of range")),
            });
        }
        let n = at.len();
        if [device.len(), name.len(), cname_links.len(), resolved.len()]
            .iter()
            .any(|&l| l != n)
        {
            return Err(SpillError::Corrupt("dns column length mismatch"));
        }
        if name.iter().any(|&id| id as usize >= names.len()) {
            return Err(SpillError::Corrupt("dns name id out of pool range"));
        }
        Ok(DnsCols { at, device, name, names, cname_links, resolved })
    }
}

impl Default for DnsCols {
    fn default() -> DnsCols {
        DnsCols::empty()
    }
}

/// One router's DNS samples, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentDns<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    name: std::slice::Iter<'a, u32>,
    names: &'a DomainPool,
    cname_links: std::slice::Iter<'a, u8>,
    resolved: std::slice::Iter<'a, bool>,
}

impl Iterator for ResidentDns<'_> {
    type Item = DnsSampleRecord;

    fn next(&mut self) -> Option<DnsSampleRecord> {
        Some(DnsSampleRecord {
            router: self.router,
            at: self.at.next()?,
            device: self.device.next().copied()?,
            name: self.names.get(*self.name.next()?).clone(),
            cname_links: self.cname_links.next().copied()?,
            resolved: self.resolved.next().copied()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentDns<'_> {}

/// Columns of one router's [`MacSightingRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct MacCols {
    first_seen: TimeCol,
    device: Vec<AnonMac>,
    bytes_total: NarrowCol,
}

impl MacCols {
    const fn empty() -> MacCols {
        MacCols {
            first_seen: TimeCol::empty(),
            device: Vec::new(),
            bytes_total: NarrowCol::empty(),
        }
    }

    fn append(&mut self, r: &MacSightingRecord) {
        self.first_seen.append(r.first_seen);
        self.device.push(r.device);
        self.bytes_total.append(r.bytes_total);
    }

    fn len(&self) -> usize {
        self.first_seen.len()
    }

    fn iter(&self, router: RouterId) -> ResidentMacs<'_> {
        ResidentMacs {
            router,
            first_seen: self.first_seen.iter(),
            device: self.device.iter(),
            bytes_total: self.bytes_total.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.first_seen.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.bytes_total.heap_bytes()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.first_seen.encode(out);
        encode_macs(out, &self.device);
        self.bytes_total.encode(out);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<MacCols, SpillError> {
        let first_seen = TimeCol::decode(cur)?;
        let device = decode_macs(cur)?;
        let bytes_total = NarrowCol::decode(cur)?;
        if device.len() != first_seen.len() || bytes_total.len() != first_seen.len() {
            return Err(SpillError::Corrupt("mac column length mismatch"));
        }
        Ok(MacCols { first_seen, device, bytes_total })
    }
}

impl Default for MacCols {
    fn default() -> MacCols {
        MacCols::empty()
    }
}

/// One router's MAC sightings, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentMacs<'a> {
    router: RouterId,
    first_seen: TimeColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    bytes_total: NarrowColIter<'a>,
}

impl Iterator for ResidentMacs<'_> {
    type Item = MacSightingRecord;

    fn next(&mut self) -> Option<MacSightingRecord> {
        Some(MacSightingRecord {
            router: self.router,
            first_seen: self.first_seen.next()?,
            device: self.device.next().copied()?,
            bytes_total: self.bytes_total.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.first_seen.size_hint()
    }
}

impl ExactSizeIterator for ResidentMacs<'_> {}

/// A disk-backed portion of a merged table: per-router blocks of encoded
/// column groups in one merged segment file owned (with the rest of the
/// spill directory) by a shared [`SegmentStore`].
#[derive(Debug, Clone)]
pub(crate) struct SpilledPart {
    store: Arc<SegmentStore>,
    file: String,
    blocks: BTreeMap<RouterId, BlockRef>,
}

impl SpilledPart {
    /// Read one block into `buf`. Opens the file per call so concurrent
    /// report threads can stream the same table independently.
    fn read(&self, at: &BlockRef, buf: &mut Vec<u8>) -> Result<(), SpillError> {
        let mut file = self.store.open(&self.file)?;
        read_block(&mut file, at, buf)
    }

    /// Total encoded bytes across all blocks.
    fn bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.len).sum()
    }
}

/// Per-router accumulated tail records, carried across stream windows so
/// a table's `absorb` can tell the in-order fast path (the delta lands at
/// or after the accumulated tail, append directly) from a late window
/// that needs one router re-sorted. One state per table, parameterized by
/// that table's record type.
#[derive(Debug, Clone)]
pub struct AbsorbState<R> {
    last: BTreeMap<RouterId, R>,
}

impl<R> Default for AbsorbState<R> {
    fn default() -> AbsorbState<R> {
        AbsorbState { last: BTreeMap::new() }
    }
}

/// Generates one public columnar table: per-router column groups keyed by
/// a `BTreeMap`, an optional disk-backed [`SpilledPart`], a flat record
/// iterator in (router, arrival) order, and shard merges (in-memory and
/// spilled) that reproduce the legacy row-table merge byte for byte.
macro_rules! columnar_table {
    (
        $(#[$tdoc:meta])*
        table $Table:ident;
        $(#[$idoc:meta])*
        iter $TableIter:ident;
        cols $Cols:ident;
        record $Record:ty;
        router_iter $RouterIter:ident;
        resident_iter $ResidentIter:ident;
        empty $EMPTY:ident;
        key |$r:ident| $key:expr;
    ) => {
        static $EMPTY: $Cols = $Cols::empty();

        $(#[$tdoc])*
        #[derive(Debug, Clone, Default)]
        pub struct $Table {
            by_router: BTreeMap<RouterId, $Cols>,
            len: usize,
            spilled: Option<SpilledPart>,
        }

        impl $Table {
            /// Append one record to its router's column group.
            pub fn push(&mut self, record: $Record) {
                self.by_router.entry(record.router).or_default().append(&record);
                self.len += 1;
            }

            /// Total records across all routers.
            pub fn len(&self) -> usize {
                self.len
            }

            /// True when no record has been pushed.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Iterate every record by value in (router, per-router
            /// arrival) order — after a snapshot merge, the same global
            /// (router, time)-sorted order the legacy row vector had.
            /// Spilled routers stream from disk one router at a time.
            pub fn iter(&self) -> $TableIter<'_> {
                let mut routers: BTreeSet<RouterId> =
                    self.by_router.keys().copied().collect();
                if let Some(part) = &self.spilled {
                    routers.extend(part.blocks.keys().copied());
                }
                $TableIter {
                    table: self,
                    routers: routers.into_iter().collect::<Vec<_>>().into_iter(),
                    current: None,
                }
            }

            /// Iterate one router's records (empty if it never reported):
            /// the spilled head, decoded from the merged segment file,
            /// followed by the resident tail.
            pub fn router(&self, router: RouterId) -> $RouterIter<'_> {
                $RouterIter {
                    head: self.spilled_rows(router).into_iter(),
                    tail: self.by_router.get(&router).unwrap_or(&$EMPTY).iter(router),
                }
            }

            /// Decode one router's spilled rows (empty when nothing
            /// spilled for it). Segment files are process-private and
            /// written by this same build, so a read or decode failure
            /// here is a bug, not an input condition — panic with the
            /// file name rather than thread `Result` through every
            /// analysis iterator.
            fn spilled_rows(&self, router: RouterId) -> Vec<$Record> {
                let Some(part) = &self.spilled else { return Vec::new() };
                let Some(block) = part.blocks.get(&router) else { return Vec::new() };
                let mut buf = Vec::new();
                if let Err(e) = part.read(block, &mut buf) {
                    panic!("spilled column read failed ({}): {e}", part.file);
                }
                let mut cur = Cursor::new(&buf);
                match <$Cols>::decode(&mut cur) {
                    Ok(cols) => cols.iter(router).collect(),
                    Err(e) => panic!("spilled column decode failed ({}): {e}", part.file),
                }
            }

            /// Records held for one router (resident + spilled).
            pub fn router_len(&self, router: RouterId) -> usize {
                let resident = self.by_router.get(&router).map_or(0, $Cols::len);
                let spilled = self
                    .spilled
                    .as_ref()
                    .and_then(|p| p.blocks.get(&router))
                    .map_or(0, |b| b.rows as usize);
                resident + spilled
            }

            /// Heap bytes held by the resident columns (diagnostic; the
            /// spilled part stays on disk — see [`Self::spilled_bytes`]).
            pub fn heap_bytes(&self) -> usize {
                self.by_router.values().map($Cols::heap_bytes).sum()
            }

            /// Encoded bytes of this table living in spilled blocks.
            pub fn spilled_bytes(&self) -> u64 {
                self.spilled.as_ref().map_or(0, SpilledPart::bytes)
            }

            /// Merge per-shard tables into one globally sorted table.
            ///
            /// Routers are partitioned across shards, so each router's
            /// column group normally arrives from exactly one chunk: the
            /// merge moves groups into the output map (router order) and
            /// then stable-sorts any router whose arrival order violates
            /// the table's time subkey — exactly the order the legacy
            /// row merge produced, whether it took its concatenation
            /// fast path (all runs sorted and disjoint) or its global
            /// stable-sort fallback. A router appearing in several
            /// chunks (hand-built tables only) concatenates in chunk
            /// order before the same normalize pass.
            pub fn merge(chunks: Vec<$Table>) -> $Table {
                let mut out = $Table::default();
                for chunk in chunks {
                    out.len += chunk.len;
                    for (router, cols) in chunk.by_router {
                        match out.by_router.entry(router) {
                            Entry::Vacant(slot) => {
                                slot.insert(cols);
                            }
                            Entry::Occupied(mut slot) => {
                                let mut rows: Vec<$Record> =
                                    slot.get().iter(router).collect();
                                rows.extend(cols.iter(router));
                                let mut rebuilt = $Cols::empty();
                                for row in &rows {
                                    rebuilt.append(row);
                                }
                                *slot.get_mut() = rebuilt;
                            }
                        }
                    }
                }
                for (router, cols) in out.by_router.iter_mut() {
                    Self::normalize(*router, cols);
                }
                out
            }

            /// Rebuild one router's columns in time-subkey order when
            /// the concatenated arrival order violates it — the shared
            /// normalize pass of [`Self::merge`] and
            /// [`Self::merge_spilled`]. Ties keep arrival order.
            fn normalize(router: RouterId, cols: &mut $Cols) {
                let mut prev = None;
                let mut sorted = true;
                for record in cols.iter(router) {
                    let $r = &record;
                    let k = $key;
                    if prev.as_ref() > Some(&k) {
                        sorted = false;
                        break;
                    }
                    prev = Some(k);
                }
                if !sorted {
                    let mut rows: Vec<$Record> = cols.iter(router).collect();
                    Self::sort_rows(&mut rows);
                    let mut rebuilt = $Cols::empty();
                    for row in &rows {
                        rebuilt.append(row);
                    }
                    *cols = rebuilt;
                }
            }

            /// Stable-sort rows by the table's time subkey.
            fn sort_rows(rows: &mut Vec<$Record>) {
                rows.sort_by(|a, b| {
                    let ka = {
                        let $r = a;
                        $key
                    };
                    let kb = {
                        let $r = b;
                        $key
                    };
                    ka.cmp(&kb)
                });
            }

            /// Encode every non-empty router column group into `out`
            /// (which already starts with the segment magic, so offsets
            /// are file-absolute) and return the per-router block table.
            pub(crate) fn encode_segment(
                &self,
                out: &mut Vec<u8>,
            ) -> BTreeMap<RouterId, BlockRef> {
                let mut blocks = BTreeMap::new();
                for (&router, cols) in &self.by_router {
                    if cols.len() == 0 {
                        continue;
                    }
                    let offset = out.len() as u64;
                    cols.encode(out);
                    blocks.insert(
                        router,
                        BlockRef {
                            offset,
                            len: out.len() as u64 - offset,
                            rows: cols.len() as u64,
                        },
                    );
                }
                blocks
            }

            /// Merge per-shard inputs — each shard's sealed-segment
            /// slices (in seal order) plus its resident table — into one
            /// globally sorted table whose spilled routers live in a
            /// fresh merged file written through `store`.
            ///
            /// Routers are disjoint across shards (`router % NUM_SHARDS`
            /// addressing), so each router merges independently: spilled
            /// pieces concatenate in seal order, the resident tail
            /// follows, and the same normalize pass as the in-memory
            /// [`Self::merge`] restores the time subkey — which is why a
            /// spilled run's record stream is identical to the unbounded
            /// one. Routers that never spilled keep their columns
            /// resident; the rest re-encode to disk, so peak memory
            /// stays one router's rows above the resident set.
            pub(crate) fn merge_spilled(
                inputs: Vec<(Vec<TableToc>, $Table)>,
                store: &Arc<SegmentStore>,
                out_name: &str,
            ) -> Result<$Table, SpillError> {
                let mut out = $Table::default();
                let mut writer = store.writer(out_name)?;
                let mut out_blocks: BTreeMap<RouterId, BlockRef> = BTreeMap::new();
                let mut buf = Vec::new();
                let mut enc: Vec<u8> = Vec::new();
                for (tocs, resident) in inputs {
                    let mut resident_map = resident.by_router;
                    let mut files = Vec::with_capacity(tocs.len());
                    for toc in &tocs {
                        files.push(store.open(&toc.file)?);
                    }
                    let mut routers: BTreeSet<RouterId> =
                        resident_map.keys().copied().collect();
                    for toc in &tocs {
                        routers.extend(toc.blocks.keys().copied());
                    }
                    for router in routers {
                        if !tocs.iter().any(|t| t.blocks.contains_key(&router)) {
                            // Never spilled: keep the columns resident,
                            // normalized exactly as the in-memory merge
                            // would have.
                            let Some(mut cols) = resident_map.remove(&router) else {
                                continue;
                            };
                            out.len += cols.len();
                            Self::normalize(router, &mut cols);
                            out.by_router.insert(router, cols);
                            continue;
                        }
                        let mut rows: Vec<$Record> = Vec::new();
                        for (toc, file) in tocs.iter().zip(files.iter_mut()) {
                            let Some(block) = toc.blocks.get(&router) else {
                                continue;
                            };
                            read_block(file, block, &mut buf)?;
                            let mut cur = Cursor::new(&buf);
                            let cols = <$Cols>::decode(&mut cur)?;
                            rows.extend(cols.iter(router));
                        }
                        if let Some(cols) = resident_map.remove(&router) {
                            rows.extend(cols.iter(router));
                        }
                        let sorted = rows.windows(2).all(|w| {
                            let ka = {
                                let $r = &w[0];
                                $key
                            };
                            let kb = {
                                let $r = &w[1];
                                $key
                            };
                            ka <= kb
                        });
                        if !sorted {
                            Self::sort_rows(&mut rows);
                        }
                        let mut rebuilt = $Cols::empty();
                        for row in &rows {
                            rebuilt.append(row);
                        }
                        out.len += rows.len();
                        enc.clear();
                        rebuilt.encode(&mut enc);
                        let offset = writer.append(&enc)?;
                        out_blocks.insert(
                            router,
                            BlockRef {
                                offset,
                                len: enc.len() as u64,
                                rows: rows.len() as u64,
                            },
                        );
                    }
                }
                writer.finish()?;
                if !out_blocks.is_empty() {
                    out.spilled = Some(SpilledPart {
                        store: Arc::clone(store),
                        file: out_name.to_string(),
                        blocks: out_blocks,
                    });
                }
                Ok(out)
            }

            /// Fold a stream-window delta into this accumulated table.
            ///
            /// The delta holds everything the collector sealed behind
            /// the per-router watermark since the previous drain, so
            /// concatenating the deltas per router reproduces the batch
            /// arrival sequence exactly. Per router the delta is already
            /// in time-subkey order (its merge normalized it); when its
            /// first record lands at or after the accumulated tail — the
            /// steady state — the rows append straight into the resident
            /// columns. A router whose timestamps step backwards across
            /// a drain boundary (clock skew) instead rebuilds with the
            /// same stable sort the batch merge uses, so the final
            /// record stream matches a single batch merge of all
            /// arrivals byte for byte.
            ///
            /// `state` carries each router's accumulated tail record
            /// across windows. The accumulator must be fully resident;
            /// the delta may be spill-backed (its rows stream in through
            /// [`Self::router`]).
            pub fn absorb(&mut self, delta: &$Table, state: &mut AbsorbState<$Record>) {
                debug_assert!(self.spilled.is_none(), "absorb target must be resident");
                let mut routers: BTreeSet<RouterId> =
                    delta.by_router.keys().copied().collect();
                if let Some(part) = &delta.spilled {
                    routers.extend(part.blocks.keys().copied());
                }
                for router in routers {
                    let mut rows = delta.router(router);
                    let Some(first) = rows.next() else { continue };
                    let in_order = match state.last.get(&router) {
                        None => true,
                        Some(prev) => {
                            let ka = {
                                let $r = prev;
                                $key
                            };
                            let kb = {
                                let $r = &first;
                                $key
                            };
                            ka <= kb
                        }
                    };
                    if in_order {
                        let mut tail = first;
                        for next in rows {
                            self.push(tail);
                            tail = next;
                        }
                        state.last.insert(router, tail.clone());
                        self.push(tail);
                    } else {
                        let mut all: Vec<$Record> = self
                            .by_router
                            .get(&router)
                            .map(|c| c.iter(router).collect())
                            .unwrap_or_default();
                        let held = all.len();
                        all.push(first);
                        all.extend(rows);
                        self.len += all.len() - held;
                        Self::sort_rows(&mut all);
                        let mut rebuilt = $Cols::empty();
                        for row in &all {
                            rebuilt.append(row);
                        }
                        let last = all.last().expect("router delta is non-empty");
                        state.last.insert(router, last.clone());
                        self.by_router.insert(router, rebuilt);
                    }
                }
            }

            /// Delete this table's merged segment file from its store —
            /// stream-mode cleanup once a spill-backed delta's rows have
            /// been absorbed into the resident accumulator.
            pub fn release_spilled(&mut self) {
                if let Some(part) = self.spilled.take() {
                    part.store.remove_file(&part.file);
                }
            }
        }

        /// Record-sequence equality. Two fully resident tables compare
        /// their encoded columns directly (a pure function of the pushed
        /// sequence); when either side has a spilled part, the record
        /// streams are compared element by element instead.
        impl PartialEq for $Table {
            fn eq(&self, other: &$Table) -> bool {
                if self.len != other.len {
                    return false;
                }
                if self.spilled.is_none() && other.spilled.is_none() {
                    return self.by_router == other.by_router;
                }
                self.iter().eq(other.iter())
            }
        }

        impl<'a> IntoIterator for &'a $Table {
            type Item = $Record;
            type IntoIter = $TableIter<'a>;

            fn into_iter(self) -> $TableIter<'a> {
                self.iter()
            }
        }

        $(#[$idoc])*
        #[derive(Debug, Clone)]
        pub struct $TableIter<'a> {
            table: &'a $Table,
            routers: std::vec::IntoIter<RouterId>,
            current: Option<$RouterIter<'a>>,
        }

        impl<'a> Iterator for $TableIter<'a> {
            type Item = $Record;

            fn next(&mut self) -> Option<$Record> {
                loop {
                    if let Some(current) = &mut self.current {
                        if let Some(record) = current.next() {
                            return Some(record);
                        }
                    }
                    let router = self.routers.next()?;
                    self.current = Some(self.table.router(router));
                }
            }
        }

        #[doc = concat!(
            "One router's records from a [`", stringify!($Table), "`]: the ",
            "spilled head (already decoded from disk) then the resident tail."
        )]
        #[derive(Debug, Clone)]
        pub struct $RouterIter<'a> {
            head: std::vec::IntoIter<$Record>,
            tail: $ResidentIter<'a>,
        }

        impl<'a> Iterator for $RouterIter<'a> {
            type Item = $Record;

            fn next(&mut self) -> Option<$Record> {
                self.head.next().or_else(|| self.tail.next())
            }

            fn size_hint(&self) -> (usize, Option<usize>) {
                let n = self.head.len() + self.tail.len();
                (n, Some(n))
            }
        }

        impl ExactSizeIterator for $RouterIter<'_> {}
    };
}

columnar_table! {
    /// The packet-statistics table (Traffic data set) in columnar form:
    /// per-minute windows, ~28 bytes/record instead of the 64-byte row.
    table PacketStatsTable;
    /// Flat record iterator over a [`PacketStatsTable`].
    iter PacketStatsIter;
    cols PacketStatsCols;
    record PacketStatsRecord;
    router_iter RouterPacketStats;
    resident_iter ResidentPacketStats;
    empty EMPTY_PACKET_STATS;
    key |r| r.at;
}

columnar_table! {
    /// The flow table (Traffic data set) in columnar form: interned
    /// domains and delta-coded times, ~40 bytes/record instead of the
    /// 88-byte row.
    table FlowTable;
    /// Flat record iterator over a [`FlowTable`].
    iter FlowsIter;
    cols FlowCols;
    record FlowRecord;
    router_iter RouterFlows;
    resident_iter ResidentFlows;
    empty EMPTY_FLOWS;
    key |r| (r.ended, r.started, r.device);
}

columnar_table! {
    /// The DNS-sample table (Traffic data set) in columnar form:
    /// interned names, ~18 bytes/record instead of the 56-byte row.
    table DnsTable;
    /// Flat record iterator over a [`DnsTable`].
    iter DnsIter;
    cols DnsCols;
    record DnsSampleRecord;
    router_iter RouterDns;
    resident_iter ResidentDns;
    empty EMPTY_DNS;
    key |r| (r.at, r.device);
}

columnar_table! {
    /// The MAC-sighting table (Traffic data set) in columnar form:
    /// ~16 bytes/record instead of the 32-byte row.
    table MacTable;
    /// Flat record iterator over a [`MacTable`].
    iter MacsIter;
    cols MacCols;
    record MacSightingRecord;
    router_iter RouterMacs;
    resident_iter ResidentMacs;
    empty EMPTY_MACS;
    key |r| (r.first_seen, r.device);
}

/// Columns of one router's [`WifiScanRecord`] stream. The variable-length
/// `aps` list flattens into parallel per-sighting columns addressed by a
/// per-scan count, so a scan costs ~6 bytes plus 10 per neighbor instead
/// of a 56-byte row plus a heap `Vec`.
#[derive(Debug, Clone, PartialEq)]
struct WifiCols {
    at: TimeCol,
    band: Vec<Band>,
    associated_stations: Vec<u8>,
    /// APs sighted per scan; indexes the three flattened AP columns.
    ap_counts: Vec<u32>,
    ap_bssid_hash: Vec<u64>,
    ap_channel: Vec<u8>,
    ap_signal: Vec<i8>,
}

impl WifiCols {
    const fn empty() -> WifiCols {
        WifiCols {
            at: TimeCol::empty(),
            band: Vec::new(),
            associated_stations: Vec::new(),
            ap_counts: Vec::new(),
            ap_bssid_hash: Vec::new(),
            ap_channel: Vec::new(),
            ap_signal: Vec::new(),
        }
    }

    fn append(&mut self, r: &WifiScanRecord) {
        self.at.append(r.at);
        self.band.push(r.band);
        self.associated_stations.push(r.associated_stations);
        self.ap_counts.push(r.aps.len() as u32);
        for ap in &r.aps {
            self.ap_bssid_hash.push(ap.bssid_hash);
            self.ap_channel.push(ap.channel_number);
            self.ap_signal.push(ap.signal_dbm);
        }
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentWifi<'_> {
        ResidentWifi {
            router,
            at: self.at.iter(),
            band: self.band.iter(),
            associated_stations: self.associated_stations.iter(),
            ap_counts: self.ap_counts.iter(),
            ap_bssid_hash: &self.ap_bssid_hash,
            ap_channel: &self.ap_channel,
            ap_signal: &self.ap_signal,
            ap_at: 0,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.band.capacity()
            + self.associated_stations.capacity()
            + self.ap_counts.capacity() * 4
            + self.ap_bssid_hash.capacity() * 8
            + self.ap_channel.capacity()
            + self.ap_signal.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        put_u64(out, self.band.len() as u64);
        for &b in &self.band {
            put_u8(out, match b {
                Band::Ghz24 => 0,
                Band::Ghz5 => 1,
            });
        }
        put_u64(out, self.associated_stations.len() as u64);
        for &v in &self.associated_stations {
            put_u8(out, v);
        }
        put_u64(out, self.ap_counts.len() as u64);
        for &v in &self.ap_counts {
            put_u32(out, v);
        }
        put_u64(out, self.ap_bssid_hash.len() as u64);
        for &v in &self.ap_bssid_hash {
            put_u64(out, v);
        }
        for &v in &self.ap_channel {
            put_u8(out, v);
        }
        for &v in &self.ap_signal {
            put_u8(out, v as u8);
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<WifiCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let n_band = cur.len_prefix(1)?;
        let mut band = Vec::with_capacity(n_band);
        for _ in 0..n_band {
            band.push(match cur.u8()? {
                0 => Band::Ghz24,
                1 => Band::Ghz5,
                _ => return Err(SpillError::Corrupt("wifi band tag out of range")),
            });
        }
        let n_sta = cur.len_prefix(1)?;
        let mut associated_stations = Vec::with_capacity(n_sta);
        for _ in 0..n_sta {
            associated_stations.push(cur.u8()?);
        }
        let n_counts = cur.len_prefix(4)?;
        let mut ap_counts = Vec::with_capacity(n_counts);
        for _ in 0..n_counts {
            ap_counts.push(cur.u32()?);
        }
        let n_aps = cur.len_prefix(8)?;
        let mut ap_bssid_hash = Vec::with_capacity(n_aps);
        for _ in 0..n_aps {
            ap_bssid_hash.push(cur.u64()?);
        }
        let mut ap_channel = Vec::with_capacity(n_aps);
        for _ in 0..n_aps {
            ap_channel.push(cur.u8()?);
        }
        let mut ap_signal = Vec::with_capacity(n_aps);
        for _ in 0..n_aps {
            ap_signal.push(cur.u8()? as i8);
        }
        let n = at.len();
        if band.len() != n || associated_stations.len() != n || ap_counts.len() != n {
            return Err(SpillError::Corrupt("wifi column length mismatch"));
        }
        let total: u64 = ap_counts.iter().map(|&c| u64::from(c)).sum();
        if total != n_aps as u64 {
            return Err(SpillError::Corrupt("wifi AP counts do not sum to AP columns"));
        }
        Ok(WifiCols {
            at,
            band,
            associated_stations,
            ap_counts,
            ap_bssid_hash,
            ap_channel,
            ap_signal,
        })
    }
}

impl Default for WifiCols {
    fn default() -> WifiCols {
        WifiCols::empty()
    }
}

/// One router's WiFi scans, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentWifi<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    band: std::slice::Iter<'a, Band>,
    associated_stations: std::slice::Iter<'a, u8>,
    ap_counts: std::slice::Iter<'a, u32>,
    ap_bssid_hash: &'a [u64],
    ap_channel: &'a [u8],
    ap_signal: &'a [i8],
    /// Cursor into the flattened AP columns.
    ap_at: usize,
}

impl Iterator for ResidentWifi<'_> {
    type Item = WifiScanRecord;

    fn next(&mut self) -> Option<WifiScanRecord> {
        let at = self.at.next()?;
        let band = *self.band.next()?;
        let associated_stations = *self.associated_stations.next()?;
        let count = *self.ap_counts.next()? as usize;
        let (start, end) = (self.ap_at, self.ap_at + count);
        self.ap_at = end;
        let aps = (start..end)
            .map(|i| ApSighting {
                bssid_hash: self.ap_bssid_hash[i],
                channel_number: self.ap_channel[i],
                signal_dbm: self.ap_signal[i],
            })
            .collect();
        Some(WifiScanRecord { router: self.router, at, band, aps, associated_stations })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentWifi<'_> {}

/// Columns of one router's [`AssociationRecord`] stream.
#[derive(Debug, Clone, PartialEq)]
struct AssociationCols {
    at: TimeCol,
    device: Vec<AnonMac>,
    medium: Vec<Medium>,
}

impl AssociationCols {
    const fn empty() -> AssociationCols {
        AssociationCols { at: TimeCol::empty(), device: Vec::new(), medium: Vec::new() }
    }

    fn append(&mut self, r: &AssociationRecord) {
        self.at.append(r.at);
        self.device.push(r.device);
        self.medium.push(r.medium);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentAssociations<'_> {
        ResidentAssociations {
            router,
            at: self.at.iter(),
            device: self.device.iter(),
            medium: self.medium.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.device.capacity() * std::mem::size_of::<AnonMac>()
            + self.medium.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        encode_macs(out, &self.device);
        put_u64(out, self.medium.len() as u64);
        for &m in &self.medium {
            put_u8(out, match m {
                Medium::Wired => 0,
                Medium::Wireless24 => 1,
                Medium::Wireless5 => 2,
            });
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<AssociationCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let device = decode_macs(cur)?;
        let n_med = cur.len_prefix(1)?;
        let mut medium = Vec::with_capacity(n_med);
        for _ in 0..n_med {
            medium.push(match cur.u8()? {
                0 => Medium::Wired,
                1 => Medium::Wireless24,
                2 => Medium::Wireless5,
                _ => return Err(SpillError::Corrupt("association medium tag out of range")),
            });
        }
        if device.len() != at.len() || medium.len() != at.len() {
            return Err(SpillError::Corrupt("association column length mismatch"));
        }
        Ok(AssociationCols { at, device, medium })
    }
}

impl Default for AssociationCols {
    fn default() -> AssociationCols {
        AssociationCols::empty()
    }
}

/// One router's association reports, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentAssociations<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    device: std::slice::Iter<'a, AnonMac>,
    medium: std::slice::Iter<'a, Medium>,
}

impl Iterator for ResidentAssociations<'_> {
    type Item = AssociationRecord;

    fn next(&mut self) -> Option<AssociationRecord> {
        Some(AssociationRecord {
            router: self.router,
            at: self.at.next()?,
            device: self.device.next().copied()?,
            medium: self.medium.next().copied()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentAssociations<'_> {}

/// Columns of one router's [`LatencyRecord`] stream. RTTs are stored as
/// narrow microsecond columns (a home's RTT is tens of milliseconds, far
/// under the `u32` escape threshold).
#[derive(Debug, Clone, PartialEq)]
struct LatencyCols {
    at: TimeCol,
    rtt_min: NarrowCol,
    rtt_median: NarrowCol,
    rtt_max: NarrowCol,
    lost: Vec<u8>,
}

impl LatencyCols {
    const fn empty() -> LatencyCols {
        LatencyCols {
            at: TimeCol::empty(),
            rtt_min: NarrowCol::empty(),
            rtt_median: NarrowCol::empty(),
            rtt_max: NarrowCol::empty(),
            lost: Vec::new(),
        }
    }

    fn append(&mut self, r: &LatencyRecord) {
        self.at.append(r.at);
        self.rtt_min.append(r.rtt_min.as_micros());
        self.rtt_median.append(r.rtt_median.as_micros());
        self.rtt_max.append(r.rtt_max.as_micros());
        self.lost.push(r.lost);
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentLatency<'_> {
        ResidentLatency {
            router,
            at: self.at.iter(),
            rtt_min: self.rtt_min.iter(),
            rtt_median: self.rtt_median.iter(),
            rtt_max: self.rtt_max.iter(),
            lost: self.lost.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.rtt_min.heap_bytes()
            + self.rtt_median.heap_bytes()
            + self.rtt_max.heap_bytes()
            + self.lost.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.rtt_min.encode(out);
        self.rtt_median.encode(out);
        self.rtt_max.encode(out);
        put_u64(out, self.lost.len() as u64);
        for &v in &self.lost {
            put_u8(out, v);
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<LatencyCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let rtt_min = NarrowCol::decode(cur)?;
        let rtt_median = NarrowCol::decode(cur)?;
        let rtt_max = NarrowCol::decode(cur)?;
        let n_lost = cur.len_prefix(1)?;
        let mut lost = Vec::with_capacity(n_lost);
        for _ in 0..n_lost {
            lost.push(cur.u8()?);
        }
        let n = at.len();
        if [rtt_min.len(), rtt_median.len(), rtt_max.len(), lost.len()].iter().any(|&l| l != n) {
            return Err(SpillError::Corrupt("latency column length mismatch"));
        }
        Ok(LatencyCols { at, rtt_min, rtt_median, rtt_max, lost })
    }
}

impl Default for LatencyCols {
    fn default() -> LatencyCols {
        LatencyCols::empty()
    }
}

/// One router's latency probes, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentLatency<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    rtt_min: NarrowColIter<'a>,
    rtt_median: NarrowColIter<'a>,
    rtt_max: NarrowColIter<'a>,
    lost: std::slice::Iter<'a, u8>,
}

impl Iterator for ResidentLatency<'_> {
    type Item = LatencyRecord;

    fn next(&mut self) -> Option<LatencyRecord> {
        Some(LatencyRecord {
            router: self.router,
            at: self.at.next()?,
            rtt_min: SimDuration::from_micros(self.rtt_min.next()?),
            rtt_median: SimDuration::from_micros(self.rtt_median.next()?),
            rtt_max: SimDuration::from_micros(self.rtt_max.next()?),
            lost: *self.lost.next()?,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentLatency<'_> {}

columnar_table! {
    /// The WiFi-scan table in columnar form: flattened AP sightings,
    /// ~6 bytes/scan plus 10 per neighbor instead of a 56-byte row plus
    /// a heap `Vec` per scan.
    table WifiTable;
    /// Flat record iterator over a [`WifiTable`].
    iter WifiIter;
    cols WifiCols;
    record WifiScanRecord;
    router_iter RouterWifi;
    resident_iter ResidentWifi;
    empty EMPTY_WIFI;
    key |r| (r.at, r.band);
}

columnar_table! {
    /// The association table in columnar form: ~11 bytes/record instead
    /// of the 24-byte row.
    table AssociationTable;
    /// Flat record iterator over an [`AssociationTable`].
    iter AssociationsIter;
    cols AssociationCols;
    record AssociationRecord;
    router_iter RouterAssociations;
    resident_iter ResidentAssociations;
    empty EMPTY_ASSOCIATIONS;
    key |r| (r.at, r.device, r.medium);
}

columnar_table! {
    /// The latency-probe table in columnar form: ~15 bytes/record
    /// instead of the 48-byte row.
    table LatencyTable;
    /// Flat record iterator over a [`LatencyTable`].
    iter LatencyIter;
    cols LatencyCols;
    record LatencyRecord;
    router_iter RouterLatency;
    resident_iter ResidentLatency;
    empty EMPTY_LATENCY;
    key |r| r.at;
}

/// Columns of one router's [`NatProbeRecord`] stream. NAT types are
/// 1-byte wire codes; mapped-address hashes are dense `u64`s (they never
/// fit a narrow lane anyway).
#[derive(Debug, Clone, PartialEq)]
struct NatProbeCols {
    at: TimeCol,
    nat_type: Vec<u8>,
    mapped_ip_hash: Vec<u64>,
    mapped_port: Vec<u16>,
    cgn_detected: Vec<u8>,
}

impl NatProbeCols {
    const fn empty() -> NatProbeCols {
        NatProbeCols {
            at: TimeCol::empty(),
            nat_type: Vec::new(),
            mapped_ip_hash: Vec::new(),
            mapped_port: Vec::new(),
            cgn_detected: Vec::new(),
        }
    }

    fn append(&mut self, r: &NatProbeRecord) {
        self.at.append(r.at);
        self.nat_type.push(r.nat_type.code());
        self.mapped_ip_hash.push(r.mapped_ip_hash);
        self.mapped_port.push(r.mapped_port);
        self.cgn_detected.push(u8::from(r.cgn_detected));
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentNatProbes<'_> {
        ResidentNatProbes {
            router,
            at: self.at.iter(),
            nat_type: self.nat_type.iter(),
            mapped_ip_hash: self.mapped_ip_hash.iter(),
            mapped_port: self.mapped_port.iter(),
            cgn_detected: self.cgn_detected.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.nat_type.capacity()
            + self.mapped_ip_hash.capacity() * 8
            + self.mapped_port.capacity() * 2
            + self.cgn_detected.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        put_u64(out, self.nat_type.len() as u64);
        for &v in &self.nat_type {
            put_u8(out, v);
        }
        put_u64(out, self.mapped_ip_hash.len() as u64);
        for &v in &self.mapped_ip_hash {
            put_u64(out, v);
        }
        put_u64(out, self.mapped_port.len() as u64);
        for &v in &self.mapped_port {
            put_u16(out, v);
        }
        put_u64(out, self.cgn_detected.len() as u64);
        for &v in &self.cgn_detected {
            put_u8(out, v);
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<NatProbeCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let n_types = cur.len_prefix(1)?;
        let mut nat_type = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let code = cur.u8()?;
            if NatType::from_code(code).is_none() {
                return Err(SpillError::Corrupt("nat probe type code out of range"));
            }
            nat_type.push(code);
        }
        let n_hash = cur.len_prefix(8)?;
        let mut mapped_ip_hash = Vec::with_capacity(n_hash);
        for _ in 0..n_hash {
            mapped_ip_hash.push(cur.u64()?);
        }
        let n_port = cur.len_prefix(2)?;
        let mut mapped_port = Vec::with_capacity(n_port);
        for _ in 0..n_port {
            mapped_port.push(cur.u16()?);
        }
        let n_det = cur.len_prefix(1)?;
        let mut cgn_detected = Vec::with_capacity(n_det);
        for _ in 0..n_det {
            let v = cur.u8()?;
            if v > 1 {
                return Err(SpillError::Corrupt("nat probe cgn flag out of range"));
            }
            cgn_detected.push(v);
        }
        let n = at.len();
        if [nat_type.len(), mapped_ip_hash.len(), mapped_port.len(), cgn_detected.len()]
            .iter()
            .any(|&l| l != n)
        {
            return Err(SpillError::Corrupt("nat probe column length mismatch"));
        }
        Ok(NatProbeCols { at, nat_type, mapped_ip_hash, mapped_port, cgn_detected })
    }
}

impl Default for NatProbeCols {
    fn default() -> NatProbeCols {
        NatProbeCols::empty()
    }
}

/// One router's NAT probes, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentNatProbes<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    nat_type: std::slice::Iter<'a, u8>,
    mapped_ip_hash: std::slice::Iter<'a, u64>,
    mapped_port: std::slice::Iter<'a, u16>,
    cgn_detected: std::slice::Iter<'a, u8>,
}

impl Iterator for ResidentNatProbes<'_> {
    type Item = NatProbeRecord;

    fn next(&mut self) -> Option<NatProbeRecord> {
        Some(NatProbeRecord {
            router: self.router,
            at: self.at.next()?,
            nat_type: NatType::from_code(*self.nat_type.next()?)
                .expect("codes validated on append/decode"),
            mapped_ip_hash: *self.mapped_ip_hash.next()?,
            mapped_port: *self.mapped_port.next()?,
            cgn_detected: *self.cgn_detected.next()? != 0,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentNatProbes<'_> {}

/// Columns of one router's [`PunchTrialRecord`] stream: peer router ids
/// in a narrow lane, type pair and outcome as single bytes.
#[derive(Debug, Clone, PartialEq)]
struct PunchTrialCols {
    at: TimeCol,
    peer: NarrowCol,
    local_type: Vec<u8>,
    peer_type: Vec<u8>,
    success: Vec<u8>,
}

impl PunchTrialCols {
    const fn empty() -> PunchTrialCols {
        PunchTrialCols {
            at: TimeCol::empty(),
            peer: NarrowCol::empty(),
            local_type: Vec::new(),
            peer_type: Vec::new(),
            success: Vec::new(),
        }
    }

    fn append(&mut self, r: &PunchTrialRecord) {
        self.at.append(r.at);
        self.peer.append(u64::from(r.peer.0));
        self.local_type.push(r.local_type.code());
        self.peer_type.push(r.peer_type.code());
        self.success.push(u8::from(r.success));
    }

    fn len(&self) -> usize {
        self.at.len()
    }

    fn iter(&self, router: RouterId) -> ResidentPunchTrials<'_> {
        ResidentPunchTrials {
            router,
            at: self.at.iter(),
            peer: self.peer.iter(),
            local_type: self.local_type.iter(),
            peer_type: self.peer_type.iter(),
            success: self.success.iter(),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.at.heap_bytes()
            + self.peer.heap_bytes()
            + self.local_type.capacity()
            + self.peer_type.capacity()
            + self.success.capacity()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
        self.peer.encode(out);
        for list in [&self.local_type, &self.peer_type, &self.success] {
            put_u64(out, list.len() as u64);
            for &v in list {
                put_u8(out, v);
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<PunchTrialCols, SpillError> {
        let at = TimeCol::decode(cur)?;
        let peer = NarrowCol::decode(cur)?;
        let mut lists: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, list) in lists.iter_mut().enumerate() {
            let n = cur.len_prefix(1)?;
            list.reserve(n);
            for _ in 0..n {
                let v = cur.u8()?;
                let bad = if i == 2 { v > 1 } else { NatType::from_code(v).is_none() };
                if bad {
                    return Err(SpillError::Corrupt("punch trial byte column out of range"));
                }
                list.push(v);
            }
        }
        let [local_type, peer_type, success] = lists;
        let n = at.len();
        if [peer.len(), local_type.len(), peer_type.len(), success.len()]
            .iter()
            .any(|&l| l != n)
        {
            return Err(SpillError::Corrupt("punch trial column length mismatch"));
        }
        Ok(PunchTrialCols { at, peer, local_type, peer_type, success })
    }
}

impl Default for PunchTrialCols {
    fn default() -> PunchTrialCols {
        PunchTrialCols::empty()
    }
}

/// One router's punch trials, rebuilt record-by-record from columns.
#[derive(Debug, Clone)]
pub struct ResidentPunchTrials<'a> {
    router: RouterId,
    at: TimeColIter<'a>,
    peer: NarrowColIter<'a>,
    local_type: std::slice::Iter<'a, u8>,
    peer_type: std::slice::Iter<'a, u8>,
    success: std::slice::Iter<'a, u8>,
}

impl Iterator for ResidentPunchTrials<'_> {
    type Item = PunchTrialRecord;

    fn next(&mut self) -> Option<PunchTrialRecord> {
        Some(PunchTrialRecord {
            router: self.router,
            at: self.at.next()?,
            peer: RouterId(self.peer.next()? as u32),
            local_type: NatType::from_code(*self.local_type.next()?)
                .expect("codes validated on append/decode"),
            peer_type: NatType::from_code(*self.peer_type.next()?)
                .expect("codes validated on append/decode"),
            success: *self.success.next()? != 0,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.at.size_hint()
    }
}

impl ExactSizeIterator for ResidentPunchTrials<'_> {}

columnar_table! {
    /// The NAT-probe table in columnar form: ~16 bytes/record instead of
    /// the 32-byte row.
    table NatProbeTable;
    /// Flat record iterator over a [`NatProbeTable`].
    iter NatProbesIter;
    cols NatProbeCols;
    record NatProbeRecord;
    router_iter RouterNatProbes;
    resident_iter ResidentNatProbes;
    empty EMPTY_NAT_PROBES;
    key |r| r.at;
}

columnar_table! {
    /// The hole-punch-trial table in columnar form: ~12 bytes/record
    /// instead of the 32-byte row.
    table PunchTrialTable;
    /// Flat record iterator over a [`PunchTrialTable`].
    iter PunchTrialsIter;
    cols PunchTrialCols;
    record PunchTrialRecord;
    router_iter RouterPunchTrials;
    resident_iter ResidentPunchTrials;
    empty EMPTY_PUNCH_TRIALS;
    key |r| (r.at, r.peer);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::dns::DomainName;
    use simnet::time::SimDuration;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn time_col_round_trips_monotone_jumpy_and_backward_sequences() {
        let inputs = vec![
            SimTime::from_micros(0),
            SimTime::from_micros(5),
            SimTime::from_micros(5),
            // Forward jump past the u32 delta range: escapes.
            SimTime::from_micros(6_000_000_000),
            // Backward jump: escapes.
            SimTime::from_micros(100),
            SimTime::from_micros(u64::MAX),
            SimTime::from_micros(u64::MAX),
        ];
        let mut col = TimeCol::empty();
        for &v in &inputs {
            col.append(v);
        }
        assert_eq!(col.iter().collect::<Vec<_>>(), inputs);
        assert_eq!(col.len(), 7);
        // Only the three non-delta-codable entries hit the wide lane.
        assert_eq!(col.wide.len(), 3);
    }

    #[test]
    fn narrow_col_round_trips_across_the_escape_threshold() {
        let inputs =
            vec![0, 1, u64::from(u32::MAX) - 1, u64::from(u32::MAX), u64::from(u32::MAX) + 1, u64::MAX];
        let mut col = NarrowCol::empty();
        for &v in &inputs {
            col.append(v);
        }
        assert_eq!(col.iter().collect::<Vec<_>>(), inputs);
        assert_eq!(col.wide.len(), 3);
    }

    #[test]
    fn domain_pool_interns_by_value_and_compares_by_pool() {
        let clear = ReportedDomain::Clear(DomainName::new("netflix.com").unwrap());
        let obf = ReportedDomain::Obfuscated(7);
        let mut a = DomainPool::empty();
        assert_eq!(a.intern(&clear), 0);
        assert_eq!(a.intern(&obf), 1);
        assert_eq!(a.intern(&clear), 0, "re-interning is id-stable");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1), &obf);
        let mut b = DomainPool::empty();
        b.intern(&clear);
        b.intern(&obf);
        assert_eq!(a, b);
        let mut c = DomainPool::empty();
        c.intern(&obf);
        c.intern(&clear);
        assert_ne!(a, c, "interning order is part of equality");
    }

    fn flow(router: u32, started: u64, ended: u64, suffix: u32, domain: u64) -> FlowRecord {
        FlowRecord {
            router: RouterId(router),
            started: t(started),
            ended: t(ended),
            device: AnonMac { oui: 0x0017F2, suffix_hash: suffix },
            remote_ip_hash: 99,
            remote_port: 443,
            proto: IpProtocol::Tcp,
            domain: ReportedDomain::Obfuscated(domain),
            bytes_down: 4096,
            bytes_up: 512,
        }
    }

    #[test]
    fn flow_table_round_trips_and_indexes_per_router() {
        let rows = vec![
            flow(2, 0, 5, 1, 10),
            flow(1, 3, 4, 2, 10),
            flow(2, 1, 6, 1, 11),
            // started after ended: wrapping duration still round-trips.
            flow(1, 9, 7, 3, 10),
        ];
        let mut table = FlowTable::default();
        for r in &rows {
            table.push(r.clone());
        }
        assert_eq!(table.len(), 4);
        assert_eq!(table.router_len(RouterId(1)), 2);
        assert_eq!(table.router(RouterId(3)).count(), 0);
        // Flat iteration groups by router, preserving arrival order within.
        let expect = vec![rows[1].clone(), rows[3].clone(), rows[0].clone(), rows[2].clone()];
        assert_eq!(table.iter().collect::<Vec<_>>(), expect);
        assert_eq!(table.router(RouterId(2)).collect::<Vec<_>>(), vec![rows[0].clone(), rows[2].clone()]);
    }

    #[test]
    fn table_equality_tracks_the_pushed_sequence() {
        let mut a = FlowTable::default();
        let mut b = FlowTable::default();
        for r in [flow(1, 0, 1, 1, 5), flow(1, 2, 3, 1, 6)] {
            a.push(r.clone());
            b.push(r);
        }
        assert_eq!(a, b);
        b.push(flow(1, 4, 5, 1, 5));
        assert_ne!(a, b);
    }

    #[test]
    fn merge_concatenates_disjoint_routers_and_sorts_unordered_ones() {
        // Shard A: router 1 in order; shard B: router 2 out of order.
        let mut a = FlowTable::default();
        a.push(flow(1, 0, 2, 1, 5));
        a.push(flow(1, 1, 3, 1, 5));
        let mut b = FlowTable::default();
        b.push(flow(2, 5, 9, 1, 6));
        b.push(flow(2, 2, 4, 1, 6));
        let merged = FlowTable::merge(vec![a, b]);
        assert_eq!(merged.len(), 4);
        let order: Vec<(u32, SimTime)> =
            merged.iter().map(|r| (r.router.0, r.ended)).collect();
        assert_eq!(order, vec![(1, t(2)), (1, t(3)), (2, t(4)), (2, t(9))]);
        // The unordered router was rebuilt; the ordered one kept its
        // original (already-sorted) encoding.
        let rebuilt: Vec<SimTime> =
            merged.router(RouterId(2)).map(|r| r.ended).collect();
        assert_eq!(rebuilt, vec![t(4), t(9)]);
    }

    #[test]
    fn merge_with_a_router_split_across_chunks_stays_stable() {
        // Ties on the full subkey must preserve chunk order (stable sort).
        let first = flow(7, 0, 5, 1, 10);
        let second = flow(7, 0, 5, 1, 11);
        let mut a = FlowTable::default();
        a.push(first.clone());
        let mut b = FlowTable::default();
        b.push(second.clone());
        let merged = FlowTable::merge(vec![a, b]);
        assert_eq!(merged.iter().collect::<Vec<_>>(), vec![first, second]);
    }

    #[test]
    fn packet_stats_dns_and_mac_tables_round_trip() {
        let ps = PacketStatsRecord {
            router: RouterId(3),
            at: t(1),
            bytes_down: u64::MAX,
            bytes_up: 1,
            pkts_down: 2,
            pkts_up: 3,
            peak_down_1s: 4,
            peak_up_1s: 5,
        };
        let mut pst = PacketStatsTable::default();
        pst.push(ps);
        assert_eq!(pst.iter().collect::<Vec<_>>(), vec![ps]);

        let dns = DnsSampleRecord {
            router: RouterId(3),
            at: t(2),
            device: AnonMac { oui: 1, suffix_hash: 2 },
            name: ReportedDomain::Clear(DomainName::new("netflix.com").unwrap()),
            cname_links: 2,
            resolved: true,
        };
        let mut dt = DnsTable::default();
        dt.push(dns.clone());
        dt.push(dns.clone());
        assert_eq!(dt.iter().collect::<Vec<_>>(), vec![dns.clone(), dns]);

        let mac = MacSightingRecord {
            router: RouterId(4),
            first_seen: t(3),
            device: AnonMac { oui: 5, suffix_hash: 6 },
            bytes_total: 1 << 40,
        };
        let mut mt = MacTable::default();
        mt.push(mac);
        assert_eq!(mt.iter().collect::<Vec<_>>(), vec![mac]);
        assert!(mt.heap_bytes() > 0);
    }

    #[test]
    fn flow_cols_encode_decode_round_trips() {
        let mut cols = FlowCols::empty();
        for r in [flow(1, 0, 5, 1, 10), flow(1, 3, 4, 2, 11), flow(1, 9, 7, 3, 10)] {
            cols.append(&r);
        }
        let mut buf = Vec::new();
        cols.encode(&mut buf);
        let decoded = FlowCols::decode(&mut crate::spill::Cursor::new(&buf)).unwrap();
        assert_eq!(
            cols.iter(RouterId(1)).collect::<Vec<_>>(),
            decoded.iter(RouterId(1)).collect::<Vec<_>>()
        );
        // Truncation anywhere inside the block is a decode error, not UB.
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            assert!(
                FlowCols::decode(&mut crate::spill::Cursor::new(&buf[..cut])).is_err(),
                "truncated at {cut} must fail"
            );
        }
    }

    #[test]
    fn merge_spilled_reunifies_disk_and_resident_rows() {
        use crate::spill::{SegmentStore, SEGMENT_MAGIC};
        use std::sync::Arc;

        // Model: what an unbounded in-memory shard would hold.
        let spilled_rows = [flow(1, 0, 2, 1, 5), flow(129, 1, 3, 1, 6), flow(1, 2, 4, 2, 5)];
        let resident_rows = [flow(1, 5, 6, 1, 7), flow(129, 4, 8, 2, 6)];
        let mut model = FlowTable::default();
        for r in spilled_rows.iter().chain(&resident_rows) {
            model.push(r.clone());
        }
        let merged_model = FlowTable::merge(vec![model]);

        // Out-of-core: the first batch sealed to disk, the rest resident.
        let mut sealed = FlowTable::default();
        for r in &spilled_rows {
            sealed.push(r.clone());
        }
        let store = Arc::new(SegmentStore::create(None).unwrap());
        let mut buf = Vec::new();
        buf.extend_from_slice(SEGMENT_MAGIC);
        let blocks = sealed.encode_segment(&mut buf);
        store.write_file("shard001-seg00000.seg", &buf).unwrap();
        let toc = TableToc { file: "shard001-seg00000.seg".to_string(), blocks };
        let mut resident = FlowTable::default();
        for r in &resident_rows {
            resident.push(r.clone());
        }
        let merged =
            FlowTable::merge_spilled(vec![(vec![toc], resident)], &store, "merged.col").unwrap();

        assert_eq!(merged.len(), merged_model.len());
        assert!(merged.spilled_bytes() > 0, "merged rows should live on disk");
        assert_eq!(
            merged.iter().collect::<Vec<_>>(),
            merged_model.iter().collect::<Vec<_>>()
        );
        assert_eq!(merged, merged_model, "PartialEq must see through the spill");
        assert_eq!(
            merged.router(RouterId(129)).collect::<Vec<_>>(),
            merged_model.router(RouterId(129)).collect::<Vec<_>>()
        );
        assert_eq!(merged.router_len(RouterId(1)), 3);
    }
}
