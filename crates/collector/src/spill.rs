//! Out-of-core segment storage for the columnar dataset tables.
//!
//! When a study runs with a spill budget (see [`SpillConfig`]), every
//! collector shard that outgrows its slice of the budget *seals* its four
//! columnar tables into one segment file on disk — a compact little-endian
//! framing of the existing column representation (delta-coded times,
//! narrow counters, interned domains) — and keeps simulating into fresh
//! in-memory columns. At snapshot the sealed segments are k-way merged
//! with the resident columns into per-table merged files, in the same
//! router-ID/stable order as the in-memory shard merge, so reports are
//! byte-identical to the unbounded run at every scale and thread count.
//!
//! Layout and lifetime:
//!
//! * A [`SegmentStore`] owns one freshly created directory (under the
//!   configured `--spill-dir`, or the OS temp dir) and removes it when the
//!   last reference drops. Segments never outlive the process, so files
//!   carry no self-describing table of contents — each seal returns an
//!   in-memory [`SealedSegment`] mapping routers to [`BlockRef`]s.
//! * Every block is the encoding of one router's column group for one
//!   table. Blocks are written in ascending router order within a
//!   segment, and the merge reads them back in ascending router order, so
//!   reads are sequential per file.
//! * All segment I/O returns `Result` — a failed seal degrades the shard
//!   back to resident (in-memory) operation with the error surfaced via
//!   [`crate::Collector::spill_stats`], never a panic on the ingest path.

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use firmware::records::RouterId;
use std::collections::BTreeMap;

/// First bytes of every segment and merged-column file, for debuggability
/// when poking at a spill directory (readers address blocks by offset and
/// do not re-validate it).
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"BSMKSPL1";

/// Out-of-core configuration for a study or a collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Total resident-column budget in bytes, split evenly across the
    /// collector's shards. `0` means spill-everything: every batch that
    /// lands columnar records is sealed to disk immediately.
    pub budget_bytes: u64,
    /// Directory to create the spill store under. `None` uses the OS
    /// temp dir. The store creates (and on drop removes) its own
    /// uniquely named subdirectory either way.
    pub dir: Option<PathBuf>,
}

/// Why a spill operation failed. `Io` wraps the OS error from segment
/// file creation/read/write; `Corrupt` means a segment block did not
/// decode back into a well-formed column group (truncation, bad length
/// prefix, or an invalid interned domain).
#[derive(Debug)]
pub enum SpillError {
    /// Segment file I/O failed.
    Io(io::Error),
    /// A segment block failed to decode.
    Corrupt(&'static str),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "segment I/O: {e}"),
            SpillError::Corrupt(what) => write!(f, "corrupt segment block: {what}"),
        }
    }
}

impl std::error::Error for SpillError {}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> SpillError {
        SpillError::Io(e)
    }
}

/// One encoded column-group block inside a segment or merged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockRef {
    /// Byte offset of the block from the start of the file.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Records the block decodes to.
    pub rows: u64,
}

/// The in-memory table of contents of one sealed shard segment: for each
/// of the seven columnar tables, which routers have a block and where.
#[derive(Debug, Clone, Default)]
pub(crate) struct SealedSegment {
    /// File name inside the store directory.
    pub file: String,
    /// Packet-statistics blocks by router.
    pub packet_stats: BTreeMap<RouterId, BlockRef>,
    /// Flow blocks by router.
    pub flows: BTreeMap<RouterId, BlockRef>,
    /// DNS-sample blocks by router.
    pub dns: BTreeMap<RouterId, BlockRef>,
    /// MAC-sighting blocks by router.
    pub macs: BTreeMap<RouterId, BlockRef>,
    /// WiFi-scan blocks by router.
    pub wifi: BTreeMap<RouterId, BlockRef>,
    /// Association blocks by router.
    pub associations: BTreeMap<RouterId, BlockRef>,
    /// Latency-probe blocks by router.
    pub latency: BTreeMap<RouterId, BlockRef>,
    /// NAT-probe blocks by router.
    pub nat_probes: BTreeMap<RouterId, BlockRef>,
    /// Hole-punch-trial blocks by router.
    pub punch_trials: BTreeMap<RouterId, BlockRef>,
    /// Total bytes written for this segment (including the magic).
    pub bytes: u64,
}

/// One table's slice of a [`SealedSegment`], fed to the spilled merge.
#[derive(Debug, Clone)]
pub(crate) struct TableToc {
    /// File name inside the store directory.
    pub file: String,
    /// This table's blocks by router.
    pub blocks: BTreeMap<RouterId, BlockRef>,
}

/// Process-unique suffix for store directories (several collectors may
/// spill concurrently in one test process).
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// An owned on-disk directory of segment files. Dropping the last
/// reference removes the directory and everything in it, so spilled
/// studies leave nothing behind.
#[derive(Debug)]
pub(crate) struct SegmentStore {
    dir: PathBuf,
    merge_seq: AtomicU64,
}

impl SegmentStore {
    /// Create a fresh, uniquely named store directory under `base` (or
    /// the OS temp dir). Deliberately *not* named by wall-clock time —
    /// simulation code is clock-free — the process id plus a process-wide
    /// counter is unique enough for a directory we create ourselves.
    pub(crate) fn create(base: Option<&Path>) -> io::Result<SegmentStore> {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let name = format!("bismark-spill-{}-{seq}", std::process::id());
        let dir = match base {
            Some(base) => base.join(name),
            None => std::env::temp_dir().join(name),
        };
        fs::create_dir_all(&dir)?;
        Ok(SegmentStore { dir, merge_seq: AtomicU64::new(0) })
    }

    /// The store directory (diagnostics only).
    #[cfg(test)]
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// A unique id for one merge pass, so repeated snapshots of a live
    /// collector never collide on merged-file names.
    pub(crate) fn next_merge_id(&self) -> u64 {
        self.merge_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Write a whole segment in one call (used by shard seals, which
    /// encode to a buffer first so a failed write loses nothing).
    pub(crate) fn write_file(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(self.dir.join(name))?;
        f.write_all(bytes)?;
        f.flush()
    }

    /// Open an existing segment or merged file for block reads.
    pub(crate) fn open(&self, name: &str) -> io::Result<File> {
        File::open(self.dir.join(name))
    }

    /// Delete a segment or merged file no longer referenced by any
    /// table — stream mode reclaims each window's merged delta file once
    /// its rows have been absorbed into the resident accumulator.
    pub(crate) fn remove_file(&self, name: &str) {
        // simlint: allow(error-swallow) — best-effort reclaim of an unreferenced temp file; the store's Drop removes the whole directory anyway, so a failed unlink only defers cleanup
        let _ = fs::remove_file(self.dir.join(name));
    }

    /// Start an append-only merged-column file (magic already written;
    /// block offsets returned by [`BlockWriter::append`] account for it).
    pub(crate) fn writer(&self, name: &str) -> io::Result<BlockWriter> {
        let file = File::create(self.dir.join(name))?;
        let mut out = BufWriter::new(file);
        out.write_all(SEGMENT_MAGIC)?;
        Ok(BlockWriter { out, offset: SEGMENT_MAGIC.len() as u64 })
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        // simlint: allow(error-swallow) — best-effort temp-dir cleanup in Drop; a failure (e.g. the dir was already reaped) must not panic a drop and no ledger outlives the store
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Append-only block writer over one merged-column file.
#[derive(Debug)]
pub(crate) struct BlockWriter {
    out: BufWriter<File>,
    offset: u64,
}

impl BlockWriter {
    /// Append one encoded block; returns its offset from file start.
    pub(crate) fn append(&mut self, block: &[u8]) -> io::Result<u64> {
        let at = self.offset;
        self.out.write_all(block)?;
        self.offset += block.len() as u64;
        Ok(at)
    }

    /// Flush and close the file.
    pub(crate) fn finish(mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Read one block into `buf` (cleared and resized).
pub(crate) fn read_block(
    file: &mut File,
    at: &BlockRef,
    buf: &mut Vec<u8>,
) -> Result<(), SpillError> {
    file.seek(SeekFrom::Start(at.offset))?;
    buf.clear();
    buf.resize(at.len as usize, 0);
    file.read_exact(buf)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Little-endian framing primitives. The put_* functions are on the seal
// path (hot-path manifest: extend-only, no allocation); Cursor is the
// bounds-checked reader — every decode error is a typed `Corrupt`, never
// a slice-index panic.

/// Append one `u8`.
pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append one little-endian `u16`.
pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one little-endian `u32`.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked reader over one encoded block.
#[derive(Debug)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Read from the start of `buf`.
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Consume `n` raw bytes.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SpillError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SpillError::Corrupt("length overflows the block"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(SpillError::Corrupt("truncated block"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Read a length prefix for `width`-byte elements, rejecting any
    /// count the remaining bytes cannot possibly hold (so a corrupt
    /// prefix fails fast instead of attempting a huge allocation).
    pub(crate) fn len_prefix(&mut self, width: usize) -> Result<usize, SpillError> {
        let n = self.u64()? as usize;
        if width > 0 && n > self.remaining() / width {
            return Err(SpillError::Corrupt("length prefix exceeds block size"));
        }
        Ok(n)
    }

    /// Read one `u8`.
    pub(crate) fn u8(&mut self) -> Result<u8, SpillError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(SpillError::Corrupt("truncated u8"))
    }

    /// Read one little-endian `u16`.
    pub(crate) fn u16(&mut self) -> Result<u16, SpillError> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b.try_into().map_err(|_| SpillError::Corrupt("truncated u16"))?;
        Ok(u16::from_le_bytes(arr))
    }

    /// Read one little-endian `u32`.
    pub(crate) fn u32(&mut self) -> Result<u32, SpillError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| SpillError::Corrupt("truncated u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read one little-endian `u64`.
    pub(crate) fn u64(&mut self) -> Result<u64, SpillError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| SpillError::Corrupt("truncated u64"))?;
        Ok(u64::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_round_trips_and_rejects_truncation() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, u32::MAX - 1);
        put_u64(&mut buf, u64::MAX);
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.u8().unwrap(), 7);
        assert_eq!(cur.u16().unwrap(), 300);
        assert_eq!(cur.u32().unwrap(), u32::MAX - 1);
        assert_eq!(cur.u64().unwrap(), u64::MAX);
        assert_eq!(cur.remaining(), 0);
        assert!(cur.u8().is_err(), "reading past the end is a typed error");

        let mut cur = Cursor::new(&buf[..3]);
        assert_eq!(cur.u8().unwrap(), 7);
        assert!(cur.u32().is_err());
    }

    #[test]
    fn len_prefix_rejects_counts_that_cannot_fit() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        assert!(Cursor::new(&buf).len_prefix(4).is_err());
        let mut buf = Vec::new();
        put_u64(&mut buf, 2);
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        assert_eq!(Cursor::new(&buf).len_prefix(4).unwrap(), 2);
    }

    #[test]
    fn store_removes_its_directory_on_drop() {
        let store = SegmentStore::create(None).expect("create store");
        let dir = store.dir().to_path_buf();
        store.write_file("seg0", b"hello").expect("write");
        assert!(dir.join("seg0").is_file());
        drop(store);
        assert!(!dir.exists(), "store directory must be removed on drop");
    }

    #[test]
    fn block_writer_offsets_account_for_the_magic() {
        let store = SegmentStore::create(None).expect("create store");
        let mut w = store.writer("merged.col").expect("writer");
        let a = w.append(b"abc").expect("append");
        let b = w.append(b"defg").expect("append");
        w.finish().expect("finish");
        assert_eq!(a, SEGMENT_MAGIC.len() as u64);
        assert_eq!(b, a + 3);
        let mut f = store.open("merged.col").expect("open");
        let mut buf = Vec::new();
        read_block(&mut f, &BlockRef { offset: b, len: 4, rows: 0 }, &mut buf).expect("read");
        assert_eq!(buf, b"defg");
    }
}
