//! The shipped fault scenarios, compiled deterministically from a seed.
//!
//! Compilation is slot-based: the usable portion of the study span is cut
//! into equal slots, one fault event per slot, placed uniformly inside it.
//! That guarantees non-overlapping windows by construction (no rejection
//! sampling, no draw-order coupling) and scales event counts with the span
//! so `quick` studies and the full 197-day run both get meaningful
//! scenarios. Every draw comes from a stream derived as
//! `root → "faultlab" → <scenario> [→ router]`, so plans for different
//! scenarios or routers never perturb one another.

use crate::plan::{ClockSkew, FaultPlan, HomeFaults, PowerCycle};
use collector::Window;
use firmware::records::RouterId;
use simnet::impair::{ImpairmentSchedule, ImpairmentWindow};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// A named, shipped fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// Loss and latency spikes on every router's WAN upload path. The
    /// store-and-forward uploader must deliver every batch anyway: the
    /// resulting datasets are identical to a fault-free run.
    LossyWan,
    /// The collection server flaps: repeated downtime windows. Batch
    /// uploads are nacked and retried (zero loss); heartbeat datagrams
    /// die, producing the correlated gaps `analysis::artifacts` detects.
    CollectorFlap,
    /// Routers misbehave: extra power cycles, some flash-wiping the spool
    /// (accounted on the gap ledger), plus mild clock skew on a minority
    /// of gateways.
    RouterChurn,
}

impl FaultScenario {
    /// Every shipped scenario.
    pub const ALL: [FaultScenario; 3] =
        [FaultScenario::LossyWan, FaultScenario::CollectorFlap, FaultScenario::RouterChurn];

    /// The scenario's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::LossyWan => "lossy-wan",
            FaultScenario::CollectorFlap => "collector-flap",
            FaultScenario::RouterChurn => "router-churn",
        }
    }
}

impl std::fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultScenario, String> {
        FaultScenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| format!("unknown fault scenario '{s}' (expected lossy-wan, collector-flap, or router-churn)"))
    }
}

/// One fault slot: `[start, end)` with room for an event of `max_len`.
struct Slot {
    start: SimTime,
    len: SimDuration,
}

/// Cut the central portion of `span` into `n` equal slots.
fn slots(span: Window, n: usize) -> Vec<Slot> {
    let total = span.duration();
    // Faults live in the middle 80% of the span, so the run's edges stay
    // clean (the final drain happens after the span and must find the
    // path clear).
    let usable_start = span.start + SimDuration::from_micros(total.as_micros() / 10);
    let usable = SimDuration::from_micros(total.as_micros() * 8 / 10);
    let slot = SimDuration::from_micros(usable.as_micros() / n as u64);
    (0..n).map(|i| Slot { start: usable_start + slot * (i as u64), len: slot }).collect()
}

/// Place a window of `dur` uniformly inside the slot (clamped to fit).
fn place(slot: &Slot, dur: SimDuration, rng: &mut DetRng) -> Window {
    let dur = SimDuration::from_micros(dur.as_micros().min(slot.len.as_micros().saturating_sub(1)));
    let slack = slot.len.as_micros() - dur.as_micros();
    let offset = SimDuration::from_micros(rng.uniform_int(0, slack.max(1)));
    let start = slot.start + offset;
    Window { start, end: start + dur }
}

fn minutes_between(lo: u64, hi: u64, rng: &mut DetRng) -> SimDuration {
    SimDuration::from_mins(rng.uniform_int(lo, hi + 1))
}

/// How many fault events a span earns: one per `days_per` days, clamped.
fn scaled_count(span: Window, days_per: u64, lo: usize, hi: usize) -> usize {
    let days = span.duration().as_micros() / SimDuration::from_days(1).as_micros();
    ((days / days_per) as usize).clamp(lo, hi)
}

impl FaultPlan {
    /// Compile a shipped scenario for the given seed, study span, and
    /// deployment. Pure: same inputs, same plan, bit for bit.
    pub fn scenario(
        scenario: FaultScenario,
        seed: u64,
        span: Window,
        routers: &[RouterId],
    ) -> FaultPlan {
        let root = DetRng::new(seed).derive("faultlab").derive(scenario.name());
        match scenario {
            FaultScenario::CollectorFlap => collector_flap(span, root),
            FaultScenario::LossyWan => lossy_wan(span, root, routers),
            FaultScenario::RouterChurn => router_churn(span, root, routers),
        }
    }
}

/// Repeated collector downtime: one 45–120 minute window every ~4 days
/// (at least 2, at most 12). No per-home faults.
fn collector_flap(span: Window, mut rng: DetRng) -> FaultPlan {
    let n = scaled_count(span, 4, 2, 12);
    let downtime = slots(span, n)
        .iter()
        .map(|s| {
            let dur = minutes_between(45, 120, &mut rng);
            place(s, dur, &mut rng)
        })
        .collect();
    FaultPlan::new(downtime, Vec::new())
}

/// Per-router WAN upload impairment: every router gets loss/latency
/// windows (one every ~5 days, 30–180 minutes, loss 0.3–0.9, extra delay
/// 100–2000 ms). No collector downtime.
fn lossy_wan(span: Window, rng: DetRng, routers: &[RouterId]) -> FaultPlan {
    let n = scaled_count(span, 5, 2, 10);
    let homes = routers
        .iter()
        .map(|&router| {
            let mut hrng = rng.derive_indexed("home", u64::from(router.0));
            let windows = slots(span, n)
                .iter()
                .map(|s| {
                    let dur = minutes_between(30, 180, &mut hrng);
                    let w = place(s, dur, &mut hrng);
                    ImpairmentWindow {
                        start: w.start,
                        end: w.end,
                        loss_prob: hrng.uniform_range(0.3, 0.9),
                        extra_delay: SimDuration::from_millis(hrng.uniform_int(100, 2_001)),
                    }
                })
                .collect();
            HomeFaults {
                router,
                power_cycles: Vec::new(),
                wan: ImpairmentSchedule::new(windows),
                clock_skew: None,
            }
        })
        .collect();
    FaultPlan::new(Vec::new(), homes)
}

/// Router misbehavior: ~80% of routers get extra power cycles (one every
/// ~3 days, 5–120 minutes, 25% of them flash wipes); ~25% get a clock
/// that runs 1–30 s fast for one slot of the span.
fn router_churn(span: Window, rng: DetRng, routers: &[RouterId]) -> FaultPlan {
    let n = scaled_count(span, 3, 1, 20);
    let homes = routers
        .iter()
        .filter_map(|&router| {
            let mut hrng = rng.derive_indexed("home", u64::from(router.0));
            let mut faults = HomeFaults::none(router);
            if hrng.chance(0.8) {
                faults.power_cycles = slots(span, n)
                    .iter()
                    .map(|s| {
                        let dur = minutes_between(5, 120, &mut hrng);
                        let w = place(s, dur, &mut hrng);
                        PowerCycle {
                            at: w.start,
                            duration: w.duration(),
                            flash_wipe: hrng.chance(0.25),
                        }
                    })
                    .collect();
            }
            if hrng.chance(0.25) {
                let slot_list = slots(span, n.max(2));
                let slot = &slot_list[hrng.index(slot_list.len())];
                faults.clock_skew = Some(ClockSkew {
                    window: Window { start: slot.start, end: slot.start + slot.len },
                    offset: SimDuration::from_secs(hrng.uniform_int(1, 31)),
                });
            }
            (!faults.is_empty()).then_some(faults)
        })
        .collect();
    FaultPlan::new(Vec::new(), homes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(days: u64) -> Window {
        Window { start: SimTime::EPOCH, end: SimTime::EPOCH + SimDuration::from_days(days) }
    }

    fn deployment(n: u32) -> Vec<RouterId> {
        (1..=n).map(RouterId).collect()
    }

    #[test]
    fn compilation_is_deterministic() {
        for sc in FaultScenario::ALL {
            let a = FaultPlan::scenario(sc, 42, span(20), &deployment(30));
            let b = FaultPlan::scenario(sc, 42, span(20), &deployment(30));
            assert_eq!(a, b, "{sc} not deterministic");
            let c = FaultPlan::scenario(sc, 43, span(20), &deployment(30));
            assert_ne!(a, c, "{sc} ignores the seed");
        }
    }

    #[test]
    fn collector_flap_windows_inside_span_and_disjoint() {
        let plan = FaultPlan::scenario(FaultScenario::CollectorFlap, 7, span(20), &deployment(10));
        assert!(plan.homes.is_empty());
        let w = &plan.collector_downtime;
        assert!(w.len() >= 2);
        for win in w {
            assert!(win.start >= span(20).start && win.end <= span(20).end);
            assert!(win.duration() >= SimDuration::from_mins(30), "long enough to detect");
        }
        for pair in w.windows(2) {
            assert!(pair[0].end <= pair[1].start, "downtime windows overlap");
        }
    }

    #[test]
    fn lossy_wan_covers_every_router_with_partial_loss() {
        let routers = deployment(12);
        let plan = FaultPlan::scenario(FaultScenario::LossyWan, 7, span(20), &routers);
        assert!(plan.collector_downtime.is_empty());
        assert_eq!(plan.homes.len(), routers.len());
        for h in &plan.homes {
            assert!(!h.wan.is_empty());
            for w in h.wan.windows() {
                assert!((0.3..0.9).contains(&w.loss_prob), "loss never total: retries converge");
                assert!(w.extra_delay >= SimDuration::from_millis(100));
            }
        }
    }

    #[test]
    fn router_churn_injects_cycles_wipes_and_skew() {
        let routers = deployment(40);
        let plan = FaultPlan::scenario(FaultScenario::RouterChurn, 7, span(20), &routers);
        assert!(plan.collector_downtime.is_empty());
        assert!(!plan.homes.is_empty());
        assert!(plan.flash_wipe_count() > 0, "churn without wipes proves nothing");
        assert!(plan.homes.iter().any(|h| h.clock_skew.is_some()));
        for h in &plan.homes {
            for pair in h.power_cycles.windows(2) {
                assert!(pair[0].until() <= pair[1].at, "power cycles overlap");
            }
        }
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in FaultScenario::ALL {
            assert_eq!(sc.name().parse::<FaultScenario>().unwrap(), sc);
        }
        assert!("nonsense".parse::<FaultScenario>().is_err());
    }

    #[test]
    fn short_quick_spans_still_compile() {
        for sc in FaultScenario::ALL {
            let plan = FaultPlan::scenario(sc, 3, span(2), &deployment(5));
            // Tiny spans still produce a usable plan (or at least don't
            // panic); collector-flap always has its minimum two windows.
            if sc == FaultScenario::CollectorFlap {
                assert_eq!(plan.collector_downtime.len(), 2);
            }
        }
    }
}
