//! The fault plan: pure data describing every injected failure.

use collector::Window;
use firmware::records::RouterId;
use simnet::impair::ImpairmentSchedule;
use simnet::time::{SimDuration, SimTime};

/// One injected power cycle: the router loses power at `at` for
/// `duration`. A flash-wipe cycle additionally destroys the uploader's
/// spool and unsealed records on the way down — the "bricked and
/// re-flashed" failure the deployment knew well.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCycle {
    /// When the power goes out.
    pub at: SimTime,
    /// How long it stays out.
    pub duration: SimDuration,
    /// Whether the reboot wipes flash storage.
    pub flash_wipe: bool,
}

impl PowerCycle {
    /// When the power comes back.
    pub fn until(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A clock-skew fault: within `window`, the gateway's clock runs ahead by
/// `offset`, so the records it *stamps itself* carry skewed timestamps.
/// Heartbeats are immune — their timestamp is assigned collector-side on
/// arrival, which is exactly why the paper's availability analyses lean on
/// them rather than on router-stamped logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSkew {
    /// When the clock is wrong.
    pub window: Window,
    /// How far ahead it runs.
    pub offset: SimDuration,
}

/// Everything that goes wrong for one home.
#[derive(Debug, Clone, PartialEq)]
pub struct HomeFaults {
    /// The afflicted router.
    pub router: RouterId,
    /// Injected power cycles, in time order, non-overlapping.
    pub power_cycles: Vec<PowerCycle>,
    /// Impairment on the router's WAN *upload* path (batch uploads draw
    /// their fate from this schedule; an empty schedule never draws).
    pub wan: ImpairmentSchedule,
    /// Clock skew, if this home's gateway drifts.
    pub clock_skew: Option<ClockSkew>,
}

impl HomeFaults {
    /// A fault entry that injects nothing (useful as a building block).
    pub fn none(router: RouterId) -> HomeFaults {
        HomeFaults {
            router,
            power_cycles: Vec::new(),
            wan: ImpairmentSchedule::none(),
            clock_skew: None,
        }
    }

    /// Does this entry actually inject anything?
    pub fn is_empty(&self) -> bool {
        self.power_cycles.is_empty() && self.wan.is_empty() && self.clock_skew.is_none()
    }
}

/// The complete fault plan for one study run.
///
/// `homes` is kept sorted by router ID so per-home lookup during study
/// setup is a binary search. An empty plan means the fault subsystem is
/// entirely disengaged — the study runner must produce byte-identical
/// output to a build without faultlab at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Windows during which the collection infrastructure is down. Ground
    /// truth for the artifacts detector's precision/recall score.
    pub collector_downtime: Vec<Window>,
    /// Per-home fault entries, sorted by router ID.
    pub homes: Vec<HomeFaults>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build a plan from parts, normalizing the sort invariants.
    pub fn new(mut collector_downtime: Vec<Window>, mut homes: Vec<HomeFaults>) -> FaultPlan {
        collector_downtime.sort_by_key(|w| (w.start, w.end));
        homes.retain(|h| !h.is_empty());
        homes.sort_by_key(|h| h.router);
        for h in &mut homes {
            h.power_cycles.sort_by_key(|c| c.at);
        }
        FaultPlan { collector_downtime, homes }
    }

    /// Does the plan inject nothing at all?
    pub fn is_empty(&self) -> bool {
        self.collector_downtime.is_empty() && self.homes.iter().all(HomeFaults::is_empty)
    }

    /// This router's faults, if it has any.
    pub fn for_router(&self, router: RouterId) -> Option<&HomeFaults> {
        self.homes
            .binary_search_by_key(&router, |h| h.router)
            .ok()
            .map(|i| &self.homes[i])
    }

    /// Total records the plan can destroy is not knowable up front, but
    /// the number of injected flash wipes is — useful for sanity checks.
    pub fn flash_wipe_count(&self) -> usize {
        self.homes
            .iter()
            .map(|h| h.power_cycles.iter().filter(|c| c.flash_wipe).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::empty().is_empty());
        assert!(FaultPlan::new(Vec::new(), vec![HomeFaults::none(RouterId(1))]).is_empty());
    }

    #[test]
    fn new_normalizes_and_lookup_finds() {
        let mut h9 = HomeFaults::none(RouterId(9));
        h9.power_cycles.push(PowerCycle {
            at: t(100),
            duration: SimDuration::from_mins(10),
            flash_wipe: true,
        });
        h9.power_cycles.insert(
            0,
            PowerCycle { at: t(200), duration: SimDuration::from_mins(5), flash_wipe: false },
        );
        let mut h2 = HomeFaults::none(RouterId(2));
        h2.clock_skew =
            Some(ClockSkew { window: Window { start: t(0), end: t(50) }, offset: SimDuration::from_secs(5) });
        let plan = FaultPlan::new(
            vec![Window { start: t(500), end: t(600) }, Window { start: t(10), end: t(20) }],
            vec![h9, HomeFaults::none(RouterId(5)), h2],
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.homes.len(), 2, "no-op entries dropped");
        assert_eq!(plan.homes[0].router, RouterId(2), "sorted by router");
        assert_eq!(plan.collector_downtime[0].start, t(10), "windows sorted");
        assert_eq!(plan.for_router(RouterId(9)).unwrap().power_cycles[0].at, t(100));
        assert!(plan.for_router(RouterId(5)).is_none());
        assert_eq!(plan.flash_wipe_count(), 1);
        assert_eq!(
            plan.for_router(RouterId(9)).unwrap().power_cycles[0].until(),
            t(110)
        );
    }
}
