//! # faultlab — deterministic fault injection for the study
//!
//! §3.3 of the paper concedes that "various outages and failures — both of
//! the routers themselves and of the collection infrastructure" shaped
//! every dataset. This crate makes those failures a first-class, *seeded*
//! input instead of an accident: a [`FaultPlan`] describes, per router and
//! for the collector, exactly what goes wrong and when, and the study
//! orchestrator compiles it into simulation events.
//!
//! The plan is pure data and its compilation draws only from labeled
//! [`DetRng`] streams, so a scenario replayed from the same seed injects
//! bit-identical faults — which is what turns the plan into *ground truth*:
//! the analysis crate's collector-outage detector can be scored for
//! precision and recall against [`FaultPlan::collector_downtime`], and the
//! collector's gap ledger can be checked against the injected flash wipes.
//!
//! An empty plan is the absolute zero: the study runner treats it as "no
//! fault subsystem at all" and produces byte-identical datasets and
//! reports.
//!
//! Three scenarios ship (see [`FaultScenario`]):
//!
//! * `lossy-wan` — upload loss/latency spikes on the routers' WAN paths.
//!   The store-and-forward uploader must deliver everything anyway.
//! * `collector-flap` — the collection server goes down repeatedly.
//!   Batches are nacked and retried (zero loss); heartbeat datagrams die,
//!   leaving the correlated silence the artifacts detector hunts for.
//! * `router-churn` — extra power cycles, some of them flash-wipe reboots
//!   that destroy spooled data (accounted on the gap ledger), plus mild
//!   clock skew on a minority of gateways.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod scenarios;

pub use plan::{ClockSkew, FaultPlan, HomeFaults, PowerCycle};
pub use scenarios::FaultScenario;

// Re-exported so plan consumers name the schedule type without importing
// simnet themselves.
pub use simnet::impair::{ImpairmentSchedule, ImpairmentWindow};
