//! The CGN deployment plan: pure data, compiled once from the seed.
//!
//! Like `faultlab`'s fault plan, the CGN plan is a deterministic function
//! of `(scenario, seed, span, deployment)` — same inputs, same plan, bit
//! for bit. It decides which homes each ISP fronts with carrier-grade
//! NAT (per-region fractions), groups fronted homes behind boxes, draws
//! each box's RFC 4787 behavior, replays the shared pool's port-block
//! allocation history (including exhaustion and oldest-first eviction),
//! and schedules every home's pairwise hole-punch trials. An empty plan
//! means the subsystem is fully disengaged: the study runner must produce
//! byte-identical output to a build without this crate at all.

use collector::Window;
use firmware::natprobe::NatType;
use firmware::records::RouterId;
use household::{Country, Region};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

use crate::allocator::{self, BlockSupply};
use crate::hop::BoxBehavior;
use crate::scenarios::CgnScenario;

/// One period during which a subscriber holds a port block on a shared
/// pool address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLease {
    /// When the block is held (half-open).
    pub window: Window,
    /// The shared pool address.
    pub addr: Ipv4Addr,
    /// First port of the block.
    pub port_start: u16,
    /// Ports in the block.
    pub port_len: u16,
    /// Whether the lease ended by eviction (vs. running to span end).
    pub evicted: bool,
}

/// A fronted home's CGN assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgnAssignment {
    /// Which box fronts this home.
    pub box_id: u32,
    /// The box's translation behavior.
    pub behavior: BoxBehavior,
    /// The home's port-block lease history, time-ordered.
    pub leases: Vec<BlockLease>,
}

/// One scheduled pairwise hole-punch trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PunchTrialPlan {
    /// When the trial runs.
    pub at: SimTime,
    /// The peer home on the other side.
    pub peer: RouterId,
    /// The peer's CGN box behavior (`None`: peer is behind a plain home
    /// NAT only). Denormalized so the trial needs no cross-home state.
    pub peer_behavior: Option<BoxBehavior>,
}

/// Everything the CGN tier does to one home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeCgn {
    /// The home.
    pub router: RouterId,
    /// CGN fronting, if this home drew it (`None`: plain home NAT, which
    /// still runs probes — the detection experiment needs negatives).
    pub assignment: Option<CgnAssignment>,
    /// Scheduled hole-punch trials, time-ordered.
    pub punches: Vec<PunchTrialPlan>,
}

impl HomeCgn {
    /// Is this home actually behind carrier-grade NAT?
    pub fn is_fronted(&self) -> bool {
        self.assignment.is_some()
    }

    /// The NAT type a correct probe must conclude for this home — the
    /// scoring ground truth. Unfronted homes sit behind the (full-cone)
    /// home NAT alone.
    pub fn truth_nat_type(&self) -> NatType {
        self.assignment.as_ref().map_or(NatType::FullCone, |a| a.behavior.nat_type())
    }
}

/// Aggregate compile-time facts about a plan, for metrics and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Homes behind CGN.
    pub fronted_homes: u64,
    /// Shared pool addresses across all boxes.
    pub pool_addrs: u64,
    /// Port blocks available across all boxes.
    pub blocks: u64,
    /// Block leases granted over the span.
    pub leases: u64,
    /// Leases ended early by eviction.
    pub evictions: u64,
    /// Arrivals that found the pool exhausted.
    pub exhaustion_events: u64,
}

/// The complete CGN plan for one study run. `homes` is sorted by router
/// ID; when the plan is armed it has an entry for *every* home (unfronted
/// homes still probe and punch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CgnPlan {
    /// The compiled scenario, if armed.
    pub scenario: Option<CgnScenario>,
    /// Per-home entries, sorted by router ID.
    pub homes: Vec<HomeCgn>,
    /// Boxes deployed.
    pub boxes: u32,
    /// Compile-time aggregates.
    pub stats: PlanStats,
}

impl CgnPlan {
    /// The plan that deploys nothing.
    pub fn empty() -> CgnPlan {
        CgnPlan::default()
    }

    /// Is the CGN subsystem entirely disengaged?
    pub fn is_empty(&self) -> bool {
        self.scenario.is_none()
    }

    /// This router's entry, if the plan is armed.
    pub fn for_router(&self, router: RouterId) -> Option<&HomeCgn> {
        self.homes
            .binary_search_by_key(&router, |h| h.router)
            .ok()
            .map(|i| &self.homes[i])
    }

    /// Publish plan-level gauges. Only called on armed runs, so the CGN
    /// key family never appears in a baseline `metrics.json`.
    pub fn publish_metrics(&self) {
        obs::gauge("cgn_fronted_homes").set(self.stats.fronted_homes);
        obs::gauge("cgn_boxes").set(u64::from(self.boxes));
        obs::gauge("cgn_pool_addrs").set(self.stats.pool_addrs);
        obs::gauge("cgn_blocks").set(self.stats.blocks);
        obs::gauge("cgn_block_leases").set(self.stats.leases);
        obs::gauge("cgn_block_evictions").set(self.stats.evictions);
        obs::gauge("cgn_exhaustion_events").set(self.stats.exhaustion_events);
    }

    /// Compile a shipped scenario for the given seed, study span, and
    /// deployment. Pure: same inputs, same plan, bit for bit.
    pub fn scenario(
        scenario: CgnScenario,
        seed: u64,
        span: Window,
        homes: &[(RouterId, Country)],
    ) -> CgnPlan {
        let p = scenario.params();
        let root = DetRng::new(seed).derive("cgn").derive(scenario.name());

        // Pass 1: per-home CGN membership and pool-arrival time. The
        // arrival jitter window shrinks with tiny test spans so arrivals
        // always land inside the span.
        let arrival_mins = (span.duration().as_mins() / 4).clamp(1, 12 * 60);
        let mut fronted: Vec<usize> = Vec::new();
        let mut arrival: Vec<SimTime> = vec![span.start; homes.len()];
        for (i, &(router, country)) in homes.iter().enumerate() {
            let mut hrng = root.derive_indexed("home", u64::from(router.0));
            let fraction = match country.region() {
                Region::Developed => p.developed_fraction,
                Region::Developing => p.developing_fraction,
            };
            if hrng.chance(fraction) {
                fronted.push(i);
                arrival[i] = span.start + SimDuration::from_mins(hrng.uniform_int(0, arrival_mins));
            }
        }

        // Pass 2: group fronted homes into boxes (deployment order), draw
        // each box's behavior, and replay its pool allocation history.
        let mut assignment: Vec<Option<CgnAssignment>> = vec![None; homes.len()];
        let mut stats = PlanStats { fronted_homes: fronted.len() as u64, ..PlanStats::default() };
        let mut boxes = 0u32;
        let mut addr_counter = 0u32;
        for chunk in fronted.chunks(p.subscribers_per_box) {
            let mut brng = root.derive_indexed("box", u64::from(boxes));
            let behavior = [
                BoxBehavior::FULL_CONE,
                BoxBehavior::RESTRICTED,
                BoxBehavior::PORT_RESTRICTED,
                BoxBehavior::SYMMETRIC,
            ][brng.weighted_index(&p.behavior_weights)];
            let addrs: Vec<Ipv4Addr> = (0..p.pool_addrs_per_box)
                .map(|_| {
                    let a = pool_addr(addr_counter);
                    addr_counter += 1;
                    a
                })
                .collect();
            let supply = BlockSupply { addrs, block_ports: p.block_ports };
            let arrivals: Vec<SimTime> = chunk.iter().map(|&i| arrival[i]).collect();
            let alloc = allocator::allocate(span, &supply, &arrivals, p.retry, p.max_leases);
            stats.pool_addrs += supply.addrs.len() as u64;
            stats.blocks += supply.count() as u64;
            stats.evictions += alloc.evictions;
            stats.exhaustion_events += alloc.exhaustion_events;
            for (slot, &i) in chunk.iter().enumerate() {
                let leases = alloc.leases[slot].clone();
                stats.leases += leases.len() as u64;
                assignment[i] = Some(CgnAssignment { box_id: boxes, behavior, leases });
            }
            boxes += 1;
        }

        // Pass 3: pairwise hole-punch schedules for every home (fronted
        // or not — punch success between two plain full cones is the
        // matrix's easy corner and belongs in the data).
        let behaviors: Vec<Option<BoxBehavior>> =
            assignment.iter().map(|a| a.as_ref().map(|x| x.behavior)).collect();
        let days = span.duration().as_micros() / SimDuration::from_days(1).as_micros();
        let trials = ((days / 5) as usize).clamp(2, 8);
        let usable_start = span.start + SimDuration::from_micros(span.duration().as_micros() / 10);
        let usable = span.duration().as_micros() * 8 / 10;
        let slot = usable / trials as u64;
        let plan_homes = homes
            .iter()
            .enumerate()
            .map(|(i, &(router, _))| {
                let mut prng = root.derive_indexed("punch", u64::from(router.0));
                let punches = (homes.len() > 1)
                    .then(|| {
                        (0..trials)
                            .map(|k| {
                                let offset = prng.uniform_int(0, slot.max(1));
                                let at = usable_start
                                    + SimDuration::from_micros(slot * k as u64 + offset);
                                let mut peer = prng.index(homes.len());
                                if peer == i {
                                    peer = (peer + 1) % homes.len();
                                }
                                PunchTrialPlan {
                                    at,
                                    peer: homes[peer].0,
                                    peer_behavior: behaviors[peer],
                                }
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                HomeCgn { router, assignment: assignment[i].take(), punches }
            })
            .collect();

        let mut plan =
            CgnPlan { scenario: Some(scenario), homes: plan_homes, boxes, stats };
        plan.homes.sort_by_key(|h| h.router);
        plan
    }
}

/// The shared pool draws from 198.18.0.0/15 (RFC 2544 benchmarking
/// space), disjoint from home WAN space (100.64/10) and the STUN servers
/// (TEST-NET-1) by construction.
fn pool_addr(idx: u32) -> Ipv4Addr {
    let i = idx % (1 << 17);
    Ipv4Addr::new(
        198,
        18 + ((i >> 16) & 1) as u8,
        ((i >> 8) & 0xff) as u8,
        (i & 0xff) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(days: u64) -> Window {
        Window { start: SimTime::EPOCH, end: SimTime::EPOCH + SimDuration::from_days(days) }
    }

    fn deployment(n: u32) -> Vec<(RouterId, Country)> {
        (1..=n)
            .map(|i| {
                let c = if i % 3 == 0 { Country::UnitedStates } else { Country::India };
                (RouterId(i), c)
            })
            .collect()
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(CgnPlan::empty().is_empty());
        assert!(CgnPlan::empty().for_router(RouterId(1)).is_none());
    }

    #[test]
    fn compilation_is_deterministic() {
        for sc in CgnScenario::ALL {
            let a = CgnPlan::scenario(sc, 42, span(20), &deployment(50));
            let b = CgnPlan::scenario(sc, 42, span(20), &deployment(50));
            assert_eq!(a, b, "{sc} not deterministic");
            let c = CgnPlan::scenario(sc, 43, span(20), &deployment(50));
            assert_ne!(a, c, "{sc} ignores the seed");
        }
    }

    #[test]
    fn armed_plan_covers_every_home() {
        let homes = deployment(40);
        let plan = CgnPlan::scenario(CgnScenario::IspMix, 7, span(20), &homes);
        assert!(!plan.is_empty());
        assert_eq!(plan.homes.len(), homes.len(), "negatives probe too");
        for &(router, _) in &homes {
            let h = plan.for_router(router).expect("entry for every home");
            assert!(!h.punches.is_empty());
            for p in &h.punches {
                assert!(p.at >= span(20).start && p.at < span(20).end);
                assert_ne!(p.peer, router, "never punch yourself");
            }
        }
        let fronted = plan.homes.iter().filter(|h| h.is_fronted()).count() as u64;
        assert_eq!(fronted, plan.stats.fronted_homes);
        assert!(fronted > 0 && fronted < homes.len() as u64, "isp-mix is a mix");
    }

    #[test]
    fn all_cgn_fronts_everyone_with_leases_inside_span() {
        let homes = deployment(30);
        let plan = CgnPlan::scenario(CgnScenario::AllCgn, 7, span(20), &homes);
        for h in &plan.homes {
            let a = h.assignment.as_ref().expect("all-cgn fronts everyone");
            assert!(!a.leases.is_empty());
            for l in &a.leases {
                assert!(l.window.start >= span(20).start && l.window.end <= span(20).end);
                assert!(l.port_start >= allocator::BLOCK_PORT_BASE);
                assert_eq!(l.addr.octets()[0], 198, "pool space");
            }
            assert_ne!(h.truth_nat_type(), NatType::Open);
        }
        assert_eq!(plan.stats.fronted_homes, 30);
        assert!(plan.boxes >= 1);
    }

    #[test]
    fn port_starved_churns() {
        // 96+ fronted homes on one starved box forces evictions.
        let homes: Vec<(RouterId, Country)> =
            (1..=130).map(|i| (RouterId(i), Country::India)).collect();
        let plan = CgnPlan::scenario(CgnScenario::PortStarved, 7, span(20), &homes);
        assert!(plan.stats.exhaustion_events > 0, "starved scenario never exhausted");
        assert!(plan.stats.evictions > 0);
        assert!(plan.homes.iter().any(|h| {
            h.assignment
                .as_ref()
                .is_some_and(|a| a.leases.iter().any(|l| l.evicted))
        }));
    }

    #[test]
    fn unfronted_homes_keep_full_cone_truth() {
        let homes = deployment(40);
        let plan = CgnPlan::scenario(CgnScenario::IspMix, 7, span(20), &homes);
        let unfronted = plan.homes.iter().find(|h| !h.is_fronted()).expect("mix has negatives");
        assert_eq!(unfronted.truth_nat_type(), NatType::FullCone);
    }

    #[test]
    fn short_quick_spans_still_compile() {
        for sc in CgnScenario::ALL {
            let plan = CgnPlan::scenario(sc, 3, span(2), &deployment(5));
            assert_eq!(plan.homes.len(), 5);
        }
    }

    #[test]
    fn pool_addresses_stay_in_benchmarking_space() {
        for idx in [0u32, 255, 256, 65_535, 65_536, 131_071, 131_072] {
            let a = pool_addr(idx).octets();
            assert_eq!(a[0], 198);
            assert!(a[1] == 18 || a[1] == 19, "{:?} outside 198.18/15", a);
        }
    }
}
