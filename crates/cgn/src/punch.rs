//! Pairwise UDP hole punching, run mechanically through real translation
//! state.
//!
//! Both sides learn their mapped endpoint from an introducer (the STUN
//! server), exchange them out of band, then fire simultaneous datagrams
//! at each other for up to three rounds, re-aiming at the source endpoint
//! of anything that got through (the standard symmetric-rescue trick: a
//! cone-side peer can learn a symmetric peer's fresh per-destination
//! port from the packet that reaches it). The trial succeeds when both
//! directions have been admitted.
//!
//! [`expected_success`] is the analytic ground truth the analysis layer
//! scores measured outcomes against: punching fails exactly when a
//! symmetric NAT faces a symmetric or port-restricted peer.

use firmware::natprobe::{NatType, UdpPath};
use simnet::nat::Nat;
use simnet::packet::Endpoint;
use simnet::time::SimTime;
use std::net::Ipv4Addr;

use crate::chain::NatChain;
use crate::hop::{BoxBehavior, CgnHop};

/// Maximum simultaneous-open rounds before the trial gives up.
const MAX_ROUNDS: usize = 3;

/// The analytic punch-success matrix: the pair fails iff a symmetric NAT
/// faces a peer that filters on exact (address, port) — the peer can
/// never pre-open the right pinhole for a mapping whose port it cannot
/// predict.
pub fn expected_success(a: NatType, b: NatType) -> bool {
    let doomed = |x: NatType, y: NatType| {
        x == NatType::Symmetric && (y == NatType::Symmetric || y == NatType::PortRestricted)
    };
    !(doomed(a, b) || doomed(b, a))
}

/// Run one hole-punch trial between two translation paths. Returns
/// `None` when either side cannot even reach the introducer (blocked CGN
/// hop), `Some(success)` otherwise.
pub fn run_trial(
    now: SimTime,
    a: &mut impl UdpPath,
    a_local: Endpoint,
    b: &mut impl UdpPath,
    b_local: Endpoint,
    introducer: Endpoint,
) -> Option<bool> {
    // Rendezvous: both sides bind via the introducer and exchange the
    // mapped endpoints it observed.
    let a_pub = a.send(now, a_local, introducer)?;
    let b_pub = b.send(now, b_local, introducer)?;
    let mut a_target = b_pub;
    let mut b_target = a_pub;
    let mut a_received = false;
    let mut b_received = false;
    for _ in 0..MAX_ROUNDS {
        if a_received && b_received {
            break;
        }
        let a_sent_to = a_target;
        let b_sent_to = b_target;
        // Both sides transmit before either delivery is evaluated — the
        // simultaneous open that makes restricted-cone pairs work.
        let a_src = a.send(now, a_local, a_sent_to);
        let b_src = b.send(now, b_local, b_sent_to);
        if let Some(src) = a_src {
            if b.admits(now, src, a_sent_to) {
                b_received = true;
                b_target = src;
            }
        }
        if let Some(src) = b_src {
            if a.admits(now, src, b_sent_to) {
                a_received = true;
                a_target = src;
            }
        }
    }
    Some(a_received && b_received)
}

/// A self-contained synthetic peer stack: a plain home NAT, optionally
/// fronted by a synthetic CGN hop with the planned behavior. Hole-punch
/// trials run the local side against one of these, so no cross-home
/// runtime state is needed (the peer's *behavior* travels in the plan).
pub struct SyntheticPeer {
    home: Nat,
    hop: Option<CgnHop>,
    /// The peer's LAN-side socket.
    pub local: Endpoint,
}

/// TEST-NET-3 addresses for the synthetic stack: its home WAN and its
/// CGN pool address, disjoint from everything the deployment uses.
const PEER_WAN: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 77);
const PEER_POOL: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 200);

impl SyntheticPeer {
    /// Build the peer stack for a planned behavior (`None`: home NAT
    /// only).
    pub fn new(behavior: Option<BoxBehavior>) -> SyntheticPeer {
        SyntheticPeer {
            home: Nat::new(PEER_WAN),
            hop: behavior.map(|b| CgnHop::synthetic(b, PEER_POOL)),
            local: Endpoint::new(Ipv4Addr::new(192, 168, 9, 2), 40_000),
        }
    }

    /// The peer's translation path.
    pub fn path(&mut self) -> NatChain<'_> {
        NatChain::new(&mut self.home, self.hop.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmware::natprobe::STUN_SERVERS;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    fn introducer() -> Endpoint {
        Endpoint::new(STUN_SERVERS.primary, STUN_SERVERS.port)
    }

    fn behavior_of(t: NatType) -> Option<BoxBehavior> {
        match t {
            NatType::Open | NatType::FullCone => None,
            NatType::Restricted => Some(BoxBehavior::RESTRICTED),
            NatType::PortRestricted => Some(BoxBehavior::PORT_RESTRICTED),
            NatType::Symmetric => Some(BoxBehavior::SYMMETRIC),
        }
    }

    /// The mechanical trial must reproduce the analytic matrix for every
    /// type pair we can build from synthetic stacks (a bare home NAT is
    /// a full cone, so `Open` collapses onto `FullCone` here).
    #[test]
    fn mechanics_match_expected_matrix() {
        let types =
            [NatType::FullCone, NatType::Restricted, NatType::PortRestricted, NatType::Symmetric];
        for ta in types {
            for tb in types {
                let mut a = SyntheticPeer::new(behavior_of(ta));
                let mut b = SyntheticPeer::new(behavior_of(tb));
                let a_local = a.local;
                let b_local = b.local;
                let got = {
                    let mut ap = NatChain::new(&mut a.home, a.hop.as_mut());
                    let mut bp = NatChain::new(&mut b.home, b.hop.as_mut());
                    run_trial(t(5), &mut ap, a_local, &mut bp, b_local, introducer())
                        .expect("synthetic stacks never block")
                };
                assert_eq!(
                    got,
                    expected_success(ta, tb),
                    "{ta} vs {tb}: mechanics disagree with the matrix"
                );
            }
        }
    }

    #[test]
    fn expected_matrix_shape() {
        use NatType::*;
        // Symmetric against symmetric or port-restricted is the only
        // doomed combination, in either order.
        assert!(!expected_success(Symmetric, Symmetric));
        assert!(!expected_success(Symmetric, PortRestricted));
        assert!(!expected_success(PortRestricted, Symmetric));
        assert!(expected_success(Symmetric, Restricted));
        assert!(expected_success(Restricted, Symmetric));
        assert!(expected_success(Symmetric, FullCone));
        assert!(expected_success(Open, Symmetric));
        for a in NatType::ALL {
            for b in [Open, FullCone, Restricted] {
                if a != Symmetric {
                    assert!(expected_success(a, b));
                }
            }
        }
    }

    /// Two peers behind the *same* kind of stack punch as the matrix
    /// says even when both sides are CGN-fronted (double translation on
    /// both paths).
    #[test]
    fn double_cgn_port_restricted_pair_succeeds() {
        let mut a = SyntheticPeer::new(Some(BoxBehavior::PORT_RESTRICTED));
        let mut b = SyntheticPeer::new(Some(BoxBehavior::PORT_RESTRICTED));
        let (al, bl) = (a.local, b.local);
        let mut ap = NatChain::new(&mut a.home, a.hop.as_mut());
        let mut bp = NatChain::new(&mut b.home, b.hop.as_mut());
        assert_eq!(run_trial(t(5), &mut ap, al, &mut bp, bl, introducer()), Some(true));
    }
}
