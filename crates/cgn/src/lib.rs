//! # cgn — the carrier-grade NAT tier
//!
//! The paper measured home routers from the inside; what the home router
//! itself cannot see is the ISP's *second* NAT. This crate adds that
//! tier to the simulation:
//!
//! * [`scenarios`] — the shipped deployment scenarios (`isp-mix`,
//!   `all-cgn`, `port-starved`), pure configuration;
//! * [`plan`] — the seed-compiled [`CgnPlan`]: which homes are fronted,
//!   box grouping, per-box RFC 4787 behavior, the full port-block lease
//!   history per subscriber, and every scheduled hole-punch trial;
//! * [`allocator`] — the compile-time port-block allocator: lowest free
//!   block first, oldest lease evicted on exhaustion, deterministic to
//!   the byte;
//! * [`hop`] — the runtime [`CgnHop`]: a second translation hop with
//!   endpoint-dependent or -independent mapping, three filtering
//!   disciplines, block-confined port allocation with LRU eviction, and
//!   mapping flushes when the leased block changes;
//! * [`chain`] — [`NatChain`], the home-NAT-then-CGN
//!   [`firmware::natprobe::UdpPath`] the STUN experiment classifies;
//! * [`punch`] — mechanical pairwise hole punching and the analytic
//!   [`expected_success`] matrix it is scored against.
//!
//! An empty plan compiles to a no-op: the study runner must produce
//! byte-identical output to a build without this crate at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod chain;
pub mod hop;
pub mod plan;
pub mod punch;
pub mod scenarios;

pub use chain::NatChain;
pub use hop::{BoxBehavior, CgnHop, FilteringBehavior, MappingBehavior};
pub use plan::{BlockLease, CgnAssignment, CgnPlan, HomeCgn, PlanStats, PunchTrialPlan};
pub use punch::{expected_success, run_trial, SyntheticPeer};
pub use scenarios::CgnScenario;

#[cfg(test)]
mod proptests {
    use crate::plan::CgnPlan;
    use crate::scenarios::CgnScenario;
    use collector::Window;
    use firmware::records::RouterId;
    use household::Country;
    use proptest::prelude::*;
    use simnet::time::{SimDuration, SimTime};

    fn deployment(n: u32) -> Vec<(RouterId, Country)> {
        (1..=n)
            .map(|i| {
                let c = match i % 4 {
                    0 => Country::UnitedStates,
                    1 => Country::India,
                    2 => Country::Brazil,
                    _ => Country::China,
                };
                (RouterId(i), c)
            })
            .collect()
    }

    fn span(days: u64) -> Window {
        Window { start: SimTime::EPOCH, end: SimTime::EPOCH + SimDuration::from_days(days) }
    }

    proptest! {
        /// The port-block allocator never hands the same block to two
        /// subscribers at once, for any seed, deployment size, and
        /// scenario.
        #[test]
        fn no_block_is_double_allocated(
            seed in 0u64..10_000,
            homes in 1u32..160,
            days in 2u64..30,
            sc_idx in 0usize..3,
        ) {
            let sc = CgnScenario::ALL[sc_idx];
            let plan = CgnPlan::scenario(sc, seed, span(days), &deployment(homes));
            // Collect every lease with its holder, grouped by block.
            let mut by_block: std::collections::BTreeMap<_, Vec<Window>> =
                std::collections::BTreeMap::new();
            for h in &plan.homes {
                if let Some(a) = &h.assignment {
                    for l in &a.leases {
                        by_block
                            .entry((a.box_id, l.addr, l.port_start))
                            .or_default()
                            .push(l.window);
                    }
                }
            }
            for ((_, addr, port), mut wins) in by_block {
                wins.sort_by_key(|w| (w.start, w.end));
                for pair in wins.windows(2) {
                    prop_assert!(
                        pair[0].end <= pair[1].start,
                        "block {addr}:{port} held twice at once"
                    );
                }
            }
        }

        /// Eviction is oldest-first: when a lease ends by eviction, no
        /// other lease in the same box both started earlier and survived
        /// past the eviction instant.
        #[test]
        fn eviction_is_oldest_first(
            seed in 0u64..10_000,
            homes in 96u32..200,
            days in 5u64..30,
        ) {
            let plan =
                CgnPlan::scenario(CgnScenario::PortStarved, seed, span(days), &deployment(homes));
            let mut by_box: std::collections::BTreeMap<u32, Vec<&crate::plan::BlockLease>> =
                std::collections::BTreeMap::new();
            for h in &plan.homes {
                if let Some(a) = &h.assignment {
                    for l in &a.leases {
                        by_box.entry(a.box_id).or_default().push(l);
                    }
                }
            }
            for leases in by_box.values() {
                for evicted in leases.iter().filter(|l| l.evicted) {
                    for other in leases.iter() {
                        prop_assert!(
                            !(other.window.start < evicted.window.start
                                && other.window.end > evicted.window.end),
                            "a strictly older lease outlived an eviction"
                        );
                    }
                }
            }
        }

        /// Compilation is pure: identical inputs give identical plans.
        #[test]
        fn plan_compilation_is_pure(
            seed in 0u64..10_000,
            homes in 1u32..120,
            days in 2u64..30,
            sc_idx in 0usize..3,
        ) {
            let sc = CgnScenario::ALL[sc_idx];
            let d = deployment(homes);
            let a = CgnPlan::scenario(sc, seed, span(days), &d);
            let b = CgnPlan::scenario(sc, seed, span(days), &d);
            prop_assert_eq!(a, b);
        }
    }
}
