//! The full translation chain a probe packet traverses: home NAT first,
//! then (when the home is CGN-fronted) the carrier-grade hop.
//!
//! This is the [`firmware::natprobe::UdpPath`] the gateway's STUN-style
//! experiment runs against, so the classified NAT type is a mechanical
//! consequence of the real translation state — never a label copied from
//! the plan.

use firmware::natprobe::UdpPath;
use simnet::nat::Nat;
use simnet::packet::{Endpoint, FiveTuple, IpProtocol};
use simnet::time::SimTime;

use crate::hop::CgnHop;

/// Borrowed view over a home's translation path.
pub struct NatChain<'a> {
    home: &'a mut Nat,
    cgn: Option<&'a mut CgnHop>,
}

impl<'a> NatChain<'a> {
    /// Chain the home NAT with an optional CGN hop.
    pub fn new(home: &'a mut Nat, cgn: Option<&'a mut CgnHop>) -> NatChain<'a> {
        NatChain { home, cgn }
    }
}

impl UdpPath for NatChain<'_> {
    fn send(&mut self, now: SimTime, src: Endpoint, dst: Endpoint) -> Option<Endpoint> {
        let flow = FiveTuple { proto: IpProtocol::Udp, src, dst };
        let out = self.home.translate_outbound(now, flow).ok()?;
        match self.cgn.as_deref_mut() {
            None => Some(out.wan_flow.src),
            Some(hop) => hop.translate_outbound(now, out.wan_flow).ok().map(|f| f.src),
        }
    }

    fn admits(&mut self, now: SimTime, from: Endpoint, to: Endpoint) -> bool {
        match self.cgn.as_deref_mut() {
            None => {
                let flow = FiveTuple { proto: IpProtocol::Udp, src: from, dst: to };
                self.home.translate_inbound(now, flow).is_ok()
            }
            Some(hop) => {
                let Some(home_wan) = hop.admits_inbound(now, from, to, IpProtocol::Udp) else {
                    return false;
                };
                let flow = FiveTuple { proto: IpProtocol::Udp, src: from, dst: home_wan };
                self.home.translate_inbound(now, flow).is_ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::BoxBehavior;
    use firmware::natprobe::{classify, NatType, STUN_SERVERS};
    use std::net::Ipv4Addr;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    fn local() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(192, 168, 1, 1), 54_320)
    }

    const HOME_WAN: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 9);
    const POOL: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 1);

    #[test]
    fn bare_home_nat_classifies_full_cone_with_wan_mapped_addr() {
        let mut home = Nat::new(HOME_WAN);
        let mut chain = NatChain::new(&mut home, None);
        let out = classify(&mut chain, t(1), local(), &STUN_SERVERS).unwrap();
        assert_eq!(out.nat_type, NatType::FullCone);
        assert_eq!(out.mapped.addr, HOME_WAN, "no CGN: mapped address is the WAN address");
    }

    #[test]
    fn chained_classification_reports_cgn_behavior_and_pool_addr() {
        for (behavior, expected) in [
            (BoxBehavior::FULL_CONE, NatType::FullCone),
            (BoxBehavior::RESTRICTED, NatType::Restricted),
            (BoxBehavior::PORT_RESTRICTED, NatType::PortRestricted),
            (BoxBehavior::SYMMETRIC, NatType::Symmetric),
        ] {
            let mut home = Nat::new(HOME_WAN);
            let mut hop = CgnHop::synthetic(behavior, POOL);
            let mut chain = NatChain::new(&mut home, Some(&mut hop));
            let out = classify(&mut chain, t(1), local(), &STUN_SERVERS).unwrap();
            assert_eq!(out.nat_type, expected, "{behavior:?}");
            assert_eq!(out.mapped.addr, POOL, "mapped address exposes the CGN pool");
            assert_ne!(out.mapped.addr, HOME_WAN, "mapped != WAN is the CGN tell");
        }
    }

    #[test]
    fn blocked_cgn_hop_fails_the_probe() {
        let mut home = Nat::new(HOME_WAN);
        // A hop whose only lease is already over.
        let mut hop = CgnHop::new(
            BoxBehavior::FULL_CONE,
            vec![crate::plan::BlockLease {
                window: collector::Window { start: t(0), end: t(1) },
                addr: POOL,
                port_start: 2048,
                port_len: 64,
                evicted: true,
            }],
        );
        let mut chain = NatChain::new(&mut home, Some(&mut hop));
        assert!(classify(&mut chain, t(100), local(), &STUN_SERVERS).is_none());
    }
}
