//! The carrier-grade translation hop: a second NAT between a home
//! router's WAN side and the internet.
//!
//! Unlike the home NAT (always endpoint-independent in both mapping and
//! filtering — a full cone), CGN boxes in the field span the whole RFC
//! 4787 behavior matrix, and each box only ever owns a *port block* on a
//! shared pool address, not a whole address. This module models exactly
//! that: mappings are confined to the currently leased block, the block
//! can be evicted out from under the subscriber (flushing every mapping),
//! and mapping/filtering behavior is a per-box [`BoxBehavior`] drawn at
//! plan-compile time.
//!
//! Everything is `BTreeMap`/array based so iteration order — and thus
//! LRU-eviction tie-breaking — is deterministic.

use firmware::natprobe::NatType;
use simnet::nat::NatError;
use simnet::packet::{Endpoint, FiveTuple, IpProtocol};
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::plan::BlockLease;

/// How the box maps (lan endpoint → public port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MappingBehavior {
    /// One public port per internal source endpoint, reused for every
    /// destination (RFC 4787 "endpoint-independent mapping").
    EndpointIndependent,
    /// A fresh public port per (source, destination) pair — the symmetric
    /// NAT of RFC 3489.
    EndpointDependent,
}

/// Which inbound packets an established mapping admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FilteringBehavior {
    /// Anyone may send to the mapped port (full cone).
    EndpointIndependent,
    /// Only addresses this mapping has sent to (address-restricted).
    Address,
    /// Only exact (address, port) pairs this mapping has sent to.
    AddressAndPort,
}

/// A box's complete translation behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoxBehavior {
    /// Mapping discipline.
    pub mapping: MappingBehavior,
    /// Filtering discipline.
    pub filtering: FilteringBehavior,
}

impl BoxBehavior {
    /// Full-cone behavior: endpoint-independent mapping and filtering.
    pub const FULL_CONE: BoxBehavior = BoxBehavior {
        mapping: MappingBehavior::EndpointIndependent,
        filtering: FilteringBehavior::EndpointIndependent,
    };
    /// Address-restricted cone.
    pub const RESTRICTED: BoxBehavior = BoxBehavior {
        mapping: MappingBehavior::EndpointIndependent,
        filtering: FilteringBehavior::Address,
    };
    /// Port-restricted cone.
    pub const PORT_RESTRICTED: BoxBehavior = BoxBehavior {
        mapping: MappingBehavior::EndpointIndependent,
        filtering: FilteringBehavior::AddressAndPort,
    };
    /// Symmetric: endpoint-dependent mapping, strictest filtering.
    pub const SYMMETRIC: BoxBehavior = BoxBehavior {
        mapping: MappingBehavior::EndpointDependent,
        filtering: FilteringBehavior::AddressAndPort,
    };

    /// The NAT type a correct STUN probe through this box (behind a
    /// full-cone home NAT) must conclude — the scoring ground truth.
    pub fn nat_type(self) -> NatType {
        match (self.mapping, self.filtering) {
            (MappingBehavior::EndpointDependent, _) => NatType::Symmetric,
            (_, FilteringBehavior::EndpointIndependent) => NatType::FullCone,
            (_, FilteringBehavior::Address) => NatType::Restricted,
            (_, FilteringBehavior::AddressAndPort) => NatType::PortRestricted,
        }
    }
}

/// Mapping key: protocol, subscriber-WAN source, and (for
/// endpoint-dependent mapping only) the destination.
type MapKey = (IpProtocol, Endpoint, Option<Endpoint>);

/// How many contacted peers a mapping remembers for filtering decisions.
/// The probe and hole-punch experiments contact at most four distinct
/// endpoints per mapping; older peers age out of the ring.
const PEER_SLOTS: usize = 4;

/// Idle timeouts mirror the home NAT's (RFC 4787 minimums).
const UDP_IDLE_TIMEOUT: SimDuration = SimDuration::from_secs(120);
const TCP_IDLE_TIMEOUT: SimDuration = SimDuration::from_secs(1_800);

#[derive(Debug, Clone, Copy)]
struct CgnMapping {
    pub_port: u16,
    last_used: SimTime,
    /// Ring buffer of contacted peers (filtering state).
    peers: [Endpoint; PEER_SLOTS],
    peer_len: u8,
    peer_next: u8,
}

impl CgnMapping {
    fn new(pub_port: u16, now: SimTime) -> CgnMapping {
        CgnMapping {
            pub_port,
            last_used: now,
            peers: [Endpoint::new(Ipv4Addr::UNSPECIFIED, 0); PEER_SLOTS],
            peer_len: 0,
            peer_next: 0,
        }
    }

    fn note_peer(&mut self, dst: Endpoint) {
        let live = &self.peers[..self.peer_len as usize];
        if live.contains(&dst) {
            return;
        }
        self.peers[self.peer_next as usize] = dst;
        self.peer_next = (self.peer_next + 1) % PEER_SLOTS as u8;
        self.peer_len = (self.peer_len + 1).min(PEER_SLOTS as u8);
    }

    fn admits_from(&self, filtering: FilteringBehavior, from: Endpoint) -> bool {
        let live = &self.peers[..self.peer_len as usize];
        match filtering {
            FilteringBehavior::EndpointIndependent => true,
            FilteringBehavior::Address => live.iter().any(|p| p.addr == from.addr),
            FilteringBehavior::AddressAndPort => live.contains(&from),
        }
    }
}

/// One subscriber's runtime view of the CGN box fronting it: the leased
/// port blocks (compile-time plan) plus the live translation table.
#[derive(Debug, Clone)]
pub struct CgnHop {
    behavior: BoxBehavior,
    /// Time-ordered, non-overlapping block leases from the plan.
    leases: Vec<BlockLease>,
    /// Index of the first lease whose window hasn't ended yet.
    next_lease: usize,
    by_lan: BTreeMap<MapKey, CgnMapping>,
    by_pub: BTreeMap<(IpProtocol, u16), MapKey>,
    next_offset: u16,
    mappings_created: u64,
    evictions: u64,
    blocked: u64,
    flushes: u64,
}

impl CgnHop {
    /// Build the hop from a plan assignment.
    pub fn new(behavior: BoxBehavior, leases: Vec<BlockLease>) -> CgnHop {
        CgnHop {
            behavior,
            leases,
            next_lease: 0,
            by_lan: BTreeMap::new(),
            by_pub: BTreeMap::new(),
            next_offset: 0,
            mappings_created: 0,
            evictions: 0,
            blocked: 0,
            flushes: 0,
        }
    }

    /// A synthetic hop holding one effectively-permanent full-width lease
    /// on `addr` — the stand-in peer stack hole-punch trials run against.
    pub fn synthetic(behavior: BoxBehavior, addr: Ipv4Addr) -> CgnHop {
        let forever = collector::Window {
            start: SimTime::EPOCH,
            end: SimTime::EPOCH + SimDuration::from_days(36_500),
        };
        CgnHop::new(
            behavior,
            // simlint: allow(hot-path-transitive) — setup-time constructor for hole-punch trials, conflated with hot `new` by name-level call resolution
            vec![BlockLease {
                window: forever,
                addr,
                port_start: 1024,
                port_len: u16::MAX - 1024,
                evicted: false,
            }],
        )
    }

    /// This box's behavior.
    pub fn behavior(&self) -> BoxBehavior {
        self.behavior
    }

    /// Live mapping count.
    pub fn mapping_count(&self) -> usize {
        self.by_lan.len()
    }

    /// Mappings created over the hop's lifetime.
    pub fn mappings_created(&self) -> u64 {
        self.mappings_created
    }

    /// Mappings evicted because the leased block's ports ran out.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Outbound packets refused because no block lease was active.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Lease transitions that flushed live mappings.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Advance to the lease covering `now`, flushing every mapping when
    /// the block changes (a new block means every old public port died).
    fn active_lease(&mut self, now: SimTime) -> Option<usize> {
        let mut advanced = false;
        while self.next_lease < self.leases.len() && self.leases[self.next_lease].window.end <= now
        {
            self.next_lease += 1;
            advanced = true;
        }
        if advanced && !self.by_lan.is_empty() {
            self.by_lan.clear();
            self.by_pub.clear();
            self.flushes += 1;
        }
        let lease = self.leases.get(self.next_lease)?;
        lease.window.contains(now).then_some(self.next_lease)
    }

    fn timeout_for(proto: IpProtocol) -> SimDuration {
        if proto == IpProtocol::Udp {
            UDP_IDLE_TIMEOUT
        } else {
            TCP_IDLE_TIMEOUT
        }
    }

    /// Translate an outbound flow already rewritten by the home NAT (its
    /// source is the subscriber's WAN endpoint). Creates a mapping inside
    /// the active block if needed; fails when no lease is active.
    pub fn translate_outbound(
        &mut self,
        now: SimTime,
        flow: FiveTuple,
    ) -> Result<FiveTuple, NatError> {
        let Some(li) = self.active_lease(now) else {
            self.blocked += 1;
            return Err(NatError::PortsExhausted);
        };
        let lease = self.leases[li];
        let dst_key = match self.behavior.mapping {
            MappingBehavior::EndpointIndependent => None,
            MappingBehavior::EndpointDependent => Some(flow.dst),
        };
        let key = (flow.proto, flow.src, dst_key);
        let timeout = CgnHop::timeout_for(flow.proto);
        if let Some(m) = self.by_lan.get_mut(&key) {
            if now.saturating_since(m.last_used) < timeout {
                m.last_used = now;
                m.note_peer(flow.dst);
                let src = Endpoint::new(lease.addr, m.pub_port);
                return Ok(FiveTuple { proto: flow.proto, src, dst: flow.dst });
            }
            // Stale: the mapping outlived its idle timeout without a sweep.
            let dead = self.by_lan.remove(&key).map(|m| m.pub_port);
            if let Some(p) = dead {
                self.by_pub.remove(&(flow.proto, p));
            }
        }
        let port = self.alloc_port(now, &lease, flow.proto)?;
        let mut m = CgnMapping::new(port, now);
        m.note_peer(flow.dst);
        self.by_lan.insert(key, m);
        self.by_pub.insert((flow.proto, port), key);
        self.mappings_created += 1;
        let src = Endpoint::new(lease.addr, port);
        Ok(FiveTuple { proto: flow.proto, src, dst: flow.dst })
    }

    /// Find a free port inside the active block, evicting the least
    /// recently used mapping of this protocol when the block is full.
    /// LRU ties break on `BTreeMap` key order, so eviction is fully
    /// deterministic.
    fn alloc_port(
        &mut self,
        _now: SimTime,
        lease: &BlockLease,
        proto: IpProtocol,
    ) -> Result<u16, NatError> {
        let len = lease.port_len;
        if len == 0 {
            return Err(NatError::PortsExhausted);
        }
        for i in 0..len {
            let candidate = lease.port_start + (self.next_offset.wrapping_add(i) % len);
            if !self.by_pub.contains_key(&(proto, candidate)) {
                self.next_offset = self.next_offset.wrapping_add(i).wrapping_add(1) % len;
                return Ok(candidate);
            }
        }
        let victim = self
            .by_lan
            .iter()
            .filter(|((p, _, _), _)| *p == proto)
            .min_by_key(|(_, m)| m.last_used)
            .map(|(k, m)| (*k, m.pub_port));
        match victim {
            Some((key, port)) => {
                self.by_lan.remove(&key);
                self.by_pub.remove(&(proto, port));
                self.evictions += 1;
                Ok(port)
            }
            None => Err(NatError::PortsExhausted),
        }
    }

    /// Would an inbound datagram from `from` addressed to public endpoint
    /// `to` pass the box's filtering? Returns the subscriber-WAN endpoint
    /// to forward to (the home NAT's side) when admitted. Never creates a
    /// mapping; refreshes the matched one, exactly like the home NAT's
    /// inbound path.
    pub fn admits_inbound(
        &mut self,
        now: SimTime,
        from: Endpoint,
        to: Endpoint,
        proto: IpProtocol,
    ) -> Option<Endpoint> {
        let li = self.active_lease(now)?;
        if to.addr != self.leases[li].addr {
            return None;
        }
        let key = *self.by_pub.get(&(proto, to.port))?;
        let timeout = CgnHop::timeout_for(proto);
        let m = self.by_lan.get_mut(&key)?;
        if now.saturating_since(m.last_used) >= timeout {
            self.by_lan.remove(&key);
            self.by_pub.remove(&(proto, to.port));
            return None;
        }
        if !m.admits_from(self.behavior.filtering, from) {
            return None;
        }
        m.last_used = now;
        Some(key.1)
    }

    /// Drop mappings idle past their protocol timeout.
    pub fn expire(&mut self, now: SimTime) {
        let by_pub = &mut self.by_pub;
        self.by_lan.retain(|(proto, _, _), m| {
            let live = now.saturating_since(m.last_used) < CgnHop::timeout_for(*proto);
            if !live {
                by_pub.remove(&(*proto, m.pub_port));
            }
            live
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collector::Window;

    const POOL: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 1);
    const SUB_WAN: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 9);

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    fn lease(start: u64, end: u64, port_start: u16, port_len: u16) -> BlockLease {
        BlockLease {
            window: Window { start: t(start), end: t(end) },
            addr: POOL,
            port_start,
            port_len,
            evicted: false,
        }
    }

    fn out_flow(sport: u16, dst: Endpoint) -> FiveTuple {
        FiveTuple {
            proto: IpProtocol::Udp,
            src: Endpoint::new(SUB_WAN, sport),
            dst,
        }
    }

    fn server(n: u8) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(192, 0, 2, n), 3478)
    }

    #[test]
    fn eim_reuses_port_across_destinations() {
        let mut hop = CgnHop::new(BoxBehavior::FULL_CONE, vec![lease(0, 10_000, 2048, 64)]);
        let a = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap();
        let b = hop.translate_outbound(t(2), out_flow(5000, server(20))).unwrap();
        assert_eq!(a.src, b.src, "endpoint-independent mapping");
        assert_eq!(a.src.addr, POOL);
        assert!(a.src.port >= 2048 && a.src.port < 2048 + 64, "inside the leased block");
    }

    #[test]
    fn edm_allocates_per_destination() {
        let mut hop = CgnHop::new(BoxBehavior::SYMMETRIC, vec![lease(0, 10_000, 2048, 64)]);
        let a = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap();
        let b = hop.translate_outbound(t(2), out_flow(5000, server(20))).unwrap();
        assert_ne!(a.src.port, b.src.port, "endpoint-dependent mapping");
        assert_eq!(hop.mapping_count(), 2);
    }

    #[test]
    fn filtering_disciplines_admit_correctly() {
        for (behavior, any, same_addr, exact) in [
            (BoxBehavior::FULL_CONE, true, true, true),
            (BoxBehavior::RESTRICTED, false, true, true),
            (BoxBehavior::PORT_RESTRICTED, false, false, true),
        ] {
            let mut hop = CgnHop::new(behavior, vec![lease(0, 10_000, 2048, 64)]);
            let mapped =
                hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap().src;
            let stranger = Endpoint::new(Ipv4Addr::new(203, 0, 113, 5), 9);
            let same = Endpoint::new(server(10).addr, 9999);
            assert_eq!(
                hop.admits_inbound(t(2), stranger, mapped, IpProtocol::Udp).is_some(),
                any,
                "{behavior:?} stranger"
            );
            assert_eq!(
                hop.admits_inbound(t(2), same, mapped, IpProtocol::Udp).is_some(),
                same_addr,
                "{behavior:?} same-address"
            );
            assert_eq!(
                hop.admits_inbound(t(2), server(10), mapped, IpProtocol::Udp).is_some(),
                exact,
                "{behavior:?} exact peer"
            );
        }
    }

    #[test]
    fn admitted_packet_forwards_to_subscriber_wan() {
        let mut hop = CgnHop::new(BoxBehavior::FULL_CONE, vec![lease(0, 10_000, 2048, 64)]);
        let mapped = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap().src;
        let back = hop.admits_inbound(t(2), server(10), mapped, IpProtocol::Udp);
        assert_eq!(back, Some(Endpoint::new(SUB_WAN, 5000)));
    }

    #[test]
    fn block_exhaustion_evicts_lru_deterministically() {
        let mut hop = CgnHop::new(BoxBehavior::FULL_CONE, vec![lease(0, 10_000, 2048, 2)]);
        let a = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap();
        let _b = hop.translate_outbound(t(2), out_flow(5001, server(10))).unwrap();
        // Third mapping: block full, the oldest (t=1) mapping dies.
        let c = hop.translate_outbound(t(3), out_flow(5002, server(10))).unwrap();
        assert_eq!(hop.evictions(), 1);
        assert_eq!(c.src.port, a.src.port, "evicted port is recycled");
        // The recycled public port now belongs to source 5002, not 5000.
        let back = hop.admits_inbound(t(4), server(10), a.src, IpProtocol::Udp);
        assert_eq!(back, Some(Endpoint::new(SUB_WAN, 5002)));
    }

    #[test]
    fn lease_change_flushes_mappings() {
        let mut hop = CgnHop::new(
            BoxBehavior::FULL_CONE,
            vec![lease(0, 100, 2048, 64), lease(200, 10_000, 4096, 64)],
        );
        let a = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap();
        // In the gap between leases the hop refuses outbound traffic.
        assert!(hop.translate_outbound(t(150), out_flow(5000, server(10))).is_err());
        assert_eq!(hop.blocked(), 1);
        // Under the new lease the old public endpoint is dead and a fresh
        // port comes from the new block.
        let b = hop.translate_outbound(t(250), out_flow(5000, server(10))).unwrap();
        assert!(b.src.port >= 4096);
        assert_ne!(a.src.port, b.src.port);
        assert_eq!(hop.flushes(), 1);
        assert!(hop.admits_inbound(t(251), server(10), a.src, IpProtocol::Udp).is_none());
    }

    #[test]
    fn idle_mappings_expire() {
        let mut hop = CgnHop::new(BoxBehavior::FULL_CONE, vec![lease(0, 100_000, 2048, 64)]);
        let mapped = hop.translate_outbound(t(1), out_flow(5000, server(10))).unwrap().src;
        hop.expire(t(300));
        assert_eq!(hop.mapping_count(), 0);
        assert!(hop.admits_inbound(t(300), server(10), mapped, IpProtocol::Udp).is_none());
    }

    #[test]
    fn behavior_to_nat_type_ground_truth() {
        assert_eq!(BoxBehavior::FULL_CONE.nat_type(), NatType::FullCone);
        assert_eq!(BoxBehavior::RESTRICTED.nat_type(), NatType::Restricted);
        assert_eq!(BoxBehavior::PORT_RESTRICTED.nat_type(), NatType::PortRestricted);
        assert_eq!(BoxBehavior::SYMMETRIC.nat_type(), NatType::Symmetric);
    }
}
