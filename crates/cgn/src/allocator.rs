//! The compile-time port-block allocator for one CGN box.
//!
//! Each box owns a handful of shared pool addresses, cut into fixed-size
//! port blocks. Subscribers arrive (deterministic times from the plan
//! RNG), take the lowest free block, and hold it until the study ends —
//! unless the supply runs out, in which case the *oldest* lease is
//! evicted to serve the newcomer and the victim re-applies after a
//! deterministic back-off, up to a per-subscriber lease budget. The whole
//! allocation history is replayed here at plan-compile time, so the
//! runtime hop just walks a precomputed lease list.
//!
//! Determinism: the event queue is a `BTreeMap` keyed by `(time, seq)`,
//! the free list a `BTreeSet` (lowest block first), and eviction picks
//! the minimum `(since, block)` pair — every tie has a total order.

use collector::Window;
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use crate::plan::BlockLease;

/// First usable port on a pool address (below are reserved, mirroring the
/// home NAT's range).
pub const BLOCK_PORT_BASE: u16 = 1_024;

/// The block supply one box draws from.
#[derive(Debug, Clone)]
pub(crate) struct BlockSupply {
    /// The shared pool addresses this box owns.
    pub addrs: Vec<Ipv4Addr>,
    /// Ports per block.
    pub block_ports: u16,
}

impl BlockSupply {
    pub(crate) fn blocks_per_addr(&self) -> usize {
        ((u16::MAX - BLOCK_PORT_BASE) / self.block_ports) as usize
    }

    /// Total blocks the box can hand out at once.
    pub(crate) fn count(&self) -> usize {
        self.addrs.len() * self.blocks_per_addr()
    }

    /// Address and first port of block `idx`.
    pub(crate) fn locate(&self, idx: usize) -> (Ipv4Addr, u16) {
        let per = self.blocks_per_addr();
        let addr = self.addrs[idx / per];
        let port_start = BLOCK_PORT_BASE + (idx % per) as u16 * self.block_ports;
        (addr, port_start)
    }
}

/// The replayed allocation history for one box.
#[derive(Debug, Clone, Default)]
pub(crate) struct BoxAllocation {
    /// Per-subscriber lease lists, time-ordered and non-overlapping.
    pub leases: Vec<Vec<BlockLease>>,
    /// Leases ended early to serve a newcomer.
    pub evictions: u64,
    /// Arrivals that found no free block (each either evicted someone or,
    /// with an empty supply, went unserved).
    pub exhaustion_events: u64,
}

/// Replay the box's allocation history across `span`.
pub(crate) fn allocate(
    span: Window,
    supply: &BlockSupply,
    arrivals: &[SimTime],
    retry: SimDuration,
    max_leases: usize,
) -> BoxAllocation {
    let n = arrivals.len();
    let mut out = BoxAllocation { leases: vec![Vec::new(); n], ..BoxAllocation::default() };
    // (time, seq) → subscriber. Initial arrivals use their index as the
    // sequence number; re-arrivals take fresh ascending sequence numbers,
    // so same-instant events process in a fixed order.
    let mut events: BTreeMap<(SimTime, u64), usize> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| ((at, i as u64), i))
        .collect();
    let mut seq = n as u64;
    let mut free: BTreeSet<usize> = (0..supply.count()).collect();
    // block → (lease start, subscriber); mirror ordered oldest-first.
    let mut held: BTreeMap<usize, (SimTime, usize)> = BTreeMap::new();
    let mut oldest: BTreeSet<(SimTime, usize)> = BTreeSet::new();
    // Subscriber → its currently open lease (start, block).
    let mut open: Vec<Option<(SimTime, usize)>> = vec![None; n];

    while let Some((&(at, s), &sub)) = events.iter().next() {
        events.remove(&(at, s));
        if at >= span.end {
            continue; // re-arrival past the study: never served
        }
        let block = if let Some(&b) = free.iter().next() {
            free.remove(&b);
            b
        } else {
            out.exhaustion_events += 1;
            let Some(&(since, b)) = oldest.iter().next() else {
                continue; // zero-block supply: nothing to evict, unserved
            };
            oldest.remove(&(since, b));
            let (_, victim) = held.remove(&b).expect("held mirrors oldest");
            let (start, vb) = open[victim].take().expect("victim had an open lease");
            debug_assert_eq!(vb, b);
            let (addr, port_start) = supply.locate(b);
            out.leases[victim].push(BlockLease {
                window: Window { start, end: at },
                addr,
                port_start,
                port_len: supply.block_ports,
                evicted: true,
            });
            out.evictions += 1;
            if out.leases[victim].len() < max_leases {
                events.insert((at + retry, seq), victim);
                seq += 1;
            }
            b
        };
        held.insert(block, (at, sub));
        oldest.insert((at, block));
        open[sub] = Some((at, block));
    }

    // Whatever is still held runs to the end of the study.
    for (sub, slot) in open.iter_mut().enumerate() {
        if let Some((start, b)) = slot.take() {
            let (addr, port_start) = supply.locate(b);
            out.leases[sub].push(BlockLease {
                window: Window { start, end: span.end },
                addr,
                port_start,
                port_len: supply.block_ports,
                evicted: false,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn span(days: u64) -> Window {
        Window { start: SimTime::EPOCH, end: SimTime::EPOCH + SimDuration::from_days(days) }
    }

    fn supply(addrs: u8, block_ports: u16) -> BlockSupply {
        BlockSupply {
            addrs: (1..=addrs).map(|i| Ipv4Addr::new(198, 18, 0, i)).collect(),
            block_ports,
        }
    }

    /// No two leases on the same (addr, port_start) may overlap in time.
    fn assert_no_double_allocation(alloc: &BoxAllocation) {
        let mut all: Vec<&BlockLease> = alloc.leases.iter().flatten().collect();
        // Tie-break same-start leases by end: a grant-and-evict at the same
        // instant yields a zero-length lease that must sort first.
        all.sort_by_key(|l| (l.addr, l.port_start, l.window.start, l.window.end));
        for pair in all.windows(2) {
            if pair[0].addr == pair[1].addr && pair[0].port_start == pair[1].port_start {
                assert!(
                    pair[0].window.end <= pair[1].window.start,
                    "block {}:{} double-allocated",
                    pair[0].addr,
                    pair[0].port_start
                );
            }
        }
    }

    #[test]
    fn ample_supply_gives_everyone_one_lease() {
        let s = supply(4, 2_048);
        let arrivals: Vec<SimTime> = (0..16).map(|i| t(i * 7)).collect();
        let alloc = allocate(span(20), &s, &arrivals, SimDuration::from_hours(6), 3);
        assert_eq!(alloc.evictions, 0);
        assert_eq!(alloc.exhaustion_events, 0);
        for (i, leases) in alloc.leases.iter().enumerate() {
            assert_eq!(leases.len(), 1, "subscriber {i}");
            assert_eq!(leases[0].window.start, t(i as u64 * 7));
            assert_eq!(leases[0].window.end, span(20).end);
            assert!(!leases[0].evicted);
        }
        assert_no_double_allocation(&alloc);
    }

    #[test]
    fn lowest_block_first() {
        let s = supply(2, 16_128); // 4 blocks per addr, 8 total
        let alloc = allocate(span(5), &s, &[t(0), t(1)], SimDuration::from_hours(6), 3);
        assert_eq!(alloc.leases[0][0].addr, Ipv4Addr::new(198, 18, 0, 1));
        assert_eq!(alloc.leases[0][0].port_start, BLOCK_PORT_BASE);
        assert_eq!(alloc.leases[1][0].port_start, BLOCK_PORT_BASE + 16_128);
    }

    #[test]
    fn starved_supply_evicts_oldest_first() {
        // One address, two blocks, three subscribers.
        let s = supply(1, 32_000);
        assert_eq!(s.count(), 2);
        let alloc = allocate(span(10), &s, &[t(0), t(10), t(20)], SimDuration::from_hours(6), 2);
        // Subscriber 0 (oldest) is evicted at t(20) to serve subscriber 2.
        assert!(alloc.evictions >= 1);
        let first = &alloc.leases[0][0];
        assert!(first.evicted, "oldest lease evicted");
        assert_eq!(first.window.end, t(20));
        // The victim re-applies 6h later and (evicting subscriber 1 in
        // turn) gets a block back.
        assert_eq!(alloc.leases[0].len(), 2);
        assert_eq!(alloc.leases[0][1].window.start, t(20) + SimDuration::from_hours(6));
        assert_no_double_allocation(&alloc);
    }

    #[test]
    fn lease_budget_bounds_rearrivals() {
        let s = supply(1, 32_000); // 2 blocks
        let arrivals: Vec<SimTime> = (0..6).map(|i| t(i)).collect();
        let alloc = allocate(span(10), &s, &arrivals, SimDuration::from_mins(1), 2);
        for leases in &alloc.leases {
            assert!(leases.len() <= 2, "lease budget exceeded");
        }
        assert_no_double_allocation(&alloc);
    }

    #[test]
    fn zero_supply_serves_nobody() {
        let s = BlockSupply { addrs: Vec::new(), block_ports: 2_048 };
        let alloc = allocate(span(5), &s, &[t(0), t(1)], SimDuration::from_hours(1), 3);
        assert!(alloc.leases.iter().all(Vec::is_empty));
        assert_eq!(alloc.exhaustion_events, 2);
    }

    #[test]
    fn allocation_is_deterministic() {
        let s = supply(1, 16_128);
        let arrivals: Vec<SimTime> = (0..40).map(|i| t(i * 3)).collect();
        let a = allocate(span(20), &s, &arrivals, SimDuration::from_hours(4), 3);
        let b = allocate(span(20), &s, &arrivals, SimDuration::from_hours(4), 3);
        assert_eq!(a.leases, b.leases);
        assert_eq!(a.evictions, b.evictions);
    }
}
