//! The shipped CGN deployment scenarios.
//!
//! A scenario is pure configuration: what fraction of each region's homes
//! an ISP fronts with carrier-grade NAT, how many subscribers share a
//! box, how big the shared address pool and its port blocks are, and the
//! box-behavior mix. Compilation into a concrete [`crate::CgnPlan`]
//! happens in [`crate::plan`], deterministically from the study seed.

use simnet::time::SimDuration;

/// A named, shipped CGN deployment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgnScenario {
    /// The realistic mix: a minority of developed-region ISPs and a
    /// majority of developing-region ISPs deploy CGN, with generous port
    /// blocks (little churn). The bread-and-butter characterization run.
    IspMix,
    /// Every home is behind CGN — maximizes probe/punch sample counts so
    /// the NAT-type matrix fills quickly even on quick spans.
    AllCgn,
    /// An under-provisioned deployment: many subscribers share a single
    /// pool address with small port blocks, forcing block exhaustion and
    /// oldest-first lease eviction under load.
    PortStarved,
}

/// Compile-time knobs for one scenario.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScenarioParams {
    /// Fraction of developed-region homes fronted by CGN.
    pub developed_fraction: f64,
    /// Fraction of developing-region homes fronted by CGN.
    pub developing_fraction: f64,
    /// Subscribers grouped behind one box.
    pub subscribers_per_box: usize,
    /// Shared pool addresses each box owns.
    pub pool_addrs_per_box: usize,
    /// Ports per allocated block.
    pub block_ports: u16,
    /// Lease budget per subscriber: after this many leases (evictions
    /// included) the subscriber stops re-applying, bounding compile work.
    pub max_leases: usize,
    /// How long an evicted subscriber waits before re-applying.
    pub retry: SimDuration,
    /// Behavior mix weights: [full-cone, restricted, port-restricted,
    /// symmetric].
    pub behavior_weights: [f64; 4],
}

impl CgnScenario {
    /// Every shipped scenario.
    pub const ALL: [CgnScenario; 3] =
        [CgnScenario::IspMix, CgnScenario::AllCgn, CgnScenario::PortStarved];

    /// The scenario's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            CgnScenario::IspMix => "isp-mix",
            CgnScenario::AllCgn => "all-cgn",
            CgnScenario::PortStarved => "port-starved",
        }
    }

    pub(crate) fn params(self) -> ScenarioParams {
        match self {
            CgnScenario::IspMix => ScenarioParams {
                developed_fraction: 0.15,
                developing_fraction: 0.60,
                subscribers_per_box: 64,
                pool_addrs_per_box: 4,
                block_ports: 2_048,
                max_leases: 3,
                retry: SimDuration::from_hours(6),
                behavior_weights: [0.30, 0.20, 0.30, 0.20],
            },
            CgnScenario::AllCgn => ScenarioParams {
                developed_fraction: 1.0,
                developing_fraction: 1.0,
                subscribers_per_box: 64,
                pool_addrs_per_box: 4,
                block_ports: 2_048,
                max_leases: 3,
                retry: SimDuration::from_hours(6),
                behavior_weights: [0.25, 0.20, 0.30, 0.25],
            },
            CgnScenario::PortStarved => ScenarioParams {
                developed_fraction: 0.40,
                developing_fraction: 0.80,
                subscribers_per_box: 96,
                pool_addrs_per_box: 1,
                block_ports: 1_024,
                max_leases: 3,
                retry: SimDuration::from_hours(8),
                behavior_weights: [0.30, 0.20, 0.30, 0.20],
            },
        }
    }
}

impl std::fmt::Display for CgnScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CgnScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<CgnScenario, String> {
        CgnScenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                format!("unknown CGN scenario '{s}' (expected isp-mix, all-cgn, or port-starved)")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for sc in CgnScenario::ALL {
            assert_eq!(sc.name().parse::<CgnScenario>().unwrap(), sc);
        }
        assert!("nonsense".parse::<CgnScenario>().is_err());
    }

    #[test]
    fn port_starved_is_actually_starved() {
        let p = CgnScenario::PortStarved.params();
        let blocks = p.pool_addrs_per_box * ((65_536 - 1_024) / p.block_ports as usize);
        assert!(
            blocks < p.subscribers_per_box,
            "{blocks} blocks must not cover {} subscribers",
            p.subscribers_per_box
        );
        let p = CgnScenario::IspMix.params();
        let blocks = p.pool_addrs_per_box * ((65_536 - 1_024) / p.block_ports as usize);
        assert!(blocks >= p.subscribers_per_box, "isp-mix must not churn");
    }
}
