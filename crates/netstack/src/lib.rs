//! # netstack — flow and application layer over `simnet`
//!
//! Home traffic in the reproduction is a population of *flows*: transfers
//! between a LAN device and an Internet service, each tagged with the
//! device MAC, the service domain, and an application class. Flows share
//! the access link under max-min fairness ([`fair`]), advance in
//! one-second fluid ticks ([`flow`]), and are sampled from per-application
//! session models ([`apps`]).
//!
//! The split of responsibilities: *who* starts a session, *when*, and
//! *toward which domain* is behavioral and lives in the `household` crate;
//! this crate answers *how the bytes move* once a session exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod fair;
pub mod flow;
pub mod handshake;
pub mod metrics;

pub use apps::{sample_session, SessionProfile};
pub use flow::{AppKind, Flow, FlowId, FlowProgress, FlowScheduler, TickOutcome};
