//! Application session models: how much data each kind of app moves, at
//! what rate, and in which direction.
//!
//! Parameters are drawn from the measurement literature of the paper's era
//! (heavy-tailed web transfers, multi-megabit streaming that dominates
//! volume, thin VoIP/gaming flows) and are deliberately simple — each app
//! kind is (down bytes, up bytes, optional rate cap) sampled from
//! heavy-tailed or fixed distributions. The paper's usage results depend on
//! the *relative* shape of these classes, which is what the calibration
//! tests pin down.

use crate::flow::AppKind;
use simnet::rng::DetRng;

/// A sampled application session, ready to become a [`crate::flow::Flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionProfile {
    /// Bytes the session downloads.
    pub bytes_down: u64,
    /// Bytes the session uploads.
    pub bytes_up: u64,
    /// Downstream application rate cap in bits/s; `None` = backlogged.
    pub rate_cap_bps: Option<u64>,
    /// Upstream application rate cap; ack-clocked trickle for paced
    /// download apps, the codec rate for symmetric ones, `None` for bulk
    /// senders.
    pub rate_cap_up_bps: Option<u64>,
}

impl SessionProfile {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_down + self.bytes_up
    }
}

/// Sample a session of the given kind.
pub fn sample_session(kind: AppKind, rng: &mut DetRng) -> SessionProfile {
    match kind {
        AppKind::Web => {
            // Heavy-tailed page weights: median ~300 KB, occasional tens of MB.
            let down = rng.pareto(120_000.0, 1.25).min(60e6) as u64;
            let up = (down / 40).clamp(2_000, 1_000_000);
            SessionProfile { bytes_down: down, bytes_up: up, rate_cap_bps: None, rate_cap_up_bps: None }
        }
        AppKind::StreamingVideo => {
            // Bitrate 1.5–6 Mbps, duration exp(mean 22 min).
            let bitrate = rng.uniform_range(1.5e6, 6.0e6);
            let duration_s = rng.exp(22.0 * 60.0).clamp(60.0, 4.0 * 3600.0);
            let down = (bitrate / 8.0 * duration_s) as u64;
            SessionProfile {
                bytes_down: down,
                bytes_up: down / 50,
                rate_cap_bps: Some(bitrate as u64),
                rate_cap_up_bps: Some((bitrate as u64 / 40).max(16_000)),
            }
        }
        AppKind::StreamingAudio => {
            // 128–320 kbps, long sessions (mean 50 min).
            let bitrate = rng.uniform_range(128e3, 320e3);
            let duration_s = rng.exp(50.0 * 60.0).clamp(120.0, 8.0 * 3600.0);
            let down = (bitrate / 8.0 * duration_s) as u64;
            SessionProfile {
                bytes_down: down,
                bytes_up: down / 80,
                rate_cap_bps: Some(bitrate as u64),
                rate_cap_up_bps: Some((bitrate as u64 / 40).max(8_000)),
            }
        }
        AppKind::Voip => {
            // Symmetric 86 kbps (G.711 + overhead), duration exp(mean 9 min).
            let duration_s = rng.exp(9.0 * 60.0).clamp(15.0, 3.0 * 3600.0);
            let bytes = (86_000.0 / 8.0 * duration_s) as u64;
            SessionProfile {
                bytes_down: bytes,
                bytes_up: bytes,
                rate_cap_bps: Some(86_000),
                rate_cap_up_bps: Some(86_000),
            }
        }
        AppKind::BulkUpload => {
            // Large upstream transfers: median ~80 MB, heavy tail.
            let up = rng.pareto(30e6, 1.1).min(3e9) as u64;
            SessionProfile {
                bytes_down: (up / 200).min(2_000_000),
                bytes_up: up,
                rate_cap_bps: None,
                rate_cap_up_bps: None,
            }
        }
        AppKind::CloudSync => {
            // Up-heavy bursts: a few MB up, small ack traffic down.
            let up = rng.pareto(1.5e6, 1.5).min(60e6) as u64;
            SessionProfile {
                bytes_down: up / 8,
                bytes_up: up,
                rate_cap_bps: None,
                rate_cap_up_bps: None,
            }
        }
        AppKind::Background => {
            // Software updates, telemetry: a few hundred KB to tens of MB down.
            let down = rng.pareto(200_000.0, 1.3).min(100e6) as u64;
            SessionProfile {
                bytes_down: down,
                bytes_up: (down / 40).min(500_000),
                rate_cap_bps: None,
                rate_cap_up_bps: Some(64_000),
            }
        }
        AppKind::Gaming => {
            // Thin bidirectional UDP: ~40 kbps each way, sessions mean 45 min.
            let duration_s = rng.exp(45.0 * 60.0).clamp(300.0, 6.0 * 3600.0);
            let bytes = (40_000.0 / 8.0 * duration_s) as u64;
            SessionProfile {
                bytes_down: bytes,
                bytes_up: bytes,
                rate_cap_bps: Some(40_000),
                rate_cap_up_bps: Some(40_000),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_profile(kind: AppKind, n: usize) -> (f64, f64) {
        let mut rng = DetRng::new(77).derive(&format!("{kind:?}"));
        let mut down = 0.0;
        let mut up = 0.0;
        for _ in 0..n {
            let p = sample_session(kind, &mut rng);
            down += p.bytes_down as f64;
            up += p.bytes_up as f64;
        }
        (down / n as f64, up / n as f64)
    }

    #[test]
    fn streaming_dominates_web_in_volume() {
        let (web_down, _) = mean_profile(AppKind::Web, 2_000);
        let (video_down, _) = mean_profile(AppKind::StreamingVideo, 2_000);
        assert!(
            video_down > 10.0 * web_down,
            "streaming sessions must dwarf web sessions: {video_down} vs {web_down}"
        );
    }

    #[test]
    fn most_kinds_are_download_heavy() {
        for kind in [AppKind::Web, AppKind::StreamingVideo, AppKind::StreamingAudio, AppKind::Background] {
            let (down, up) = mean_profile(kind, 1_000);
            assert!(down > 5.0 * up, "{kind:?} must be download-heavy");
        }
    }

    #[test]
    fn upload_kinds_are_upload_heavy() {
        for kind in [AppKind::BulkUpload, AppKind::CloudSync] {
            let (down, up) = mean_profile(kind, 1_000);
            assert!(up > 5.0 * down, "{kind:?} must be upload-heavy");
        }
    }

    #[test]
    fn voip_is_symmetric() {
        let (down, up) = mean_profile(AppKind::Voip, 1_000);
        assert!((down - up).abs() / down < 0.01);
    }

    #[test]
    fn rate_caps_present_only_for_paced_apps() {
        let mut rng = DetRng::new(1);
        assert!(sample_session(AppKind::StreamingVideo, &mut rng).rate_cap_bps.is_some());
        assert!(sample_session(AppKind::Voip, &mut rng).rate_cap_bps.is_some());
        assert!(sample_session(AppKind::Web, &mut rng).rate_cap_bps.is_none());
        assert!(sample_session(AppKind::BulkUpload, &mut rng).rate_cap_bps.is_none());
    }

    #[test]
    fn streaming_upload_trickle_far_below_bitrate() {
        let mut rng = DetRng::new(4);
        for _ in 0..100 {
            let p = sample_session(AppKind::StreamingVideo, &mut rng);
            let down_cap = p.rate_cap_bps.unwrap();
            let up_cap = p.rate_cap_up_bps.unwrap();
            assert!(up_cap * 10 < down_cap, "ack trickle must not fill uplinks");
        }
    }

    #[test]
    fn sessions_are_nonempty_and_bounded() {
        let mut rng = DetRng::new(2);
        for kind in [
            AppKind::Web,
            AppKind::StreamingVideo,
            AppKind::StreamingAudio,
            AppKind::Voip,
            AppKind::BulkUpload,
            AppKind::CloudSync,
            AppKind::Background,
            AppKind::Gaming,
        ] {
            for _ in 0..500 {
                let p = sample_session(kind, &mut rng);
                assert!(p.total_bytes() > 0, "{kind:?} produced an empty session");
                assert!(p.total_bytes() < 10_000_000_000, "{kind:?} session absurdly large");
            }
        }
    }

    #[test]
    fn deterministic_given_stream() {
        let mut a = DetRng::new(9).derive("x");
        let mut b = DetRng::new(9).derive("x");
        for _ in 0..100 {
            assert_eq!(sample_session(AppKind::Web, &mut a), sample_session(AppKind::Web, &mut b));
        }
    }
}
