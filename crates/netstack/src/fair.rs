//! Max-min fair bandwidth allocation (progressive water-filling).
//!
//! The access link is the bottleneck for nearly all home traffic, and TCP's
//! long-run behavior on a shared bottleneck approximates max-min fairness
//! with per-flow rate caps (application-limited flows such as video streams
//! never take more than their bitrate). The fluid flow model advances in
//! one-second ticks; each tick asks this module how much each active flow
//! moved.

/// One flow's demand for an allocation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Rate the flow could use this tick, in bits/s. `f64::INFINITY` for
    /// backlogged (bulk) flows.
    pub rate_cap_bps: f64,
}

/// Compute a max-min fair allocation of `capacity_bps` across `demands`.
///
/// ```
/// use netstack::fair::{max_min_fair, Demand};
/// // A 1 Mbps stream and two bulk flows on a 10 Mbps link.
/// let rates = max_min_fair(10e6, &[
///     Demand { rate_cap_bps: 1e6 },
///     Demand { rate_cap_bps: f64::INFINITY },
///     Demand { rate_cap_bps: f64::INFINITY },
/// ]);
/// assert_eq!(rates, vec![1e6, 4.5e6, 4.5e6]);
/// ```
///
/// Returns one rate per demand, in the same order. Properties:
/// * no flow exceeds its cap;
/// * the sum never exceeds capacity;
/// * unused capacity exists only when every flow is cap-limited;
/// * flows with equal caps get equal rates.
pub fn max_min_fair(capacity_bps: f64, demands: &[Demand]) -> Vec<f64> {
    assert!(capacity_bps >= 0.0);
    let n = demands.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 || capacity_bps == 0.0 {
        return rates;
    }
    // Sort indices by cap ascending; satisfy the smallest demands first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        demands[a]
            .rate_cap_bps
            .partial_cmp(&demands[b].rate_cap_bps)
            .expect("rate caps must not be NaN")
    });
    let mut remaining = capacity_bps;
    let mut unsatisfied = n;
    for &i in &order {
        let fair_share = remaining / unsatisfied as f64;
        let rate = demands[i].rate_cap_bps.min(fair_share);
        rates[i] = rate;
        remaining -= rate;
        unsatisfied -= 1;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    fn demands(caps: &[f64]) -> Vec<Demand> {
        caps.iter().map(|&c| Demand { rate_cap_bps: c }).collect()
    }

    #[test]
    fn empty_input() {
        assert!(max_min_fair(1e6, &[]).is_empty());
    }

    #[test]
    fn single_backlogged_flow_takes_everything() {
        let r = max_min_fair(10e6, &demands(&[INF]));
        assert_eq!(r, vec![10e6]);
    }

    #[test]
    fn equal_backlogged_flows_split_evenly() {
        let r = max_min_fair(9e6, &demands(&[INF, INF, INF]));
        assert_eq!(r, vec![3e6, 3e6, 3e6]);
    }

    #[test]
    fn capped_flow_releases_share() {
        // One 1 Mbps stream plus two bulk flows on a 10 Mbps link:
        // the stream gets 1, the bulks split the remaining 9.
        let r = max_min_fair(10e6, &demands(&[1e6, INF, INF]));
        assert_eq!(r[0], 1e6);
        assert_eq!(r[1], 4.5e6);
        assert_eq!(r[2], 4.5e6);
    }

    #[test]
    fn all_cap_limited_leaves_spare_capacity() {
        let r = max_min_fair(100e6, &demands(&[1e6, 2e6]));
        assert_eq!(r, vec![1e6, 2e6]);
    }

    #[test]
    fn oversubscribed_caps_share_fairly() {
        // Two flows both capped at 8 Mbps on a 10 Mbps link: 5 each.
        let r = max_min_fair(10e6, &demands(&[8e6, 8e6]));
        assert_eq!(r, vec![5e6, 5e6]);
    }

    #[test]
    fn mixed_caps_max_min_property() {
        let caps = [0.5e6, 3e6, INF, INF];
        let r = max_min_fair(10e6, &demands(&caps));
        // Small demand fully satisfied.
        assert_eq!(r[0], 0.5e6);
        assert_eq!(r[1], 3e6);
        // Remaining 6.5 split between the two backlogged flows.
        assert!((r[2] - 3.25e6).abs() < 1.0 && (r[3] - 3.25e6).abs() < 1.0);
        let total: f64 = r.iter().sum();
        assert!((total - 10e6).abs() < 1.0);
    }

    #[test]
    fn zero_capacity_gives_zero_rates() {
        let r = max_min_fair(0.0, &demands(&[INF, 1e6]));
        assert_eq!(r, vec![0.0, 0.0]);
    }

    #[test]
    fn never_exceeds_capacity_or_caps() {
        let caps = [2e6, 5e6, INF, 0.1e6, 7e6];
        let r = max_min_fair(8e6, &demands(&caps));
        let total: f64 = r.iter().sum();
        assert!(total <= 8e6 + 1.0);
        for (rate, cap) in r.iter().zip(&caps) {
            assert!(rate <= cap);
        }
    }
}
