//! Flow-layer metric handles: session lifecycle counts and sim-time flow
//! durations.
//!
//! The scheduler keeps plain cumulative counters
//! ([`crate::FlowScheduler::started_total`] /
//! [`crate::FlowScheduler::completed_total`]); this module maps them onto
//! the global `obs` registry at end of run. Flow *durations* are recorded
//! as they complete (a few per simulated minute at most — four relaxed
//! atomics each), in **sim-time microseconds**, never wall clock.

use crate::FlowScheduler;
use simnet::time::SimTime;

/// Pre-registered handles for the flow-layer metrics.
#[derive(Debug, Clone, Copy)]
pub struct FlowMetrics {
    /// Flows ever started.
    pub flows_started: &'static obs::Counter,
    /// Flows that ran to completion (power-off aborts excluded).
    pub flows_completed: &'static obs::Counter,
    /// Completed-flow lifetimes in sim-time microseconds.
    pub flow_duration: &'static obs::Histogram,
}

impl FlowMetrics {
    /// Register (or fetch) the flow-layer handles.
    pub fn handles() -> FlowMetrics {
        FlowMetrics {
            flows_started: obs::counter("flows_started_total"),
            flows_completed: obs::counter("flows_completed_total"),
            flow_duration: obs::histogram(
                "flow_duration_micros",
                &obs::DURATION_BOUNDS_MICROS,
            ),
        }
    }

    /// Record the sim-time lifetimes of flows that just completed.
    pub fn record_completions(&self, now: SimTime, completed: &[crate::Flow]) {
        for flow in completed {
            self.flow_duration.record(now.since(flow.started).as_micros());
        }
    }

    /// Fold one scheduler's lifetime counts into the global totals.
    pub fn publish_scheduler(&self, sched: &FlowScheduler) {
        self.flows_started.add(sched.started_total());
        self.flows_completed.add(sched.completed_total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppKind, Flow, FlowId};
    use simnet::packet::{Endpoint, MacAddr};
    use simnet::time::SimDuration;
    use std::net::Ipv4Addr;

    #[test]
    fn scheduler_counts_and_durations_publish() {
        let m = FlowMetrics::handles();
        let before =
            (m.flows_started.get(), m.flows_completed.get(), m.flow_duration.count());
        let mut sched = FlowScheduler::new();
        sched.start(Flow {
            id: FlowId(0),
            device: MacAddr::from_oui_nic(0x3C_07_54, 1),
            local: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000),
            remote: Endpoint::new(Ipv4Addr::new(93, 184, 216, 34), 443),
            domain: simnet::dns::DomainName::new("example.com").unwrap(),
            kind: AppKind::Web,
            started: SimTime::EPOCH,
            remaining_down: 1_000,
            remaining_up: 0,
            rate_cap_bps: None,
            rate_cap_up_bps: None,
            saturated_ticks: 0,
        });
        let out =
            sched.tick(SimDuration::from_secs(1), 10_000_000, 1_000_000, None, 256 * 1024);
        assert_eq!(out.completed.len(), 1);
        m.record_completions(SimTime::EPOCH + SimDuration::from_secs(1), &out.completed);
        m.publish_scheduler(&sched);
        assert_eq!(m.flows_started.get() - before.0, 1);
        assert_eq!(m.flows_completed.get() - before.1, 1);
        assert_eq!(m.flow_duration.count() - before.2, 1);
    }
}
