//! The fluid flow model: active transfers that share the access link under
//! max-min fairness, advanced in one-second ticks.
//!
//! Individual bulk data packets are not simulated one by one — a six-month,
//! 126-home study would be intractable — but every tick yields per-flow
//! byte and packet counts at the *gateway's LAN vantage point*, which is
//! exactly the granularity the BISmark firmware records ("the size and
//! timestamp of every packet relayed to and from the Internet", aggregated
//! here per second). Measurement-relevant packets (DNS, heartbeats, probe
//! trains) are real wire images built in `simnet`.

use crate::fair::{max_min_fair, Demand};
use simnet::dns::DomainName;
use simnet::packet::{Endpoint, FiveTuple, IpProtocol, MacAddr};
use simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Application class of a flow; determines its size/rate profile and port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppKind {
    /// Short request/response web transfers (HTTP/HTTPS).
    Web,
    /// Long-running rate-limited video streaming (the paper's dominant
    /// traffic class).
    StreamingVideo,
    /// Rate-limited audio streaming (e.g. pandora.com).
    StreamingAudio,
    /// Bidirectional constant-bitrate voice.
    Voip,
    /// Backlogged upstream transfer (the paper's "scientific data uploader").
    BulkUpload,
    /// Cloud file sync: bursty, upstream-heavy (the paper's Dropbox iMac).
    CloudSync,
    /// Software updates and other unattended downloads.
    Background,
    /// Interactive gaming: low-rate, latency-sensitive.
    Gaming,
}

impl AppKind {
    /// The server port this application class typically uses.
    pub fn server_port(self) -> u16 {
        match self {
            AppKind::Web => 443,
            AppKind::StreamingVideo => 443,
            AppKind::StreamingAudio => 443,
            AppKind::Voip => 5_060,
            AppKind::BulkUpload => 22,
            AppKind::CloudSync => 443,
            AppKind::Background => 80,
            AppKind::Gaming => 3_074,
        }
    }

    /// Transport protocol for this class.
    pub fn protocol(self) -> IpProtocol {
        match self {
            AppKind::Voip | AppKind::Gaming => IpProtocol::Udp,
            _ => IpProtocol::Tcp,
        }
    }

    /// Typical full-size data packet length, used to convert fluid byte
    /// counts to packet counts.
    pub fn packet_bytes(self) -> u64 {
        match self {
            AppKind::Voip => 214,    // 20 ms G.711 + headers
            AppKind::Gaming => 128,
            _ => 1_420,
        }
    }
}

/// Unique id of a flow within one home's simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

/// An active transfer between a LAN device and an Internet service.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Flow id, unique per home.
    pub id: FlowId,
    /// The LAN device's MAC address (the attribution key).
    pub device: MacAddr,
    /// The LAN-side transport endpoint.
    pub local: Endpoint,
    /// The remote service endpoint.
    pub remote: Endpoint,
    /// The service's domain (base domain for ranking).
    pub domain: DomainName,
    /// Application class.
    pub kind: AppKind,
    /// When the flow started.
    pub started: SimTime,
    /// Bytes still to receive.
    pub remaining_down: u64,
    /// Bytes still to send.
    pub remaining_up: u64,
    /// Application-level downstream rate cap in bits/s (streaming bitrate,
    /// VoIP codec rate). `None` means backlogged — the flow takes whatever
    /// the link gives it.
    pub rate_cap_bps: Option<u64>,
    /// Application-level upstream rate cap. Paced download apps only send
    /// acknowledgment-clocked trickles upstream, so this is far below the
    /// downstream cap for streaming and absent for bulk senders.
    pub rate_cap_up_bps: Option<u64>,
    /// Consecutive ticks this flow's sender has been pushing more upstream
    /// data than the link drained. Managed by the scheduler; sustained
    /// saturation is what produces LAN-ingress overcounting.
    pub saturated_ticks: u32,
}

impl Flow {
    /// The five-tuple as seen on the LAN side.
    pub fn five_tuple(&self) -> FiveTuple {
        FiveTuple { proto: self.kind.protocol(), src: self.local, dst: self.remote }
    }

    /// True once nothing remains in either direction.
    pub fn is_complete(&self) -> bool {
        self.remaining_down == 0 && self.remaining_up == 0
    }

    fn demand(&self, remaining: u64, cap: Option<u64>) -> Demand {
        if remaining == 0 {
            return Demand { rate_cap_bps: 0.0 };
        }
        Demand { rate_cap_bps: cap.map_or(f64::INFINITY, |cap| cap as f64) }
    }
}

/// Per-flow byte movement during one tick — what the firmware's passive
/// capture observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowProgress {
    /// Which flow moved.
    pub id: FlowId,
    /// Bytes received from the Internet this tick.
    pub bytes_down: u64,
    /// Bytes sent to the Internet this tick.
    pub bytes_up: u64,
    /// Approximate downstream packet count.
    pub pkts_down: u64,
    /// Approximate upstream packet count.
    pub pkts_up: u64,
}

/// Result of advancing the scheduler by one tick.
#[derive(Debug, Clone, Default)]
pub struct TickOutcome {
    /// Per-flow movement (flows that moved zero bytes are included while
    /// active, so idle-but-open connections remain visible).
    pub progress: Vec<FlowProgress>,
    /// Flows that finished during this tick, removed from the active set.
    pub completed: Vec<Flow>,
    /// Total bytes offered downstream (= delivered; downstream arrivals are
    /// shaped upstream of the queue in this model).
    pub total_down: u64,
    /// Total bytes the LAN pushed toward the Internet this tick, measured
    /// at the gateway's LAN ingress — what the firmware's packet counters
    /// see. Equal to the drained bytes for short transfers (TCP's window
    /// limits any initial burst); under *sustained* saturation the bloated
    /// CPE queue stays full, the sender's window repeatedly overshoots and
    /// recovers, and LAN-ingress counts run 20–30% above goodput from
    /// retransmissions. This is the mechanism behind the paper's Fig 16
    /// "utilization exceeds capacity" homes.
    pub total_up_offered: u64,
}

/// The per-home flow scheduler: owns active flows and advances them tick by
/// tick against the link capacities.
#[derive(Debug, Default)]
pub struct FlowScheduler {
    active: Vec<Flow>,
    next_id: u64,
    /// Cumulative flows ever started; read by the observability layer.
    started: u64,
    /// Cumulative flows that ran to completion (aborts excluded).
    completed: u64,
}

impl FlowScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        FlowScheduler::default()
    }

    /// Allocate the next flow id.
    pub fn next_id(&mut self) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Add a flow to the active set.
    pub fn start(&mut self, flow: Flow) {
        self.started += 1;
        self.active.push(flow);
    }

    /// Cumulative count of flows ever started.
    pub fn started_total(&self) -> u64 {
        self.started
    }

    /// Cumulative count of flows that ran to completion (power-off aborts
    /// are not completions).
    pub fn completed_total(&self) -> u64 {
        self.completed
    }

    /// Active flows, in start order.
    pub fn active(&self) -> &[Flow] {
        &self.active
    }

    /// Number of active flows.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Abort every active flow (router power-off); returns them.
    pub fn abort_all(&mut self) -> Vec<Flow> {
        std::mem::take(&mut self.active)
    }

    /// Advance all active flows by `dt` against the given downstream and
    /// upstream capacities (bits/s). `per_flow_cap_bps` optionally limits
    /// each individual flow (per-station radio throughput); in practice the
    /// access link is the bottleneck, so one shared cap per home keeps the
    /// model honest enough. `up_queue_bytes` scales how quickly sustained
    /// saturation builds a standing queue (deeper buffers take longer to
    /// enter the pathological regime).
    pub fn tick(
        &mut self,
        dt: SimDuration,
        down_capacity_bps: u64,
        up_capacity_bps: u64,
        per_flow_cap_bps: Option<u64>,
        up_queue_bytes: u64,
    ) -> TickOutcome {
        let secs = dt.as_secs_f64();
        let clamp = |d: Demand| -> Demand {
            match per_flow_cap_bps {
                Some(cap) => Demand { rate_cap_bps: d.rate_cap_bps.min(cap as f64) },
                None => d,
            }
        };
        let down_demands: Vec<Demand> = self
            .active
            .iter()
            .map(|f| clamp(f.demand(f.remaining_down, f.rate_cap_bps)))
            .collect();
        let up_demands: Vec<Demand> = self
            .active
            .iter()
            .map(|f| clamp(f.demand(f.remaining_up, f.rate_cap_up_bps)))
            .collect();
        let down_rates = max_min_fair(down_capacity_bps as f64, &down_demands);
        // Upstream: senders *offer* at their demanded rate; the link drains
        // at `up_capacity_bps`. We still allocate fairly for what gets
        // through, but record the offered load separately.
        let up_rates = max_min_fair(up_capacity_bps as f64, &up_demands);

        let mut outcome = TickOutcome::default();
        for ((flow, down_rate), (up_rate, up_demand)) in self
            .active
            .iter_mut()
            .zip(&down_rates)
            .zip(up_rates.iter().zip(&up_demands))
        {
            let down_bytes = ((down_rate * secs) / 8.0) as u64;
            let up_bytes = ((up_rate * secs) / 8.0) as u64;
            let moved_down = down_bytes.min(flow.remaining_down);
            let moved_up = up_bytes.min(flow.remaining_up);
            flow.remaining_down -= moved_down;
            flow.remaining_up -= moved_up;
            let pkt = flow.kind.packet_bytes();
            outcome.progress.push(FlowProgress {
                id: flow.id,
                bytes_down: moved_down,
                bytes_up: moved_up,
                pkts_down: moved_down.div_ceil(pkt),
                pkts_up: moved_up.div_ceil(pkt),
            });
            outcome.total_down += moved_down;
            // LAN-ingress upstream accounting. Short saturations look like
            // goodput (TCP's window caps the burst); once saturation has
            // persisted long enough for a standing queue to form (roughly
            // the time to fill the CPE buffer, floor 30 s), loss-recovery
            // overshoot inflates LAN-ingress counts 25% above goodput.
            let unpaced = flow.rate_cap_up_bps.is_none();
            let saturated_now = unpaced && flow.remaining_up > 0 && moved_up > 0;
            let mut offered = moved_up;
            if saturated_now {
                flow.saturated_ticks = flow.saturated_ticks.saturating_add(1);
                let fill_ticks = (up_queue_bytes * 8 * 10)
                    .checked_div(up_capacity_bps)
                    .map_or(120, |t| t.max(120)) as u32;
                if flow.saturated_ticks > fill_ticks {
                    offered += moved_up / 4;
                }
            } else {
                flow.saturated_ticks = 0;
            }
            let _ = up_demand;
            outcome.total_up_offered += offered;
        }
        // Remove completed flows.
        let mut idx = 0;
        while idx < self.active.len() {
            if self.active[idx].is_complete() {
                self.completed += 1;
                outcome.completed.push(self.active.remove(idx));
            } else {
                idx += 1;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_oui_nic(0x3C_07_54, n)
    }

    fn flow(id: u64, down: u64, up: u64, cap: Option<u64>) -> Flow {
        Flow {
            id: FlowId(id),
            device: mac(id as u32),
            local: Endpoint::new(std::net::Ipv4Addr::new(192, 168, 1, 10), 40_000 + id as u16),
            remote: Endpoint::new(std::net::Ipv4Addr::new(93, 184, 216, 34), 443),
            domain: name("example.com"),
            kind: AppKind::Web,
            started: SimTime::EPOCH,
            remaining_down: down,
            remaining_up: up,
            rate_cap_bps: cap,
            rate_cap_up_bps: cap,
            saturated_ticks: 0,
        }
    }

    #[test]
    fn single_flow_consumes_link() {
        let mut sched = FlowScheduler::new();
        // 10 Mbit of data on a 10 Mbps link: exactly one second.
        sched.start(flow(0, 1_250_000, 0, None));
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 1_000_000, None, 256 * 1024);
        assert_eq!(out.total_down, 1_250_000);
        assert_eq!(out.completed.len(), 1);
        assert_eq!(sched.active_count(), 0);
    }

    #[test]
    fn capped_flow_moves_at_its_rate() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 10_000_000, 0, Some(4_000_000)));
        let out = sched.tick(SimDuration::from_secs(1), 50_000_000, 1_000_000, None, 256 * 1024);
        assert_eq!(out.total_down, 500_000, "4 Mbps for 1 s = 500 KB");
        assert_eq!(sched.active_count(), 1);
    }

    #[test]
    fn two_bulk_flows_share_fairly() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 10_000_000, 0, None));
        sched.start(flow(1, 10_000_000, 0, None));
        let out = sched.tick(SimDuration::from_secs(1), 8_000_000, 1_000_000, None, 256 * 1024);
        assert_eq!(out.progress[0].bytes_down, out.progress[1].bytes_down);
        assert_eq!(out.total_down, 1_000_000);
    }

    #[test]
    fn per_flow_cap_limits_wireless_flows() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 100_000_000, 0, None));
        let out = sched.tick(SimDuration::from_secs(1), 100_000_000, 1_000_000, Some(20_000_000), 256 * 1024);
        assert_eq!(out.total_down, 2_500_000, "20 Mbps wireless ceiling");
    }

    #[test]
    fn sustained_saturation_overcounts_at_lan_ingress() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 0, 500_000_000, None));
        // Short saturation: LAN ingress equals goodput.
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 2_000_000, None, 256 * 1024);
        let drained = out.progress[0].bytes_up;
        assert_eq!(drained, 250_000, "2 Mbps drain");
        assert_eq!(out.total_up_offered, drained, "no overcount before a standing queue forms");
        // Keep the link saturated past the standing-queue threshold.
        let mut last = out;
        for _ in 0..130 {
            last = sched.tick(SimDuration::from_secs(1), 10_000_000, 2_000_000, None, 256 * 1024);
        }
        let drained_last = last.progress[0].bytes_up;
        assert!(
            last.total_up_offered >= drained_last + drained_last / 5,
            "sustained saturation inflates LAN-ingress counts: {} vs {}",
            last.total_up_offered,
            drained_last
        );
    }

    #[test]
    fn saturation_counter_resets_when_drained() {
        let mut sched = FlowScheduler::new();
        // Saturate for a while, then let it complete and start a new one.
        sched.start(flow(0, 0, 1_000_000, None));
        for _ in 0..4 {
            sched.tick(SimDuration::from_secs(1), 10_000_000, 2_000_000, None, 256 * 1024);
        }
        assert_eq!(sched.active_count(), 0, "upload completed");
        sched.start(flow(1, 0, 300_000, None));
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 2_000_000, None, 256 * 1024);
        assert_eq!(out.total_up_offered, out.progress[0].bytes_up);
    }

    #[test]
    fn paced_uploads_never_overcount() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 0, 50_000_000, Some(500_000)));
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 2_000_000, None, 256 * 1024);
        assert_eq!(out.total_up_offered, out.progress[0].bytes_up);
    }

    #[test]
    fn completion_and_packet_counts() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 14_200, 1_420, None));
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 10_000_000, None, 256 * 1024);
        assert_eq!(out.completed.len(), 1);
        assert_eq!(out.progress[0].pkts_down, 10);
        assert_eq!(out.progress[0].pkts_up, 1);
    }

    #[test]
    fn abort_all_clears_active_set() {
        let mut sched = FlowScheduler::new();
        sched.start(flow(0, 1_000_000, 0, None));
        sched.start(flow(1, 1_000_000, 0, None));
        let aborted = sched.abort_all();
        assert_eq!(aborted.len(), 2);
        assert_eq!(sched.active_count(), 0);
    }

    #[test]
    fn idle_open_flow_reports_zero_progress() {
        let mut sched = FlowScheduler::new();
        // A flow with a zero rate cap models a long-lived idle connection.
        sched.start(flow(0, 1_000_000, 0, Some(0)));
        let out = sched.tick(SimDuration::from_secs(1), 10_000_000, 10_000_000, None, 256 * 1024);
        assert_eq!(out.progress.len(), 1);
        assert_eq!(out.progress[0].bytes_down, 0);
        assert_eq!(sched.active_count(), 1);
    }

    #[test]
    fn flow_ids_monotonic() {
        let mut sched = FlowScheduler::new();
        let a = sched.next_id();
        let b = sched.next_id();
        assert!(b > a);
    }

    #[test]
    fn app_kind_properties() {
        assert_eq!(AppKind::Voip.protocol(), IpProtocol::Udp);
        assert_eq!(AppKind::Web.protocol(), IpProtocol::Tcp);
        assert!(AppKind::Voip.packet_bytes() < AppKind::StreamingVideo.packet_bytes());
        assert_eq!(AppKind::Web.server_port(), 443);
    }
}
