//! TCP connection establishment and teardown as real segment exchanges.
//!
//! The fluid model moves a flow's *data* in aggregate, but the segments
//! that open and close each connection are genuine wire images: the
//! three-way handshake (SYN, SYN-ACK, ACK) and the FIN/ACK close. This is
//! what makes a "connection" in the Traffic data set a mechanical fact
//! rather than a label — the gateway can count SYNs crossing the NAT, and
//! tests can parse every byte.

use simnet::packet::{
    Endpoint, IpProtocol, Ipv4Packet, ParseError, TcpFlags, TcpSegment,
};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// The segments of one connection's lifecycle, as wire images with their
/// nominal timestamps (client-side clock).
#[derive(Debug, Clone)]
pub struct ConnectionTrace {
    /// (send instant, full IPv4 wire image) in order.
    pub segments: Vec<(SimTime, Vec<u8>)>,
    /// The client's initial sequence number.
    pub client_isn: u32,
    /// The server's initial sequence number.
    pub server_isn: u32,
}

/// Build the handshake trace for a connection opened at `now` between
/// `client` and `server` with the given round-trip time.
pub fn open_connection(
    now: SimTime,
    client: Endpoint,
    server: Endpoint,
    rtt: SimDuration,
    rng: &mut DetRng,
) -> ConnectionTrace {
    let client_isn = rng.next_u64() as u32;
    let server_isn = rng.next_u64() as u32;
    let half = SimDuration::from_micros(rtt.as_micros() / 2);
    let mut segments = Vec::with_capacity(3);

    let syn = TcpSegment {
        src_port: client.port,
        dst_port: server.port,
        seq: client_isn,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 65_535,
        payload: Vec::new(),
    };
    segments.push((
        now,
        Ipv4Packet::new(client.addr, server.addr, IpProtocol::Tcp, syn.emit(client.addr, server.addr))
            .emit(),
    ));

    let syn_ack = TcpSegment {
        src_port: server.port,
        dst_port: client.port,
        seq: server_isn,
        ack: client_isn.wrapping_add(1),
        flags: TcpFlags::SYN_ACK,
        window: 65_535,
        payload: Vec::new(),
    };
    segments.push((
        now + half,
        Ipv4Packet::new(server.addr, client.addr, IpProtocol::Tcp, syn_ack.emit(server.addr, client.addr))
            .emit(),
    ));

    let ack = TcpSegment {
        src_port: client.port,
        dst_port: server.port,
        seq: client_isn.wrapping_add(1),
        ack: server_isn.wrapping_add(1),
        flags: TcpFlags::ACK,
        window: 65_535,
        payload: Vec::new(),
    };
    segments.push((
        now + rtt,
        Ipv4Packet::new(client.addr, server.addr, IpProtocol::Tcp, ack.emit(client.addr, server.addr))
            .emit(),
    ));

    ConnectionTrace { segments, client_isn, server_isn }
}

/// Build the FIN/ACK close trace for a connection ending at `now`.
pub fn close_connection(
    now: SimTime,
    client: Endpoint,
    server: Endpoint,
    client_seq: u32,
    server_seq: u32,
    rtt: SimDuration,
) -> ConnectionTrace {
    let half = SimDuration::from_micros(rtt.as_micros() / 2);
    let mut segments = Vec::with_capacity(2);
    let fin = TcpSegment {
        src_port: client.port,
        dst_port: server.port,
        seq: client_seq,
        ack: server_seq,
        flags: TcpFlags::FIN_ACK,
        window: 65_535,
        payload: Vec::new(),
    };
    segments.push((
        now,
        Ipv4Packet::new(client.addr, server.addr, IpProtocol::Tcp, fin.emit(client.addr, server.addr))
            .emit(),
    ));
    let fin_ack = TcpSegment {
        src_port: server.port,
        dst_port: client.port,
        seq: server_seq,
        ack: client_seq.wrapping_add(1),
        flags: TcpFlags::FIN_ACK,
        window: 65_535,
        payload: Vec::new(),
    };
    segments.push((
        now + half,
        Ipv4Packet::new(server.addr, client.addr, IpProtocol::Tcp, fin_ack.emit(server.addr, client.addr))
            .emit(),
    ));
    ConnectionTrace { segments, client_isn: client_seq, server_isn: server_seq }
}

/// What a passive observer (the gateway) classifies a TCP segment as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Connection request (SYN without ACK).
    Syn,
    /// Connection accept (SYN+ACK).
    SynAck,
    /// Connection close (FIN set).
    Fin,
    /// Connection reset.
    Rst,
    /// Anything else (data or pure ACK).
    Other,
}

/// Classify a full IPv4 wire image as seen at the gateway. Errors on
/// non-TCP or malformed input.
pub fn classify(wire: &[u8]) -> Result<SegmentKind, ParseError> {
    let ip = Ipv4Packet::parse(wire)?;
    if ip.protocol != IpProtocol::Tcp {
        return Err(ParseError::Unsupported);
    }
    let seg = TcpSegment::parse(&ip.payload, ip.src, ip.dst)?;
    Ok(if seg.flags.rst {
        SegmentKind::Rst
    } else if seg.flags.syn && seg.flags.ack {
        SegmentKind::SynAck
    } else if seg.flags.syn {
        SegmentKind::Syn
    } else if seg.flags.fin {
        SegmentKind::Fin
    } else {
        SegmentKind::Other
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn endpoints() -> (Endpoint, Endpoint) {
        (
            Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000),
            Endpoint::new(Ipv4Addr::new(23, 64, 1, 10), 443),
        )
    }

    #[test]
    fn handshake_has_three_valid_segments() {
        let (client, server) = endpoints();
        let mut rng = DetRng::new(1);
        let trace = open_connection(
            SimTime::EPOCH,
            client,
            server,
            SimDuration::from_millis(40),
            &mut rng,
        );
        assert_eq!(trace.segments.len(), 3);
        let kinds: Vec<SegmentKind> = trace
            .segments
            .iter()
            .map(|(_, wire)| classify(wire).expect("valid TCP"))
            .collect();
        assert_eq!(kinds, vec![SegmentKind::Syn, SegmentKind::SynAck, SegmentKind::Other]);
    }

    #[test]
    fn handshake_timing_spans_one_rtt() {
        let (client, server) = endpoints();
        let mut rng = DetRng::new(2);
        let rtt = SimDuration::from_millis(60);
        let trace = open_connection(SimTime::EPOCH, client, server, rtt, &mut rng);
        let first = trace.segments.first().unwrap().0;
        let last = trace.segments.last().unwrap().0;
        assert_eq!(last.since(first), rtt);
    }

    #[test]
    fn sequence_numbers_acknowledge_correctly() {
        let (client, server) = endpoints();
        let mut rng = DetRng::new(3);
        let trace =
            open_connection(SimTime::EPOCH, client, server, SimDuration::from_millis(10), &mut rng);
        let ip = Ipv4Packet::parse(&trace.segments[1].1).unwrap();
        let syn_ack = TcpSegment::parse(&ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(syn_ack.ack, trace.client_isn.wrapping_add(1));
        let ip = Ipv4Packet::parse(&trace.segments[2].1).unwrap();
        let ack = TcpSegment::parse(&ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(ack.ack, trace.server_isn.wrapping_add(1));
    }

    #[test]
    fn close_is_fin_exchange() {
        let (client, server) = endpoints();
        let trace = close_connection(
            SimTime::EPOCH,
            client,
            server,
            1_000,
            2_000,
            SimDuration::from_millis(40),
        );
        let kinds: Vec<SegmentKind> =
            trace.segments.iter().map(|(_, w)| classify(w).expect("valid")).collect();
        assert_eq!(kinds, vec![SegmentKind::Fin, SegmentKind::Fin]);
    }

    #[test]
    fn classify_rejects_udp() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProtocol::Udp,
            vec![0; 16],
        )
        .emit();
        assert!(classify(&pkt).is_err());
    }

    #[test]
    fn distinct_connections_have_distinct_isns() {
        let (client, server) = endpoints();
        let mut rng = DetRng::new(4);
        let a = open_connection(SimTime::EPOCH, client, server, SimDuration::from_millis(10), &mut rng);
        let b = open_connection(SimTime::EPOCH, client, server, SimDuration::from_millis(10), &mut rng);
        assert_ne!(a.client_isn, b.client_isn);
    }
}
