//! Property-based tests for the flow layer: max-min fairness axioms and
//! flow-scheduler conservation laws under arbitrary workloads.

use netstack::fair::{max_min_fair, Demand};
use netstack::{Flow, FlowId, FlowScheduler};
use proptest::prelude::*;
use simnet::dns::DomainName;
use simnet::packet::{Endpoint, MacAddr};
use simnet::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

fn arb_demands() -> impl Strategy<Value = Vec<Demand>> {
    proptest::collection::vec(
        prop_oneof![
            (1.0f64..1e8).prop_map(|cap| Demand { rate_cap_bps: cap }),
            Just(Demand { rate_cap_bps: f64::INFINITY }),
            Just(Demand { rate_cap_bps: 0.0 }),
        ],
        0..24,
    )
}

proptest! {
    #[test]
    fn fairness_axioms(capacity in 0.0f64..1e9, demands in arb_demands()) {
        let rates = max_min_fair(capacity, &demands);
        prop_assert_eq!(rates.len(), demands.len());
        let total: f64 = rates.iter().sum();
        prop_assert!(total <= capacity * (1.0 + 1e-9) + 1e-6, "over-allocation: {total} > {capacity}");
        for (rate, demand) in rates.iter().zip(&demands) {
            prop_assert!(*rate >= 0.0);
            prop_assert!(*rate <= demand.rate_cap_bps * (1.0 + 1e-12) + 1e-9, "cap violated");
        }
        // Pareto efficiency: if any flow is unsatisfied, capacity is used up.
        let unsatisfied = rates
            .iter()
            .zip(&demands)
            .any(|(r, d)| *r + 1e-6 < d.rate_cap_bps.min(1e18));
        if unsatisfied && !demands.is_empty() {
            prop_assert!(total >= capacity - 1e-3, "waste with unsatisfied demand");
        }
        // Symmetry: equal caps get equal rates.
        for i in 0..demands.len() {
            for j in (i + 1)..demands.len() {
                if demands[i].rate_cap_bps == demands[j].rate_cap_bps {
                    prop_assert!((rates[i] - rates[j]).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn scheduler_conserves_bytes(flows in proptest::collection::vec((1u64..5_000_000, 0u64..2_000_000), 1..12),
                                 down_mbps in 1u64..100, up_mbps in 1u64..20, ticks in 1usize..30) {
        let mut sched = FlowScheduler::new();
        let mut expected_total = 0u64;
        for (i, (down, up)) in flows.iter().enumerate() {
            expected_total += down + up;
            sched.start(Flow {
                id: FlowId(i as u64),
                device: MacAddr::from_oui_nic(0x00_17_F2, i as u32),
                local: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000 + i as u16),
                remote: Endpoint::new(Ipv4Addr::new(23, 64, 1, 10), 443),
                domain: DomainName::new("example.com").unwrap(),
                kind: netstack::AppKind::Web,
                started: SimTime::EPOCH,
                remaining_down: *down,
                remaining_up: *up,
                rate_cap_bps: None,
                rate_cap_up_bps: None,
                saturated_ticks: 0,
            });
        }
        let mut moved = 0u64;
        let mut completed = 0usize;
        for _ in 0..ticks {
            let out = sched.tick(
                SimDuration::from_secs(1),
                down_mbps * 1_000_000,
                up_mbps * 1_000_000,
                None,
                256 * 1024,
            );
            for p in &out.progress {
                moved += p.bytes_down + p.bytes_up;
            }
            completed += out.completed.len();
            // Drained downstream never exceeds capacity × dt.
            prop_assert!(out.total_down <= down_mbps * 1_000_000 / 8 + 1);
        }
        prop_assert!(moved <= expected_total, "moved more bytes than existed");
        prop_assert!(completed <= flows.len());
        // Remaining bytes + moved bytes == total.
        let remaining: u64 = sched
            .active()
            .iter()
            .map(|f| f.remaining_down + f.remaining_up)
            .sum();
        prop_assert_eq!(moved + remaining, expected_total);
    }

    #[test]
    fn abort_returns_every_active_flow(n in 1usize..20) {
        let mut sched = FlowScheduler::new();
        for i in 0..n {
            sched.start(Flow {
                id: FlowId(i as u64),
                device: MacAddr::from_oui_nic(0x00_17_F2, i as u32),
                local: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000 + i as u16),
                remote: Endpoint::new(Ipv4Addr::new(23, 64, 1, 10), 443),
                domain: DomainName::new("example.com").unwrap(),
                kind: netstack::AppKind::Web,
                started: SimTime::EPOCH,
                remaining_down: 1_000,
                remaining_up: 0,
                rate_cap_bps: None,
                rate_cap_up_bps: None,
                saturated_ticks: 0,
            });
        }
        let aborted = sched.abort_all();
        prop_assert_eq!(aborted.len(), n);
        prop_assert_eq!(sched.active_count(), 0);
    }
}
