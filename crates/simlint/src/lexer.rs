//! A hand-rolled Rust lexer, just deep enough for rule scanning.
//!
//! The workspace builds offline, so `syn` is not available; the rules in
//! this crate only need token-level structure anyway. The lexer's job is
//! to never misclassify source text that could hide or fabricate a
//! finding: string and char literals must not leak their contents as
//! identifiers, comments must be captured (suppressions live there), and
//! lifetimes must not be confused with char literals. It must never
//! panic, whatever bytes it is fed — `tests/fuzz.rs` holds it to that.

/// What a token is. Literal contents are deliberately not retained:
/// rules must never match inside a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal (including suffixed and based forms).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Identifier text (empty for literals), or the punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// A comment with the line it starts on (block comments may span more).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including delimiters.
    pub text: String,
    /// 1-based starting line.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Total function: any input produces some tokenization;
/// unterminated literals and comments end at EOF.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let ident_start = |c: char| c.is_alphabetic() || c == '_';
    let ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line,
                    end_line: line,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                    end_line: line,
                });
                continue;
            }
        }
        // Identifiers, keywords, and the literal prefixes r / b / br.
        if ident_start(c) {
            let start = i;
            while i < chars.len() && ident_cont(chars[i]) {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // Raw strings r"..", r#".."#, byte strings b"..", br#"..."#,
            // byte chars b'x' — and raw identifiers r#name.
            let next = chars.get(i).copied();
            match (word.as_str(), next) {
                ("r", Some('"')) | ("r", Some('#')) | ("br", Some('"')) | ("br", Some('#')) => {
                    // Count hashes; if a quote follows, it is a raw string.
                    let mut j = i;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        j += 1;
                        // Scan to `"` followed by `hashes` hashes.
                        loop {
                            match chars.get(j) {
                                None => break,
                                Some('"') if chars[j + 1..].iter().take(hashes).filter(|&&h| h == '#').count() == hashes => {
                                    j += 1 + hashes;
                                    break;
                                }
                                Some('\n') => {
                                    line += 1;
                                    j += 1;
                                }
                                Some(_) => j += 1,
                            }
                        }
                        out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
                        i = j;
                        continue;
                    }
                    if hashes > 0 && chars.get(j).is_some_and(|&ch| ident_start(ch)) {
                        // Raw identifier r#name: emit the name itself.
                        let ident_begin = j;
                        while j < chars.len() && ident_cont(chars[j]) {
                            j += 1;
                        }
                        out.tokens.push(Token {
                            kind: TokenKind::Ident,
                            text: chars[ident_begin..j].iter().collect(),
                            line,
                        });
                        i = j;
                        continue;
                    }
                    // `r` / `br` was just an identifier after all.
                    out.tokens.push(Token { kind: TokenKind::Ident, text: word, line });
                    continue;
                }
                ("b", Some('"')) | ("b", Some('\'')) => {
                    // Fall through to the string/char scanners below by
                    // leaving `i` at the quote; the prefix is dropped.
                }
                _ => {
                    out.tokens.push(Token { kind: TokenKind::Ident, text: word, line });
                    continue;
                }
            }
            // Only the ("b", quote) case reaches here.
        }
        let c = match chars.get(i) {
            Some(&c) => c,
            None => break,
        };
        // String literals.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => {
                        if chars.get(i + 1) == Some(&'\n') {
                            line += 1;
                        }
                        i += 2;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: start_line });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            if next.is_some_and(ident_start) {
                // Scan the identifier after the quote: a closing quote
                // right after makes it a char literal ('a'); otherwise it
                // is a lifetime ('a, 'static, '_).
                let mut j = i + 1;
                while j < chars.len() && ident_cont(chars[j]) {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
                    i = j + 1;
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '{', ' '.
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    '\n' => break, // stray quote; do not swallow the file
                    _ => j += 1,
                }
            }
            out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line });
            i = j;
            continue;
        }
        // Numbers (suffixes and base prefixes folded in; `1.5` lexes as
        // Num '.' Num, which is fine for rule matching).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_stream() {
        let l = lex("fn main() { let x = 1; }");
        let kinds: Vec<TokenKind> = l.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident, // fn
                TokenKind::Ident, // main
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Ident, // let
                TokenKind::Ident, // x
                TokenKind::Punct,
                TokenKind::Num,
                TokenKind::Punct,
                TokenKind::Punct,
            ]
        );
    }

    #[test]
    fn string_contents_are_not_identifiers() {
        assert_eq!(idents(r#"let s = "thread_rng inside a string";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_string_with_hashes_and_embedded_quote() {
        let src = r####"let s = r#"contains "quotes" and thread_rng"#; after"####;
        assert_eq!(idents(src), vec!["let", "s", "after"]);
    }

    #[test]
    fn raw_string_multiline_tracks_lines() {
        let src = "let s = r\"line one\nline two\";\nnext";
        let l = lex(src);
        let next = l.tokens.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents(r#"b"bytes with thread_rng" tail"#), vec!["tail"]);
        assert_eq!(idents(r##"br#"raw bytes"# tail"##), vec!["tail"]);
        assert_eq!(idents("b'x' tail"), vec!["tail"]);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "before /* outer /* inner */ still comment */ after";
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(),
            vec!["before", "after"]
        );
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comments_are_captured_with_lines() {
        let src = "let a = 1; // simlint: allow(x) — reason\nlet b = 2;";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("allow(x)"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let s = '\\''; }");
        let lifetimes: Vec<&Token> =
            l.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes");
        let chars: Vec<&Token> =
            l.tokens.iter().filter(|t| t.kind == TokenKind::Literal).collect();
        assert_eq!(chars.len(), 2, "'a' and '\\'' are char literals");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let l = lex("&'static str; &'_ T");
        let names: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["static", "_"]);
    }

    #[test]
    fn char_literal_with_unicode_escape() {
        let l = lex(r"let c = '\u{1F600}'; tail");
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")), "scanner must recover");
    }

    #[test]
    fn numbers_with_suffixes_and_bases() {
        let l = lex("0xFFu16 1_000_000 2.5f64");
        let nums: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0xFFu16", "1_000_000", "2", "5f64"]);
    }

    #[test]
    fn unterminated_forms_do_not_hang_or_panic() {
        for src in ["\"unterminated", "r#\"unterminated", "/* unterminated", "'", "b\"", "'\\"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn stray_quote_does_not_swallow_following_lines() {
        let src = "let apostrophe = '\nfn visible() {}";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.is_ident("visible")));
    }
}
