//! Threading family: `shared-state` confines concurrency primitives in
//! dataset/analysis crates to files whitelisted in
//! `simlint-shared-state.txt`.
//!
//! The flagged constructs are the three ways this workspace could grow
//! schedule-dependent behavior ahead of the multicore refactor (ROADMAP
//! item 2): `static mut` (unsynchronized globals), `spawn(..)` (ad-hoc
//! threads outside the audited scoped-merge orchestration), and
//! `Ordering::Relaxed` atomics (no cross-thread ordering). Each
//! whitelist entry names one file + construct with a justification; one
//! entry covers every site of that construct in the file, because the
//! review unit is "this file's use of threads/atomics is deliberate".
//! Entries that match no site are flagged as stale by the workspace
//! pass, exactly like hot-path manifest rot.

use super::{in_spans, push, FileInput, Finding, DATASET_CRATES};
use crate::lexer::Token;

/// Constructs the rule recognizes (the second column of the whitelist).
pub const SHARED_STATE_CONSTRUCTS: &[&str] = &["static-mut", "spawn", "relaxed-atomic"];

/// One line of `simlint-shared-state.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedStateEntry {
    /// Workspace-relative file the entry covers.
    pub path: String,
    /// One of [`SHARED_STATE_CONSTRUCTS`].
    pub construct: String,
    /// Why this file's use of the construct is sound (required).
    pub justification: String,
    /// 1-based line in the whitelist file.
    pub line: u32,
}

/// Parse the whitelist: `path construct justification...` per line
/// (whitespace-separated, justification is the rest of the line),
/// `#` comments.
pub fn parse_shared_whitelist(text: &str) -> Vec<SharedStateEntry> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(path), Some(construct)) = (parts.next(), parts.next()) else { continue };
        out.push(SharedStateEntry {
            path: path.to_string(),
            construct: construct.to_string(),
            justification: parts.next().unwrap_or("").trim().to_string(),
            line: (i + 1) as u32,
        });
    }
    out
}

/// `shared-state`: returns `(whitelisted site count, used whitelist
/// entry lines)` alongside any findings for unlisted sites.
pub(crate) fn rule_shared_state(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) -> (usize, Vec<u32>) {
    let scoped = DATASET_CRATES.iter().any(|c| input.path.starts_with(c))
        || input.path.starts_with("crates/analysis/src/");
    if !scoped {
        return (0, Vec::new());
    }
    let mut whitelisted = 0usize;
    let mut used: Vec<u32> = Vec::new();
    let mut site = |construct: &str, line: u32, message: String, out: &mut Vec<Finding>| {
        let hit = input
            .shared_whitelist
            .iter()
            .find(|e| e.path == input.path && e.construct == construct);
        match hit {
            Some(e) => {
                whitelisted += 1;
                used.push(e.line);
            }
            None => push(out, "shared-state", input.path, line, message),
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if in_spans(test_spans, t.line) {
            continue;
        }
        if t.is_ident("static") && tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            site(
                "static-mut",
                t.line,
                "`static mut` is an unsynchronized global; use an atomic or pass state \
                 explicitly, or whitelist the file in simlint-shared-state.txt with a \
                 justification"
                    .to_string(),
                out,
            );
        }
        if t.is_ident("spawn") && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            site(
                "spawn",
                t.line,
                "`spawn(..)` creates a thread in a dataset crate; keep orchestration in the \
                 audited scoped-merge files (whitelist the file in simlint-shared-state.txt \
                 with a justification)"
                    .to_string(),
                out,
            );
        }
        if t.is_ident("Relaxed") {
            site(
                "relaxed-atomic",
                t.line,
                "`Ordering::Relaxed` gives no cross-thread ordering; use Acquire/Release or \
                 whitelist the file in simlint-shared-state.txt with a justification for why \
                 relaxed counters stay deterministic"
                    .to_string(),
                out,
            );
        }
    }
    used.sort_unstable();
    used.dedup();
    (whitelisted, used)
}

#[cfg(test)]
mod tests {
    use super::super::test_util::scan;
    use super::super::{scan_file, FileInput};
    use super::*;

    #[test]
    fn whitelist_parsing_reads_path_construct_and_justification() {
        let text = "# comment\n\ncrates/obs/src/lib.rs\trelaxed-atomic\tcounters merged by sum\n\
                    crates/core/src/study.rs spawn scoped workers joined before snapshot\n";
        let w = parse_shared_whitelist(text);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].path, "crates/obs/src/lib.rs");
        assert_eq!(w[0].construct, "relaxed-atomic");
        assert_eq!(w[0].justification, "counters merged by sum");
        assert_eq!(w[0].line, 3);
        assert_eq!(w[1].construct, "spawn");
        assert_eq!(w[1].justification, "scoped workers joined before snapshot");
    }

    #[test]
    fn spawn_and_relaxed_flagged_in_dataset_crate() {
        let src = "
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(c: &AtomicU64) {
                std::thread::spawn(|| {});
                c.fetch_add(1, Ordering::Relaxed);
            }";
        let f = scan("crates/collector/src/columns.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "shared-state" && x.line == 4));
        assert!(f.iter().any(|x| x.rule == "shared-state" && x.line == 5));
    }

    #[test]
    fn static_mut_flagged() {
        let src = "static mut COUNTER: u64 = 0;";
        let f = scan("crates/simnet/src/packet.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "shared-state");
        assert!(f[0].message.contains("static mut"));
    }

    #[test]
    fn whitelisted_file_is_silent_and_reports_usage() {
        let src = "
            use std::sync::atomic::{AtomicU64, Ordering};
            fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let wl = vec![SharedStateEntry {
            path: "crates/obs/src/lib.rs".to_string(),
            construct: "relaxed-atomic".to_string(),
            justification: "counters merged by sum".to_string(),
            line: 4,
        }];
        let scanned = scan_file(&FileInput {
            path: "crates/obs/src/lib.rs",
            source: src,
            shared_whitelist: &wl,
            ..FileInput::default()
        });
        assert!(scanned.findings.is_empty(), "{:?}", scanned.findings);
        assert_eq!(scanned.whitelisted, 1);
        assert_eq!(scanned.whitelist_used, vec![4]);
    }

    #[test]
    fn whitelist_entry_does_not_cover_other_construct() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let wl = vec![SharedStateEntry {
            path: "crates/obs/src/lib.rs".to_string(),
            construct: "relaxed-atomic".to_string(),
            justification: "counters merged by sum".to_string(),
            line: 4,
        }];
        let scanned = scan_file(&FileInput {
            path: "crates/obs/src/lib.rs",
            source: src,
            shared_whitelist: &wl,
            ..FileInput::default()
        });
        assert_eq!(scanned.findings.len(), 1, "{:?}", scanned.findings);
        assert_eq!(scanned.findings[0].rule, "shared-state");
    }

    #[test]
    fn shared_state_ignores_test_code_and_out_of_scope_crates() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn t() { std::thread::spawn(|| {}); }
            }";
        assert!(scan("crates/collector/src/columns.rs", src).is_empty());
        let bench = "fn f() { std::thread::spawn(|| {}); }";
        assert!(scan("crates/bench/src/lib.rs", bench).is_empty());
    }
}
