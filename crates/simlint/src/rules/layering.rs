//! Layering family: the workspace's crate-dependency edges must match
//! the checked-in `simlint-layers.txt`, which mirrors DESIGN.md's
//! dep-flow (`simnet ← netstack ← household ← core`, etc.).
//!
//! This is the one rule that runs on the whole-workspace graph rather
//! than per file, with three arms:
//!
//! 1. a `[dependencies]` edge between members that the manifest does not
//!    declare — the finding points at the `Cargo.toml` line, so adding a
//!    dependency forces a deliberate layering decision;
//! 2. a manifest line no `Cargo.toml` backs — stale entries are
//!    findings, exactly like hot-path manifest rot;
//! 3. a declared edge whose dependency is never referenced from the
//!    consumer's sources — dead edges blur the layer diagram and slow
//!    builds, so they must be deleted from both files.

use super::{push, Finding};
use crate::graph::SymbolGraph;

/// Name of the layering manifest at the workspace root.
pub const LAYERS_FILE: &str = "simlint-layers.txt";

/// One `consumer -> dependency` line of `simlint-layers.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerEdge {
    /// Consumer package name.
    pub from: String,
    /// Dependency package name.
    pub to: String,
    /// 1-based line in the manifest.
    pub line: u32,
}

/// Parse the manifest: one `consumer -> dependency` per line, `#` comments.
pub fn parse_layers(text: &str) -> Vec<LayerEdge> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((from, to)) = line.split_once("->") else { continue };
        out.push(LayerEdge {
            from: from.trim().to_string(),
            to: to.trim().to_string(),
            line: (i + 1) as u32,
        });
    }
    out
}

/// `layering`: reconcile the graph's Cargo edges with the manifest.
pub(crate) fn rule_layering(
    graph: &SymbolGraph,
    manifest: &[LayerEdge],
    out: &mut Vec<Finding>,
) {
    // Arm 1 + 3: walk every declared dependency edge.
    for cg in graph.crates.values() {
        for dep in &cg.deps {
            let cargo_path = format!("{}/Cargo.toml", cg.dir);
            if !manifest.iter().any(|e| e.from == cg.package && e.to == dep.to) {
                push(
                    out,
                    "layering",
                    &cargo_path,
                    dep.line,
                    format!(
                        "dependency edge `{} -> {}` is not declared in {LAYERS_FILE}; add it \
                         there (a deliberate layering decision) or remove the dependency",
                        cg.package, dep.to
                    ),
                );
            }
            let dep_lib = graph
                .crates
                .values()
                .find(|c| c.package == dep.to)
                .map(|c| c.lib_name.clone())
                .unwrap_or_else(|| dep.to.clone());
            if !cg.refs.contains(&dep_lib) {
                push(
                    out,
                    "layering",
                    &cargo_path,
                    dep.line,
                    format!(
                        "declared dependency `{}` is never referenced from `{}` sources; \
                         delete the edge from Cargo.toml and {LAYERS_FILE}",
                        dep.to, cg.package
                    ),
                );
            }
        }
    }
    // Arm 2: manifest lines with no backing Cargo edge.
    for e in manifest {
        let backed = graph
            .crates
            .values()
            .any(|cg| cg.package == e.from && cg.deps.iter().any(|d| d.to == e.to));
        if !backed {
            push(
                out,
                "layering",
                LAYERS_FILE,
                e.line,
                format!(
                    "manifest edge `{} -> {}` matches no [dependencies] entry; delete the \
                     stale line",
                    e.from, e.to
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CrateGraph, DepEdge};
    use std::collections::BTreeSet;

    fn crate_entry(package: &str, deps: &[(&str, u32)], refs: &[&str]) -> CrateGraph {
        CrateGraph {
            package: package.to_string(),
            lib_name: package.to_string(),
            dir: format!("crates/{package}"),
            deps: deps
                .iter()
                .map(|&(to, line)| DepEdge { to: to.to_string(), line })
                .collect(),
            refs: refs.iter().map(|r| r.to_string()).collect::<BTreeSet<_>>(),
            ..CrateGraph::default()
        }
    }

    fn graph(crates: Vec<CrateGraph>) -> SymbolGraph {
        let mut g = SymbolGraph::default();
        for c in crates {
            g.crates.insert(c.dir.clone(), c);
        }
        g
    }

    #[test]
    fn layers_parsing() {
        let m = parse_layers("# deps\nanalysis -> collector\n\nnetstack->simnet\n");
        assert_eq!(m.len(), 2);
        assert_eq!((m[0].from.as_str(), m[0].to.as_str(), m[0].line), ("analysis", "collector", 2));
        assert_eq!((m[1].from.as_str(), m[1].to.as_str(), m[1].line), ("netstack", "simnet", 4));
    }

    #[test]
    fn undeclared_cargo_edge_is_a_finding_at_the_dep_line() {
        let g = graph(vec![
            crate_entry("netstack", &[("simnet", 9)], &["simnet"]),
            crate_entry("simnet", &[], &[]),
        ]);
        let mut out = Vec::new();
        rule_layering(&g, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "crates/netstack/Cargo.toml");
        assert_eq!(out[0].line, 9);
        assert!(out[0].message.contains("netstack -> simnet"));
    }

    #[test]
    fn matching_manifest_is_clean() {
        let g = graph(vec![
            crate_entry("netstack", &[("simnet", 9)], &["simnet"]),
            crate_entry("simnet", &[], &[]),
        ]);
        let manifest =
            vec![LayerEdge { from: "netstack".into(), to: "simnet".into(), line: 2 }];
        let mut out = Vec::new();
        rule_layering(&g, &manifest, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_manifest_edge_is_a_finding_at_the_manifest_line() {
        let g = graph(vec![crate_entry("simnet", &[], &[])]);
        let manifest =
            vec![LayerEdge { from: "netstack".into(), to: "simnet".into(), line: 7 }];
        let mut out = Vec::new();
        rule_layering(&g, &manifest, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, LAYERS_FILE);
        assert_eq!(out[0].line, 7);
        assert!(out[0].message.contains("stale"));
    }

    #[test]
    fn unreferenced_dependency_is_a_finding() {
        let g = graph(vec![
            crate_entry("netstack", &[("simnet", 9)], &[]),
            crate_entry("simnet", &[], &[]),
        ]);
        let manifest =
            vec![LayerEdge { from: "netstack".into(), to: "simnet".into(), line: 2 }];
        let mut out = Vec::new();
        rule_layering(&g, &manifest, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("never referenced"), "{}", out[0].message);
    }

    #[test]
    fn lib_name_is_used_for_reference_checks() {
        // bismark-core's lib is `bismark`: a `bismark::` path in the
        // consumer justifies the `bismark-core` dependency edge.
        let mut core = crate_entry("bismark-core", &[], &[]);
        core.lib_name = "bismark".to_string();
        let g = graph(vec![
            crate_entry("bench", &[("bismark-core", 12)], &["bismark"]),
            core,
        ]);
        let manifest =
            vec![LayerEdge { from: "bench".into(), to: "bismark-core".into(), line: 3 }];
        let mut out = Vec::new();
        rule_layering(&g, &manifest, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
