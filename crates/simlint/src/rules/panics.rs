//! Panic-safety family: the ingest / spill / upload path must degrade
//! into typed errors or explicit gap declarations — it may neither
//! crash (`panic-in-ingest`) nor silently discard a `Result`
//! (`error-swallow`).

use super::{in_spans, push, FileInput, Finding, INGEST_FILES, KEYWORDS};
use crate::lexer::{Token, TokenKind};

/// `panic-in-ingest`: potential panics on the ingest/export/upload path.
pub(crate) fn rule_panic_in_ingest(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !INGEST_FILES.contains(&input.path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(test_spans, t.line) {
            continue;
        }
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                "panic-in-ingest",
                input.path,
                t.line,
                format!(
                    "`.{}()` can panic on the ingest path; return a typed error, handle the \
                     None/Err case, or document infallibility with a suppression",
                    t.text
                ),
            );
        }
        // panic!/unreachable!/todo!/unimplemented!
        if ["panic", "unreachable", "todo", "unimplemented"].iter().any(|m| t.is_ident(m))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                out,
                "panic-in-ingest",
                input.path,
                t.line,
                format!("`{}!` aborts ingestion; degrade into a typed error instead", t.text),
            );
        }
        // Slice/array indexing: `[` directly after an expression tail.
        if t.is_punct('[') && i > 0 {
            let prev = &tokens[i - 1];
            let indexes_expr = (prev.kind == TokenKind::Ident
                && !KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexes_expr {
                push(
                    out,
                    "panic-in-ingest",
                    input.path,
                    t.line,
                    "slice indexing can panic on the ingest path; use .get() or document the \
                     bounds invariant with a suppression"
                        .to_string(),
                );
            }
        }
    }
}

/// `error-swallow`: `let _ = ..` and statement-tail `.ok();` on the
/// ingest path discard a `Result` the loss-accounting story depends on
/// (PR 3 made every loss an explicit gap declaration; PR 7 extended
/// that to spill I/O). Either handle the error or record it on the
/// gap/stats ledger — and if discarding really is correct, say why in a
/// suppression.
pub(crate) fn rule_error_swallow(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !INGEST_FILES.contains(&input.path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(test_spans, t.line) {
            continue;
        }
        // let _ = <expr>;  (exactly the wildcard: `let _x` keeps the value
        // nameable and is not a discard pattern).
        if t.is_ident("let")
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("_"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            push(
                out,
                "error-swallow",
                input.path,
                t.line,
                "`let _ =` discards a Result on the ingest path; handle the error, record it \
                 on the gap/stats ledger, or justify the discard with a suppression"
                    .to_string(),
            );
        }
        // <expr>.ok();  — the Result evaporates at statement end.
        if t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_ident("ok"))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
            && tokens.get(i + 4).is_some_and(|n| n.is_punct(';'))
        {
            push(
                out,
                "error-swallow",
                input.path,
                t.line,
                "statement-tail `.ok()` discards a Result on the ingest path; handle the \
                 error, record it on the gap/stats ledger, or justify the discard with a \
                 suppression"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::scan;

    #[test]
    fn panic_in_ingest_unwrap_and_index() {
        let src = "
            fn ingest(v: &[u8]) -> u8 {
                let first = v.first().unwrap();
                v[10] + first
            }";
        let f = scan("crates/collector/src/server.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "panic-in-ingest"));
        assert!(scan("crates/collector/src/windows.rs", src).is_empty(), "path-scoped");
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(scan("crates/collector/src/server.rs", src).is_empty());
    }

    #[test]
    fn array_types_and_literals_not_indexing() {
        let src = "
            fn f(buf: &mut [u8; 4]) -> [u8; 2] {
                let _x: Vec<[u8; 4]> = vec![];
                let [a, b] = [0u8, 1u8];
                [a, b]
            }";
        assert!(scan("crates/firmware/src/uploader.rs", src).is_empty());
    }

    #[test]
    fn let_underscore_discard_flagged_on_ingest_path() {
        let src = "
            fn cleanup(dir: &std::path::Path) {
                let _ = std::fs::remove_dir_all(dir);
            }";
        let f = scan("crates/collector/src/spill.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "error-swallow");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn statement_tail_ok_discard_flagged() {
        let src = "
            fn cleanup(dir: &std::path::Path) {
                std::fs::remove_dir_all(dir).ok();
            }";
        let f = scan("crates/collector/src/server.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "error-swallow");
    }

    #[test]
    fn ok_in_expression_position_not_flagged() {
        // `.ok()` feeding a combinator keeps the outcome observable.
        let src = "
            fn read(p: &std::path::Path) -> Option<Vec<u8>> {
                std::fs::read(p).ok().filter(|v| !v.is_empty())
            }";
        let f = scan("crates/collector/src/spill.rs", src);
        assert!(f.iter().all(|x| x.rule != "error-swallow"), "{f:?}");
    }

    #[test]
    fn named_underscore_binding_not_flagged() {
        let src = "fn f() { let _guard = acquire(); }";
        assert!(scan("crates/collector/src/spill.rs", src).is_empty());
    }

    #[test]
    fn error_swallow_scoped_to_ingest_files() {
        let src = "fn f() { let _ = send(); }";
        assert!(scan("crates/simnet/src/packet.rs", src).is_empty());
    }
}
