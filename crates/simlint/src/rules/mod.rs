//! The rule catalog and the per-file scanning engine.
//!
//! Rules are grouped into families, one module each (see DESIGN.md §6
//! for the prose version of this table):
//!
//! * [`determinism`] — `nondeterministic-iteration`, `wall-clock`,
//!   `ambient-rng`, `float-accum-order`: anything that could make a
//!   seeded study's output depend on the host, the process, or the
//!   schedule.
//! * [`panics`] — `panic-in-ingest`, `error-swallow`: the ingest /
//!   spill / upload path must degrade into typed errors or explicit gap
//!   declarations — it may neither crash nor silently drop a `Result`.
//! * [`hotpath`] — `hot-path-alloc`, `hot-path-transitive`: functions in
//!   `simlint-hotpaths.txt` are allocation-free, and so is everything
//!   they reach through the call graph (pass 1, [`crate::graph`]).
//! * [`threading`] — `shared-state`: `static mut`, `spawn`, and
//!   `Ordering::Relaxed` in dataset crates are confined to the files
//!   whitelisted in `simlint-shared-state.txt`.
//! * [`layering`] — `layering`: the crate dependency edges in members'
//!   `Cargo.toml`s must match `simlint-layers.txt` (which mirrors
//!   DESIGN.md's dep-flow), every declared edge must be referenced from
//!   source, and stale manifest lines are findings.
//!
//! Matching is token-level: there is no type inference, so rules key off
//! declarations they can see (in the same file, or in pass 1's workspace
//! symbol graph). That trades a few heuristic misses for zero
//! dependencies; the suppression mechanism absorbs deliberate exceptions.

pub mod determinism;
pub mod hotpath;
pub mod layering;
pub mod panics;
pub mod threading;

pub use layering::{parse_layers, LayerEdge};
pub use threading::{parse_shared_whitelist, SharedStateEntry};

use crate::graph::TransitiveHot;
use crate::lexer::{lex, Comment, Token};

/// Rule identifiers, as written inside `allow(...)`.
pub const RULES: &[&str] = &[
    "nondeterministic-iteration",
    "wall-clock",
    "ambient-rng",
    "float-accum-order",
    "panic-in-ingest",
    "error-swallow",
    "hot-path-alloc",
    "hot-path-transitive",
    "shared-state",
    "layering",
];

/// Crates whose emitted records reach `Datasets` (the determinism
/// boundary): unordered iteration inside them is a finding.
pub(crate) const DATASET_CRATES: &[&str] = &[
    "crates/obs/src/",
    "crates/simnet/src/",
    "crates/household/src/",
    "crates/firmware/src/",
    "crates/collector/src/",
    "crates/cgn/src/",
    "crates/core/src/",
];

/// Files making up the idempotent ingest / reliable upload path. The
/// spill module is included because segment I/O runs underneath ingestion:
/// a disk error must surface as a `Result` (degrading to in-memory), never
/// as a panic that takes the collector down mid-study.
pub(crate) const INGEST_FILES: &[&str] = &[
    "crates/collector/src/server.rs",
    "crates/collector/src/export.rs",
    "crates/collector/src/spill.rs",
    "crates/firmware/src/uploader.rs",
];

/// Map methods whose iteration order is the map's internal order.
pub(crate) const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Words that look like identifiers to the lexer but can never name a
/// local binding (used to reject `let [a, b] = ...` as indexing, and to
/// reject `if (...)` as a call in the symbol graph).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`], or the meta rules
    /// `unjustified-suppression` / `unused-suppression`).
    pub rule: String,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// A parsed `// simlint: allow(rule, ...) — justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment ends on (it applies to this line and the next).
    pub line: u32,
    /// Rules it names.
    pub rules: Vec<String>,
    /// Whether non-empty justification text follows the rule list.
    pub justified: bool,
    /// The justification text itself (empty when unjustified); listed
    /// verbatim by `simlint --audit`.
    pub justification: String,
}

/// An entry of the hot-path manifest: `path::function`.
#[derive(Debug, Clone)]
pub struct HotPathFn {
    /// Workspace-relative file path.
    pub path: String,
    /// Function name.
    pub func: String,
}

/// Parse the manifest format: one `path::function` per line, `#` comments.
pub fn parse_hotpaths(text: &str) -> Vec<HotPathFn> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, func) = l.rsplit_once("::")?;
            Some(HotPathFn { path: path.trim().to_string(), func: func.trim().to_string() })
        })
        .collect()
}

/// Extract suppressions from comments. Doc comments (`///`, `//!`) are
/// documentation, not directives: mentioning the suppression syntax in
/// rustdoc must not create one.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let Some(pos) = c.text.find("simlint:") else { continue };
        let rest = c.text[pos + "simlint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim();
        out.push(Suppression {
            line: c.end_line,
            rules,
            justified: !tail.is_empty(),
            justification: tail.to_string(),
        });
    }
    out
}

/// Inclusive line ranges of `#[cfg(test)]`-gated items (plus, the caller
/// may treat whole files under `tests/`, `benches/`, `examples/` as test
/// code). Findings are not raised inside test code: tests may unwrap and
/// iterate freely, their output never reaches a dataset.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip to the attribute's closing bracket.
        let mut j = i + 2;
        let mut bracket_depth = 1i32;
        while j < tokens.len() && bracket_depth > 0 {
            if tokens[j].is_punct('[') {
                bracket_depth += 1;
            } else if tokens[j].is_punct(']') {
                bracket_depth -= 1;
            }
            j += 1;
        }
        // The gated item: find its body (first `{` before any `;`) and the
        // matching close brace.
        let mut body_start = None;
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                break; // item without a body (e.g. a gated `use`)
            }
            if tokens[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            j += 1;
        }
        if let Some(open) = body_start {
            let mut depth = 0i32;
            let mut k = open;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let end_line = tokens.get(k).or_else(|| tokens.last()).map_or(start_line, |t| t.line);
            spans.push((start_line, end_line));
            i = k.max(i + 1);
        } else {
            i = j.max(i + 1);
        }
    }
    spans
}

pub(crate) fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Everything the rules need to scan one file. The graph-derived fields
/// default to empty so single-file scans (and v1-era tests) still work.
#[derive(Default)]
pub struct FileInput<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Source text.
    pub source: &'a str,
    /// Hot-path manifest entries for this file.
    pub hotpaths: &'a [HotPathFn],
    /// Functions in this file the call graph reaches from the manifest.
    pub transitive: &'a [TransitiveHot],
    /// The full shared-state whitelist (entries are path-scoped).
    pub shared_whitelist: &'a [SharedStateEntry],
}

/// Result of scanning one file.
pub struct FileScan {
    /// Findings that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by justified suppressions.
    pub suppressed: usize,
    /// Shared-state sites silenced by the whitelist.
    pub whitelisted: usize,
    /// Lines (in `simlint-shared-state.txt`) of whitelist entries that
    /// matched a site in this file; the workspace pass flags the rest as
    /// stale.
    pub whitelist_used: Vec<u32>,
}

/// Scan one file: lex, run every applicable rule, then apply suppressions.
pub fn scan_file(input: &FileInput<'_>) -> FileScan {
    let lexed = lex(input.source);
    let suppressions = parse_suppressions(&lexed.comments);
    let is_test_file = input.path.contains("/tests/")
        || input.path.contains("/benches/")
        || input.path.starts_with("tests/")
        || input.path.starts_with("examples/");
    let spans = if is_test_file {
        vec![(0, u32::MAX)]
    } else {
        test_spans(&lexed.tokens)
    };

    let mut raw = Vec::new();
    determinism::rule_nondeterministic_iteration(input, &lexed.tokens, &spans, &mut raw);
    determinism::rule_wall_clock(input, &lexed.tokens, &mut raw);
    determinism::rule_ambient_rng(input, &lexed.tokens, &mut raw);
    determinism::rule_float_accum_order(input, &lexed.tokens, &spans, &mut raw);
    panics::rule_panic_in_ingest(input, &lexed.tokens, &spans, &mut raw);
    panics::rule_error_swallow(input, &lexed.tokens, &spans, &mut raw);
    hotpath::rule_hot_path_alloc(input, &lexed.tokens, &spans, &mut raw);
    hotpath::rule_hot_path_transitive(input, &lexed.tokens, &spans, &mut raw);
    let (whitelisted, whitelist_used) =
        threading::rule_shared_state(input, &lexed.tokens, &spans, &mut raw);

    let mut scan = apply_suppressions(input.path, raw, &suppressions);
    scan.whitelisted = whitelisted;
    scan.whitelist_used = whitelist_used;
    scan
}

/// Filter findings through suppressions; flag unjustified and unused ones.
fn apply_suppressions(
    path: &str,
    raw: Vec<Finding>,
    suppressions: &[Suppression],
) -> FileScan {
    let mut used = vec![false; suppressions.len()];
    let mut unjustified: Vec<usize> = Vec::new();
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        // Prefer a same-line suppression over a line-above one: when both
        // exist (adjacent suppressed lines), each must pair with its own
        // finding or the same-line one is falsely reported as unused.
        let names_rule =
            |s: &&Suppression| s.rules.iter().any(|r| *r == f.rule);
        let hit = suppressions
            .iter()
            .enumerate()
            .find(|(_, s)| s.line == f.line && names_rule(s))
            .or_else(|| {
                suppressions
                    .iter()
                    .enumerate()
                    .find(|(_, s)| s.line + 1 == f.line && names_rule(s))
            });
        match hit {
            Some((idx, s)) => {
                used[idx] = true;
                if s.justified {
                    suppressed += 1;
                } else {
                    unjustified.push(idx);
                }
            }
            None => findings.push(f),
        }
    }
    // One comment can absorb several findings on its line; report it once.
    unjustified.sort_unstable();
    unjustified.dedup();
    for idx in unjustified {
        let s = &suppressions[idx];
        findings.push(Finding {
            rule: "unjustified-suppression".to_string(),
            path: path.to_string(),
            line: s.line,
            message: format!(
                "suppression for `{}` has no justification; write `// simlint: allow({}) — <why>`",
                s.rules.join(", "),
                s.rules.join(", "),
            ),
        });
    }
    for (idx, s) in suppressions.iter().enumerate() {
        if !used[idx] {
            findings.push(Finding {
                rule: "unused-suppression".to_string(),
                path: path.to_string(),
                line: s.line,
                message: format!(
                    "suppression for `{}` matches no finding; delete it",
                    s.rules.join(", ")
                ),
            });
        }
    }
    FileScan { findings, suppressed, whitelisted: 0, whitelist_used: Vec::new() }
}

pub(crate) fn push(out: &mut Vec<Finding>, rule: &str, path: &str, line: u32, message: String) {
    // One finding per (rule, line): a line like `a.iter().chain(b.iter())`
    // is one reviewable site, not two.
    if out.iter().any(|f| f.rule == rule && f.line == line && f.path == path) {
        return;
    }
    out.push(Finding { rule: rule.to_string(), path: path.to_string(), line, message });
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    pub fn scan(path: &str, source: &str) -> Vec<Finding> {
        scan_file(&FileInput { path, source, ..FileInput::default() }).findings
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::scan;
    use super::*;

    #[test]
    fn justified_suppression_silences_finding() {
        let src = "
            fn f() {
                // simlint: allow(wall-clock) — CLI phase timing, never reaches datasets
                let t = std::time::Instant::now();
            }";
        let scanned = scan_file(&FileInput {
            path: "crates/core/src/study.rs",
            source: src,
            ..FileInput::default()
        });
        assert!(scanned.findings.is_empty(), "{:?}", scanned.findings);
        assert_eq!(scanned.suppressed, 1);
    }

    #[test]
    fn same_line_suppression_works() {
        let src =
            "fn f() { let t = std::time::Instant::now(); } // simlint: allow(wall-clock) — timing";
        assert!(scan("crates/core/src/study.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_justification_fails() {
        let src = "
            fn f() {
                // simlint: allow(wall-clock)
                let t = std::time::Instant::now();
            }";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unjustified-suppression");
    }

    #[test]
    fn suppression_for_wrong_rule_does_not_silence() {
        let src = "
            fn f() {
                // simlint: allow(ambient-rng) — wrong rule named
                let t = std::time::Instant::now();
            }";
        let f = scan("crates/core/src/study.rs", src);
        assert!(f.iter().any(|x| x.rule == "wall-clock"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unused-suppression"), "{f:?}");
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// simlint: allow(wall-clock) — nothing here anymore\nfn f() {}";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-suppression");
    }

    #[test]
    fn suppression_justification_text_is_captured() {
        let src = "
            // simlint: allow(wall-clock) — CLI phase timing only
            fn f() { let t = std::time::Instant::now(); }";
        let lexed = crate::lexer::lex(src);
        let s = parse_suppressions(&lexed.comments);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].justification, "CLI phase timing only");
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "
            fn ingest(v: &[u8]) -> u8 {
                // simlint: allow(panic-in-ingest) — length checked by caller contract
                v[0]
            }";
        assert!(scan("crates/collector/src/server.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_create_suppressions() {
        let src = "
            /// Mentioning the syntax in docs is fine: simlint: allow(wall-clock) — example
            fn f() {}";
        assert!(scan("crates/core/src/study.rs", src).is_empty(), "no unused-suppression");
    }

    #[test]
    fn hotpath_manifest_parsing() {
        let text = "# comment\n\ncrates/firmware/src/heartbeat.rs::emit_into\n\
                    crates/firmware/src/uploader.rs::seal\n";
        let hp = parse_hotpaths(text);
        assert_eq!(hp.len(), 2);
        assert_eq!(hp[0].path, "crates/firmware/src/heartbeat.rs");
        assert_eq!(hp[0].func, "emit_into");
        assert_eq!(hp[1].func, "seal");
    }
}
