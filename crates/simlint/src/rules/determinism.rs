//! Determinism family: rules against host-, process-, or
//! schedule-dependent output in seeded studies.

use super::{
    in_spans, push, FileInput, Finding, DATASET_CRATES, ITERATING_METHODS, KEYWORDS,
};
use crate::lexer::{Token, TokenKind};

/// Closure entry points whose bodies may run on another thread (or on
/// rayon-style worker pools): float accumulation inside them is
/// merge-order-sensitive.
const PAR_ENTRYPOINTS: &[&str] = &[
    "spawn",
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_extend",
];

/// Names this file binds to an unordered map or set: fields
/// (`name: HashMap<..>`), params, and `let name = HashMap::new()`.
pub(crate) fn collect_hash_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk backwards over path segments (`std::collections::`),
        // references, and `mut` to find `name :` or `name =`.
        let mut j = i;
        while j >= 2 {
            let prev = &tokens[j - 1];
            if prev.is_punct(':') && j >= 2 && tokens[j - 2].is_punct(':') {
                // `::` path segment — skip the segment identifier too.
                j -= 3;
                continue;
            }
            if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime {
                j -= 1;
                continue;
            }
            if (prev.is_punct(':') || prev.is_punct('=')) && j >= 2 {
                let name = &tokens[j - 2];
                if name.kind == TokenKind::Ident && !KEYWORDS.contains(&name.text.as_str()) {
                    names.push(name.text.clone());
                }
            }
            break;
        }
    }
    names.sort();
    names.dedup();
    names
}

/// `nondeterministic-iteration`: in dataset crates, iterating an
/// identifier this file declares as `HashMap`/`HashSet`.
pub(crate) fn rule_nondeterministic_iteration(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !DATASET_CRATES.iter().any(|c| input.path.starts_with(c)) {
        return;
    }
    let names = collect_hash_names(tokens);
    if names.is_empty() {
        return;
    }

    // Iteration sites over those names.
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if in_spans(test_spans, t.line) {
            continue;
        }
        // name.method( where method iterates.
        if t.kind == TokenKind::Ident
            && names.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        {
            if let Some(m) = tokens.get(i + 2) {
                if m.kind == TokenKind::Ident
                    && ITERATING_METHODS.contains(&m.text.as_str())
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
                {
                    push(
                        out,
                        "nondeterministic-iteration",
                        input.path,
                        m.line,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet in a crate feeding Datasets; \
                             use BTreeMap/BTreeSet or sort before iterating",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // for x in [&mut] [self.] name {   — direct loop over the map.
        if t.is_ident("for") {
            if let Some(in_idx) =
                (i + 1..tokens.len().min(i + 24)).find(|&k| tokens[k].is_ident("in"))
            {
                let mut k = in_idx + 1;
                while tokens.get(k).is_some_and(|x| x.is_punct('&') || x.is_ident("mut")) {
                    k += 1;
                }
                // Walk a field chain (`self.a.b`): the final segment names
                // the collection being looped over.
                while tokens.get(k).map_or(false, |x| x.kind == TokenKind::Ident)
                    && tokens.get(k + 1).is_some_and(|x| x.is_punct('.'))
                    && tokens.get(k + 2).map_or(false, |x| x.kind == TokenKind::Ident)
                {
                    k += 2;
                }
                if let (Some(name), Some(next)) = (tokens.get(k), tokens.get(k + 1)) {
                    if name.kind == TokenKind::Ident
                        && names.contains(&name.text)
                        && next.is_punct('{')
                    {
                        push(
                            out,
                            "nondeterministic-iteration",
                            input.path,
                            name.line,
                            format!(
                                "`for .. in {}` iterates a HashMap/HashSet in a crate feeding \
                                 Datasets; use BTreeMap/BTreeSet or sort before iterating",
                                name.text
                            ),
                        );
                    }
                }
            }
        }
        // extend(name) — moves the map's iteration order into another table.
        if t.is_ident("extend") && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let mut k = i + 2;
            while tokens.get(k).is_some_and(|x| x.is_punct('&') || x.is_ident("mut")) {
                k += 1;
            }
            while tokens.get(k).map_or(false, |x| x.kind == TokenKind::Ident)
                && tokens.get(k + 1).is_some_and(|x| x.is_punct('.'))
                && tokens.get(k + 2).map_or(false, |x| x.kind == TokenKind::Ident)
            {
                k += 2;
            }
            if let (Some(name), Some(close)) = (tokens.get(k), tokens.get(k + 1)) {
                if name.kind == TokenKind::Ident && names.contains(&name.text) && close.is_punct(')')
                {
                    push(
                        out,
                        "nondeterministic-iteration",
                        input.path,
                        name.line,
                        format!(
                            "`extend({})` drains a HashMap/HashSet in map order into another \
                             collection; use BTreeMap/BTreeSet or sort first",
                            name.text
                        ),
                    );
                }
            }
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` outside `crates/bench`.
pub(crate) fn rule_wall_clock(input: &FileInput<'_>, tokens: &[Token], out: &mut Vec<Finding>) {
    if input.path.starts_with("crates/bench/") {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            push(
                out,
                "wall-clock",
                input.path,
                t.line,
                "`Instant::now()` reads the host clock; simulation code must use SimTime \
                 (wall-clock timing belongs in crates/bench)"
                    .to_string(),
            );
        }
        if t.is_ident("SystemTime") {
            push(
                out,
                "wall-clock",
                input.path,
                t.line,
                "`SystemTime` reads the host clock; simulation code must use SimTime".to_string(),
            );
        }
    }
}

/// `ambient-rng`: entropy-seeded randomness anywhere in the workspace.
pub(crate) fn rule_ambient_rng(input: &FileInput<'_>, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        let bad = ["thread_rng", "from_entropy", "OsRng", "ThreadRng"]
            .iter()
            .any(|b| t.is_ident(b));
        if bad {
            push(
                out,
                "ambient-rng",
                input.path,
                t.line,
                format!(
                    "`{}` draws ambient entropy; all randomness must flow from the seeded \
                     SmallRng derivation tree (simnet::rng::DetRng)",
                    t.text
                ),
            );
        }
    }
}

/// `float-accum-order`: in `analysis`/`collector`, f32/f64 `+=` (or a
/// float-turbofish `.sum()`) fed by HashMap/HashSet iteration order or
/// running inside a spawn/rayon-style closure. Float addition is not
/// associative, so the multicore merge (ROADMAP item 2) can only promise
/// byte-identical reports if every float fold runs in a pinned order —
/// BTreeMap iteration or an explicit router-ID-ordered merge.
pub(crate) fn rule_float_accum_order(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    let scoped = input.path.starts_with("crates/analysis/src/")
        || input.path.starts_with("crates/collector/src/");
    if !scoped {
        return;
    }
    let hash_names = collect_hash_names(tokens);
    let float_names = collect_float_names(tokens);

    // Token ranges whose accumulation order is not pinned: bodies of
    // `for .. in <hash name> { .. }` loops and closures handed to
    // spawn/par_* entry points.
    let mut spans: Vec<(usize, usize, &str)> = Vec::new();
    if !hash_names.is_empty() {
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("for") {
                continue;
            }
            let Some(in_idx) =
                (i + 1..tokens.len().min(i + 24)).find(|&k| tokens[k].is_ident("in"))
            else {
                continue;
            };
            // Header runs to the loop body's `{` at bracket depth 0.
            let mut open = in_idx + 1;
            let mut depth = 0i32;
            while open < tokens.len() {
                let t = &tokens[open];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('{') && depth <= 0 {
                    break;
                }
                open += 1;
            }
            let header_hits_hash = tokens[in_idx + 1..open.min(tokens.len())]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && hash_names.contains(&t.text));
            if !header_hits_hash || open >= tokens.len() {
                continue;
            }
            spans.push((open, matching_brace(tokens, open), "HashMap/HashSet iteration order"));
        }
    }
    for i in 0..tokens.len() {
        if PAR_ENTRYPOINTS.iter().any(|p| tokens[i].is_ident(p))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            spans.push((i + 1, matching_paren(tokens, i + 1), "a spawn/parallel closure"));
        }
    }

    // Accumulation sites: `name += ..` / `name[i] += ..` for a known
    // float binding inside one of those spans.
    for (idx, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !float_names.contains(&t.text)
            || in_spans(test_spans, t.line)
        {
            continue;
        }
        let mut j = idx + 1;
        if tokens.get(j).is_some_and(|n| n.is_punct('[')) {
            j = matching_bracket(tokens, j) + 1;
        }
        let is_accum = tokens.get(j).is_some_and(|a| a.is_punct('+') || a.is_punct('-'))
            && tokens.get(j + 1).is_some_and(|b| b.is_punct('='));
        if !is_accum {
            continue;
        }
        if let Some(&(_, _, why)) = spans.iter().find(|&&(a, b, _)| idx > a && idx < b) {
            push(
                out,
                "float-accum-order",
                input.path,
                t.line,
                format!(
                    "`{} +=` accumulates a float under {why}; float addition is not \
                     associative — iterate a BTreeMap or merge in router-ID order \
                     (multicore determinism, ROADMAP item 2)",
                    t.text
                ),
            );
        }
    }

    // `.sum::<f64>()` / `.sum::<f32>()` chained off a hash-named binding
    // in the same statement.
    for idx in 0..tokens.len() {
        let t = &tokens[idx];
        let float_sum = t.is_ident("sum")
            && idx > 0
            && tokens[idx - 1].is_punct('.')
            && tokens.get(idx + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(idx + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(idx + 3).is_some_and(|a| a.is_punct('<'))
            && tokens.get(idx + 4).is_some_and(|a| a.is_ident("f64") || a.is_ident("f32"));
        if !float_sum || in_spans(test_spans, t.line) {
            continue;
        }
        let stmt_start = (0..idx)
            .rev()
            .find(|&k| {
                tokens[k].is_punct(';') || tokens[k].is_punct('{') || tokens[k].is_punct('}')
            })
            .map_or(0, |k| k + 1);
        let over_hash = tokens[stmt_start..idx]
            .iter()
            .any(|x| x.kind == TokenKind::Ident && hash_names.contains(&x.text));
        if over_hash {
            push(
                out,
                "float-accum-order",
                input.path,
                t.line,
                "float `.sum()` over HashMap/HashSet iteration order; float addition is not \
                 associative — iterate a BTreeMap or sort before summing (multicore \
                 determinism, ROADMAP item 2)"
                    .to_string(),
            );
        }
    }
}

/// Names this file binds to an f32/f64 value: `let` bindings whose type
/// annotation or initializer mentions a float, plus any `name: f64`
/// field/param annotation. Over-approximate on purpose: a false "float"
/// only matters if the name is also `+=`-folded under unordered
/// iteration, which is worth a look regardless.
fn collect_float_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if (t.is_ident("f64") || t.is_ident("f32"))
            && i >= 2
            && tokens[i - 1].is_punct(':')
            && !tokens[i - 2].is_punct(':')
            && tokens[i - 2].kind == TokenKind::Ident
            && !KEYWORDS.contains(&tokens[i - 2].text.as_str())
        {
            names.push(tokens[i - 2].text.clone());
        }
        if !t.is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.is_ident("mut")) {
            j += 1;
        }
        let Some(name) = tokens.get(j) else { continue };
        if name.kind != TokenKind::Ident || KEYWORDS.contains(&name.text.as_str()) {
            continue;
        }
        // Scan the rest of the statement for float evidence: an f32/f64
        // type, a float-suffixed number, or a `N . N` literal (the lexer
        // splits `1.5` into Num '.' Num).
        let mut k = j + 1;
        let mut depth = 0i32;
        let mut is_float = false;
        while k < tokens.len() {
            let x = &tokens[k];
            if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                depth += 1;
            } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if x.is_punct(';') && depth == 0 {
                break;
            }
            is_float |= x.is_ident("f64") || x.is_ident("f32");
            is_float |= x.kind == TokenKind::Num
                && (x.text.ends_with("f64") || x.text.ends_with("f32"));
            is_float |= x.kind == TokenKind::Num
                && tokens.get(k + 1).is_some_and(|d| d.is_punct('.'))
                && tokens.get(k + 2).is_some_and(|n| n.kind == TokenKind::Num);
            k += 1;
        }
        if is_float {
            names.push(name.text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Index of the `}` matching the `{` at `open` (or `tokens.len()`).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    matching(tokens, open, '{', '}')
}

/// Index of the `)` matching the `(` at `open` (or `tokens.len()`).
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    matching(tokens, open, '(', ')')
}

/// Index of the `]` matching the `[` at `open` (or `tokens.len()`).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    matching(tokens, open, '[', ']')
}

fn matching(tokens: &[Token], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].is_punct(o) {
            depth += 1;
        } else if tokens[k].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::super::test_util::scan;

    #[test]
    fn hashmap_iteration_flagged_in_dataset_crate() {
        let src = "
            use std::collections::HashMap;
            struct S { leases: HashMap<u32, u32> }
            impl S {
                fn count(&self) -> usize { self.leases.values().count() }
            }";
        let f = scan("crates/simnet/src/dhcp.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondeterministic-iteration");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn hashmap_iteration_ignored_outside_dataset_crates() {
        let src = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u32>) { for x in m { drop(x); } }";
        assert!(scan("crates/analysis/src/usage.rs", src).is_empty());
    }

    #[test]
    fn for_loop_and_extend_flagged() {
        let src = "
            use std::collections::HashMap;
            fn f(seen: HashMap<u32, u32>, out: &mut Vec<(u32, u32)>) {
                for pair in &seen {
                    drop(pair);
                }
                out.extend(seen);
            }";
        let f = scan("crates/collector/src/server.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "nondeterministic-iteration"));
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "
            use std::collections::BTreeMap;
            struct S { leases: BTreeMap<u32, u32> }
            impl S {
                fn count(&self) -> usize { self.leases.values().count() }
            }";
        assert!(scan("crates/simnet/src/dhcp.rs", src).is_empty());
    }

    #[test]
    fn iteration_in_cfg_test_module_exempt() {
        let src = "
            use std::collections::HashMap;
            fn decl(m: HashMap<u32, u32>) -> usize { m.len() }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let counts: HashMap<u32, u32> = HashMap::new();
                    for x in counts.values() { drop(x); }
                }
            }";
        assert!(scan("crates/household/src/devices.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(scan("crates/bench/src/bin/e2e.rs", src).is_empty(), "bench crate exempt");
    }

    #[test]
    fn ambient_rng_flagged_everywhere_even_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }";
        for path in ["crates/simnet/src/rng.rs", "crates/simnet/tests/properties.rs"] {
            let f = scan(path, src);
            assert_eq!(f.len(), 1, "{path}");
            assert_eq!(f[0].rule, "ambient-rng");
        }
    }

    #[test]
    fn rng_names_inside_strings_not_flagged() {
        let src = r#"fn f() { let s = "thread_rng"; }"#;
        assert!(scan("crates/simnet/src/rng.rs", src).is_empty());
    }

    #[test]
    fn float_accum_in_hash_loop_flagged() {
        // The exact shape of analysis::usage::fig13 before this PR: hourly
        // f64 sums folded in per_scan's HashMap order.
        let src = "
            use std::collections::HashMap;
            fn f(per_scan: HashMap<u32, u32>) -> [f64; 24] {
                let mut sums = [0.0f64; 24];
                for (k, v) in per_scan {
                    sums[(k % 24) as usize] += f64::from(v);
                }
                sums
            }";
        let f = scan("crates/analysis/src/usage.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-accum-order");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn float_accum_over_btreemap_not_flagged() {
        let src = "
            use std::collections::BTreeMap;
            fn f(per_scan: BTreeMap<u32, u32>) -> f64 {
                let mut total = 0.0;
                for (_, v) in per_scan {
                    total += f64::from(v);
                }
                total
            }";
        assert!(scan("crates/analysis/src/usage.rs", src).is_empty());
    }

    #[test]
    fn integer_accum_in_hash_loop_not_flagged_by_float_rule() {
        let src = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u64>) -> u64 {
                let mut total = 0u64;
                for (_, v) in &m {
                    total += v;
                }
                total
            }";
        let f = scan("crates/analysis/src/usage.rs", src);
        assert!(f.iter().all(|x| x.rule != "float-accum-order"), "{f:?}");
    }

    #[test]
    fn float_accum_in_spawn_closure_flagged() {
        let src = "
            fn f(parts: &[f64]) -> f64 {
                let mut total: f64 = 0.0;
                std::thread::scope(|s| {
                    s.spawn(|| {
                        for p in parts {
                            total += p;
                        }
                    });
                });
                total
            }";
        let f = scan("crates/analysis/src/report.rs", src);
        // The bare `spawn` also trips shared-state here; this test cares
        // only about the float rule.
        let floats: Vec<_> = f.iter().filter(|x| x.rule == "float-accum-order").collect();
        assert_eq!(floats.len(), 1, "{f:?}");
        assert!(floats[0].message.contains("spawn"), "{}", floats[0].message);
    }

    #[test]
    fn float_sum_turbofish_over_hash_flagged() {
        let src = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, f64>) -> f64 {
                let total = m.values().map(|v| v * 2.0).sum::<f64>();
                total
            }";
        let f = scan("crates/analysis/src/latency.rs", src);
        assert!(f.iter().any(|x| x.rule == "float-accum-order"), "{f:?}");
    }

    #[test]
    fn float_rule_scoped_to_analysis_and_collector() {
        let src = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u32>) -> f64 {
                let mut total = 0.0;
                for (_, v) in m {
                    total += f64::from(v);
                }
                total
            }";
        assert!(scan("crates/bench/src/lib.rs", src).is_empty());
        // collector is also a dataset crate, so the same loop trips the
        // iteration rule; the float rule must fire alongside it.
        let f = scan("crates/collector/src/windows.rs", src);
        assert!(f.iter().any(|x| x.rule == "float-accum-order"), "{f:?}");
    }
}
