//! Hot-path family: functions in `simlint-hotpaths.txt` are
//! allocation-free (`hot-path-alloc`), and so is everything they reach
//! through the intra-crate call graph (`hot-path-transitive`) — the
//! static complement of the counting-allocator tests in
//! `crates/firmware/tests/alloc.rs`. The transitive rule closes the
//! helper-extraction loophole: moving an allocation out of a manifest
//! function into a private callee no longer launders it.

use super::{in_spans, push, FileInput, Finding};
use crate::lexer::Token;

/// Find every non-test body of `fn <func>` in the file and hand its
/// token range to `visit`. Returns false when no such fn exists (a
/// bodyless trait method does not count — there is nothing to scan).
pub(crate) fn for_each_fn_body(
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    func: &str,
    mut visit: impl FnMut(usize, usize),
) -> bool {
    let mut found = false;
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_ident("fn")
            && tokens[i + 1].is_ident(func)
            && !in_spans(test_spans, tokens[i].line))
        {
            i += 1;
            continue;
        }
        found = true;
        // Find the body: first `{` after the signature. A `;` ends a
        // bodyless trait method — but only at bracket depth 0, since
        // array types in the signature (`[u8; LEN]`) also contain `;`.
        let mut j = i + 2;
        let mut bracket_depth = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') || t.is_punct('(') {
                bracket_depth += 1;
            } else if t.is_punct(']') || t.is_punct(')') {
                bracket_depth -= 1;
            } else if t.is_punct('{') || (t.is_punct(';') && bracket_depth == 0) {
                break;
            }
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            i = j;
            continue; // trait method without body
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                depth += 1;
            } else if tokens[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        visit(j, k.min(tokens.len()));
        i = k.max(i + 1);
    }
    found
}

/// `hot-path-alloc`: allocation constructors inside manifest functions.
pub(crate) fn rule_hot_path_alloc(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for hp in input.hotpaths {
        let context = format!(
            "inside hot-path fn `{}` (pinned allocation-free by \
             crates/firmware/tests/alloc.rs and simlint-hotpaths.txt)",
            hp.func
        );
        let found = for_each_fn_body(tokens, test_spans, &hp.func, |start, end| {
            scan_alloc_sites(input, tokens, start, end, "hot-path-alloc", &context, out);
        });
        if !found {
            push(
                out,
                "hot-path-alloc",
                input.path,
                1,
                format!(
                    "hot-path manifest names `{}::{}` but no such fn exists; update \
                     simlint-hotpaths.txt",
                    hp.path, hp.func
                ),
            );
        }
    }
}

/// `hot-path-transitive`: the same allocation scan, applied to functions
/// the workspace call graph reaches from manifest entries. No stale-entry
/// arm — the set is derived from the graph, so it cannot rot.
pub(crate) fn rule_hot_path_transitive(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for th in input.transitive.iter().filter(|t| t.file == input.path) {
        let context = format!(
            "inside `{}`, which the call graph reaches from the hot-path manifest \
             (`{}`); callees of hot functions inherit the no-alloc rule",
            th.func, th.via
        );
        for_each_fn_body(tokens, test_spans, &th.func, |start, end| {
            scan_alloc_sites(input, tokens, start, end, "hot-path-transitive", &context, out);
        });
    }
}

fn scan_alloc_sites(
    input: &FileInput<'_>,
    tokens: &[Token],
    start: usize,
    end: usize,
    rule: &str,
    context: &str,
    out: &mut Vec<Finding>,
) {
    for i in start..end {
        let t = &tokens[i];
        let msg = |what: &str| format!("`{what}` allocates {context}");
        // Vec::new, Vec::with_capacity, String::new/from, Box::new.
        if ["Vec", "String", "Box"].iter().any(|s| t.is_ident(s))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
        {
            if let Some(m) = tokens.get(i + 3) {
                if ["new", "with_capacity", "from"].iter().any(|s| m.is_ident(s)) {
                    push(out, rule, input.path, t.line, msg(&format!("{}::{}", t.text, m.text)));
                }
            }
        }
        // vec! / format! macros.
        if (t.is_ident("vec") || t.is_ident("format"))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct('!'))
        {
            push(out, rule, input.path, t.line, msg(&format!("{}!", t.text)));
        }
        // .to_vec() .to_string() .to_owned() .clone() .collect()
        if i > 0
            && tokens[i - 1].is_punct('.')
            && ["to_vec", "to_string", "to_owned", "clone", "collect"]
                .iter()
                .any(|s| t.is_ident(s))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct('(') || a.is_punct(':'))
        {
            push(out, rule, input.path, t.line, msg(&format!(".{}()", t.text)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{scan_file, FileInput, Finding, HotPathFn};
    use crate::graph::TransitiveHot;

    fn scan_hot(path: &str, source: &str, func: &str) -> Vec<Finding> {
        let hp = vec![HotPathFn { path: path.to_string(), func: func.to_string() }];
        scan_file(&FileInput { path, source, hotpaths: &hp, ..FileInput::default() }).findings
    }

    fn scan_transitive(path: &str, source: &str, func: &str, via: &str) -> Vec<Finding> {
        let th = vec![TransitiveHot {
            file: path.to_string(),
            func: func.to_string(),
            via: via.to_string(),
        }];
        scan_file(&FileInput { path, source, transitive: &th, ..FileInput::default() }).findings
    }

    #[test]
    fn hot_path_alloc_flags_constructors() {
        let src = "
            impl H {
                pub fn emit_into(&self, out: &mut [u8]) {
                    let tmp = Vec::new();
                    let s = format!(\"{}\", 1);
                    let c = self.name.clone();
                }
                pub fn cold(&self) -> Vec<u8> { self.bytes.to_vec() }
            }";
        let f = scan_hot("crates/firmware/src/heartbeat.rs", src, "emit_into");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "hot-path-alloc"));
        assert!(f.iter().all(|x| (4..=6).contains(&x.line)), "cold fn not scanned: {f:?}");
    }

    #[test]
    fn hot_path_fn_with_array_type_in_signature_is_scanned() {
        // `[u8; LEN]` puts a `;` inside the signature; it must not be
        // mistaken for a bodyless trait method (the real `emit_into`
        // signatures all take fixed-size output buffers).
        let src = "
            impl H {
                pub fn emit_into(&self, out: &mut [u8; Self::WIRE_LEN]) {
                    let tmp = Vec::new();
                }
            }";
        let f = scan_hot("crates/firmware/src/heartbeat.rs", src, "emit_into");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-alloc");
        let trait_src = "trait T { fn emit_into(&self, out: &mut [u8; 4]) -> [u8; 2]; }";
        assert!(scan_hot("crates/firmware/src/heartbeat.rs", trait_src, "emit_into").is_empty());
    }

    #[test]
    fn hot_path_stale_manifest_entry_is_a_finding() {
        let f = scan_hot("crates/firmware/src/heartbeat.rs", "fn other() {}", "emit_into");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert!(f[0].message.contains("no such fn"));
    }

    #[test]
    fn transitive_callee_inherits_no_alloc() {
        let src = "
            fn helper(n: usize) -> Vec<u8> {
                let v = Vec::with_capacity(n);
                v
            }";
        let f = scan_transitive("crates/collector/src/spill.rs", src, "helper", "append → helper");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-transitive");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("append → helper"), "{}", f[0].message);
    }

    #[test]
    fn transitive_scan_ignores_other_files_and_other_fns() {
        let src = "fn innocent() { let v = vec![1]; }";
        let f = scan_transitive("crates/collector/src/spill.rs", src, "helper", "append → helper");
        assert!(f.is_empty(), "{f:?}");
        let th = vec![TransitiveHot {
            file: "crates/collector/src/columns.rs".to_string(),
            func: "innocent".to_string(),
            via: "append → innocent".to_string(),
        }];
        let scanned = scan_file(&FileInput {
            path: "crates/collector/src/spill.rs",
            source: src,
            transitive: &th,
            ..FileInput::default()
        });
        assert!(scanned.findings.is_empty(), "wrong file: {:?}", scanned.findings);
    }
}
