//! Pass 1 of the two-pass analyzer: the workspace symbol graph.
//!
//! The graph has three layers, all built without `syn` from the same
//! token streams the rules consume:
//!
//! * **crate dependency edges** — parsed from each member's
//!   `Cargo.toml` `[dependencies]` section (workspace-internal entries
//!   only, with the line they were declared on, so layering findings
//!   point at the declaration);
//! * **per-crate symbol references** — every identifier a crate's
//!   sources mention that names another workspace crate's library, used
//!   to catch declared-but-unreferenced dependency edges;
//! * **an intra-crate call graph** — `fn` definitions with their body
//!   spans, plus call sites resolved by name (free calls resolve across
//!   the crate, `.method(...)` calls resolve within the same file,
//!   `Type::assoc(...)` calls resolve when `Type` is declared in the
//!   crate). The hot-path-transitive rule walks this graph so a helper
//!   extracted out of a manifest-listed hot function inherits the
//!   no-alloc obligation instead of laundering it.
//!
//! Resolution is deliberately name-based and over-approximate: with no
//! type information, a call may resolve to several same-named functions
//! and every one is treated as reachable. That errs toward flagging —
//! the suppression mechanism absorbs the rare false positive — and
//! never toward silently missing a real edge. Everything is stored in
//! `BTreeMap`/sorted `Vec`s so two builds over the same sources produce
//! byte-identical edge lists (pinned by a proptest in `tests/fuzz.rs`).

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{test_spans, HotPathFn, KEYWORDS};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

/// One workspace-internal dependency declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Package name as written in `[dependencies]` (e.g. `bismark-core`).
    pub to: String,
    /// 1-based line in the consumer's `Cargo.toml`.
    pub line: u32,
}

/// One `fn` definition found in a crate's sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Workspace-relative file path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallStyle {
    /// `helper(...)` — resolved against every fn in the crate.
    Free,
    /// `.helper(...)` — resolved against fns in the same file only.
    Method,
    /// `Type::helper(...)` — resolved when `Type` is declared in-crate.
    Qualified(String),
}

/// One call site, attributed to the innermost enclosing `fn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Index into [`CrateGraph::fns`] of the calling function.
    pub caller: usize,
    /// Callee name as written.
    pub callee: String,
    /// Resolution style.
    pub style: CallStyle,
    /// 1-based line of the call.
    pub line: u32,
}

/// Everything pass 1 knows about one workspace member.
#[derive(Debug, Default, Clone)]
pub struct CrateGraph {
    /// Package name from `[package] name`.
    pub package: String,
    /// Library name code refers to (differs for `bismark-core` → `bismark`).
    pub lib_name: String,
    /// Crate directory, workspace-relative (`crates/analysis`).
    pub dir: String,
    /// Workspace-internal `[dependencies]` edges.
    pub deps: Vec<DepEdge>,
    /// Functions defined in the crate's sources (test code excluded).
    pub fns: Vec<FnDef>,
    /// Call sites attributed to those functions.
    pub calls: Vec<Call>,
    /// Type names (`struct`/`enum`/`union`/`type`) declared in the crate.
    pub types: BTreeSet<String>,
    /// Workspace lib names referenced anywhere in the crate's files
    /// (including tests/benches: a dev-only use still justifies the edge).
    pub refs: BTreeSet<String>,
}

/// The pass-1 output: every member crate, keyed by directory.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// `crates/<name>` → its graph.
    pub crates: BTreeMap<String, CrateGraph>,
}

/// A function the hot-path rule must scan because the call graph reaches
/// it from a manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitiveHot {
    /// Workspace-relative file holding the function.
    pub file: String,
    /// Function name.
    pub func: String,
    /// Human-readable chain from the manifest root (`append → seal`).
    pub via: String,
}

impl SymbolGraph {
    /// Build the graph from pre-read sources (`(workspace-relative path,
    /// source text)`) plus the members' `Cargo.toml`s under `root`.
    /// Never panics, whatever the sources contain.
    pub fn build(root: &Path, sources: &[(String, String)]) -> io::Result<SymbolGraph> {
        let mut members = Vec::new();

        // Crate manifests first: they define the member set.
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            dirs.sort();
            for dir in dirs {
                let manifest = fs::read_to_string(dir.join("Cargo.toml"))?;
                let dir_name = dir.file_name().map(|n| n.to_string_lossy().into_owned());
                let Some(dir_name) = dir_name else { continue };
                let mut cg = parse_manifest(&manifest);
                cg.dir = format!("crates/{dir_name}");
                members.push(cg);
            }
        }
        Ok(Self::assemble(members, sources))
    }

    /// Assemble the graph from already-known member crates (each with
    /// `package`, `lib_name`, `dir`, and raw `deps` set) and sources.
    /// Split out from [`SymbolGraph::build`] so property tests can drive
    /// the source pass on arbitrary bytes without manifests on disk.
    pub fn assemble(members: Vec<CrateGraph>, sources: &[(String, String)]) -> SymbolGraph {
        let mut graph = SymbolGraph::default();
        for cg in members {
            graph.crates.insert(cg.dir.clone(), cg);
        }
        // Only workspace-internal dependency edges stay on the graph.
        let packages: BTreeSet<String> =
            graph.crates.values().map(|c| c.package.clone()).collect();
        let lib_names: BTreeSet<String> =
            graph.crates.values().map(|c| c.lib_name.clone()).collect();
        for cg in graph.crates.values_mut() {
            cg.deps.retain(|d| packages.contains(&d.to));
        }

        // Source pass: fn defs, calls, type decls, crate references.
        for (path, source) in sources {
            let Some(dir) = crate_dir_of(path) else { continue };
            let Some(cg) = graph.crates.get_mut(&dir) else { continue };
            let lexed = lex(source);
            for t in &lexed.tokens {
                if t.kind == TokenKind::Ident && lib_names.contains(&t.text) {
                    cg.refs.insert(t.text.clone());
                }
            }
            // Only shipping sources feed the call graph: test/bench files
            // exercise helpers but never put them on a hot path.
            if !path.contains("/src/") {
                continue;
            }
            let spans = test_spans(&lexed.tokens);
            collect_types(&lexed.tokens, &mut cg.types);
            collect_fns_and_calls(path, &lexed.tokens, &spans, cg);
        }
        graph
    }

    /// Compute the set of functions reachable from the hot-path manifest
    /// through intra-crate calls, excluding functions the manifest
    /// already lists for their own file (those are scanned directly).
    /// Deterministic: BFS in sorted order, first chain found wins.
    pub fn transitive_hot(&self, manifest: &[HotPathFn]) -> Vec<TransitiveHot> {
        let listed: BTreeSet<(&str, &str)> =
            manifest.iter().map(|h| (h.path.as_str(), h.func.as_str())).collect();
        let mut out: BTreeMap<(String, String), String> = BTreeMap::new();
        for cg in self.crates.values() {
            // Seeds: manifest entries defined in this crate.
            let mut queue: Vec<(usize, String)> = Vec::new();
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for (i, f) in cg.fns.iter().enumerate() {
                if listed.contains(&(f.file.as_str(), f.name.as_str())) {
                    seen.insert(i);
                    queue.push((i, f.name.clone()));
                }
            }
            let mut head = 0usize;
            while head < queue.len() {
                let (caller, chain) = queue[head].clone();
                head += 1;
                for call in cg.calls.iter().filter(|c| c.caller == caller) {
                    for target in resolve(cg, call) {
                        if seen.insert(target) {
                            let f = &cg.fns[target];
                            let chain = format!("{chain} → {}", f.name);
                            if !listed.contains(&(f.file.as_str(), f.name.as_str())) {
                                out.entry((f.file.clone(), f.name.clone()))
                                    .or_insert_with(|| chain.clone());
                            }
                            queue.push((target, chain));
                        }
                    }
                }
            }
        }
        out.into_iter()
            .map(|((file, func), via)| TransitiveHot { file, func, via })
            .collect()
    }
}

/// Resolve one call site to candidate fn indices, per [`CallStyle`].
fn resolve(cg: &CrateGraph, call: &Call) -> Vec<usize> {
    let caller_file = &cg.fns[call.caller].file;
    cg.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == call.callee)
        .filter(|(_, f)| match &call.style {
            CallStyle::Free => true,
            CallStyle::Method => f.file == *caller_file,
            CallStyle::Qualified(q) => {
                q == "Self" && f.file == *caller_file || cg.types.contains(q)
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// The crate directory (`crates/<name>`) a workspace-relative path
/// belongs to, if any. Root-level `tests/` and `examples/` are
/// bismark-core's `[[test]]`/`[[example]]` targets, so their symbol
/// references count toward that crate's dependency edges.
fn crate_dir_of(path: &str) -> Option<String> {
    if path.starts_with("tests/") || path.starts_with("examples/") {
        return Some("crates/core".to_string());
    }
    let rest = path.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(format!("crates/{name}"))
}

/// Minimal `Cargo.toml` reader: `[package] name`, optional `[lib] name`,
/// and the `[dependencies]` table (keys + their lines). Section-aware and
/// line-based; this is enough for manifests this workspace writes.
fn parse_manifest(text: &str) -> CrateGraph {
    let mut cg = CrateGraph::default();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        match section.as_str() {
            "package" if key == "name" => {
                cg.package = value.trim().trim_matches('"').to_string();
            }
            "lib" if key == "name" => {
                cg.lib_name = value.trim().trim_matches('"').to_string();
            }
            "dependencies" => {
                // `obs.workspace = true` or `obs = { workspace = true }`.
                let name = key.split('.').next().unwrap_or(key).trim();
                if !name.is_empty() {
                    cg.deps.push(DepEdge { to: name.to_string(), line: (i + 1) as u32 });
                }
            }
            _ => {}
        }
    }
    if cg.lib_name.is_empty() {
        // Cargo's default: package name with dashes mapped to underscores.
        cg.lib_name = cg.package.replace('-', "_");
    }
    cg
}

/// Record declared type names (resolution targets for `Type::fn` calls).
fn collect_types(tokens: &[Token], out: &mut BTreeSet<String>) {
    for (i, t) in tokens.iter().enumerate() {
        if (t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") || t.is_ident("type"))
            && tokens.get(i + 1).is_some_and(|n| {
                n.kind == TokenKind::Ident && !KEYWORDS.contains(&n.text.as_str())
            })
        {
            out.insert(tokens[i + 1].text.clone());
        }
    }
}

/// Find every production `fn` with a body, then attribute each call site
/// in the file to the innermost enclosing definition.
fn collect_fns_and_calls(path: &str, tokens: &[Token], spans: &[(u32, u32)], cg: &mut CrateGraph) {
    let in_test = |line: u32| spans.iter().any(|&(a, b)| line >= a && line <= b);

    // Definitions with token-index body ranges (local to this file).
    let mut bodies: Vec<(usize, usize, usize)> = Vec::new(); // (fn idx in cg.fns, start, end)
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_ident("fn")
            && tokens[i + 1].kind == TokenKind::Ident
            && !in_test(tokens[i].line))
        {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i].line;
        // Find the body `{` (or `;` for trait methods) — `;` only counts
        // at bracket depth 0 so `[u8; N]` in the signature is skipped.
        let mut j = i + 2;
        let mut depth = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(']') || t.is_punct(')') {
                depth -= 1;
            } else if t.is_punct('{') || (t.is_punct(';') && depth <= 0) {
                break;
            }
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            i = j.max(i + 1); // bodyless trait method
            continue;
        }
        let open = j;
        let mut brace = 0i32;
        let mut k = open;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                brace += 1;
            } else if tokens[k].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            k += 1;
        }
        cg.fns.push(FnDef { file: path.to_string(), name, line });
        bodies.push((cg.fns.len() - 1, open, k.min(tokens.len())));
        // Continue INSIDE the body: nested fns are definitions too.
        i += 2;
    }

    // Call sites: `name(` — method after `.`, qualified after `::`,
    // otherwise free. Attributed to the innermost enclosing body.
    for idx in 0..tokens.len() {
        let t = &tokens[idx];
        if t.kind != TokenKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || !tokens.get(idx + 1).is_some_and(|n| n.is_punct('('))
            || idx > 0 && tokens[idx - 1].is_ident("fn")
            || in_test(t.line)
        {
            continue;
        }
        let style = if idx > 0 && tokens[idx - 1].is_punct('.') {
            CallStyle::Method
        } else if idx >= 3
            && tokens[idx - 1].is_punct(':')
            && tokens[idx - 2].is_punct(':')
            && tokens[idx - 3].kind == TokenKind::Ident
        {
            CallStyle::Qualified(tokens[idx - 3].text.clone())
        } else {
            CallStyle::Free
        };
        // Innermost enclosing fn body (smallest containing range).
        let caller = bodies
            .iter()
            .filter(|&&(_, open, close)| idx > open && idx < close)
            .min_by_key(|&&(_, open, close)| close - open)
            .map(|&(fn_idx, _, _)| fn_idx);
        if let Some(caller) = caller {
            cg.calls.push(Call { caller, callee: t.text.clone(), style, line: t.line });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> SymbolGraph {
        let sources: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        // No Cargo.tomls on disk: build the member entries by hand.
        let mut members: Vec<CrateGraph> = Vec::new();
        for (p, _) in files {
            if let Some(dir) = crate_dir_of(p) {
                if members.iter().all(|m| m.dir != dir) {
                    members.push(CrateGraph {
                        package: dir.trim_start_matches("crates/").to_string(),
                        lib_name: dir.trim_start_matches("crates/").to_string(),
                        dir,
                        ..CrateGraph::default()
                    });
                }
            }
        }
        SymbolGraph::assemble(members, &sources)
    }

    fn hot(path: &str, func: &str) -> HotPathFn {
        HotPathFn { path: path.to_string(), func: func.to_string() }
    }

    #[test]
    fn manifest_parsing_reads_package_lib_and_deps() {
        let cg = parse_manifest(
            "[package]\nname = \"bismark-core\"\n[lib]\nname = \"bismark\"\n\
             [dependencies]\nobs.workspace = true\nsimnet = { workspace = true }\n\
             [dev-dependencies]\nproptest.workspace = true\n",
        );
        assert_eq!(cg.package, "bismark-core");
        assert_eq!(cg.lib_name, "bismark");
        assert_eq!(
            cg.deps,
            vec![DepEdge { to: "obs".into(), line: 6 }, DepEdge { to: "simnet".into(), line: 7 }]
        );
    }

    #[test]
    fn lib_name_defaults_to_underscored_package() {
        let cg = parse_manifest("[package]\nname = \"bismark-core\"\n");
        assert_eq!(cg.lib_name, "bismark_core");
    }

    #[test]
    fn free_call_reaches_helper_across_files_in_crate() {
        let g = graph_of(&[
            ("crates/x/src/a.rs", "pub fn hot() { helper(1); }"),
            ("crates/x/src/b.rs", "pub fn helper(n: u32) { drop(n); }"),
        ]);
        let reached = g.transitive_hot(&[hot("crates/x/src/a.rs", "hot")]);
        assert_eq!(reached.len(), 1, "{reached:?}");
        assert_eq!(reached[0].file, "crates/x/src/b.rs");
        assert_eq!(reached[0].func, "helper");
        assert_eq!(reached[0].via, "hot → helper");
    }

    #[test]
    fn method_call_resolves_within_same_file_only() {
        let g = graph_of(&[
            ("crates/x/src/a.rs", "impl S { fn hot(&self) { self.step(); } fn step(&self) {} }"),
            ("crates/x/src/b.rs", "impl T { fn step(&self) { alloc(); } }"),
        ]);
        let reached = g.transitive_hot(&[hot("crates/x/src/a.rs", "hot")]);
        assert_eq!(reached.len(), 1, "{reached:?}");
        assert_eq!(reached[0].file, "crates/x/src/a.rs", "other file's step not reached");
    }

    #[test]
    fn qualified_call_resolves_only_for_crate_declared_types() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "struct S; impl S { fn new() -> S { S } }\n\
             fn hot() { let _a = S::new(); let _b = Vec::new(); }",
        )]);
        let reached = g.transitive_hot(&[hot("crates/x/src/a.rs", "hot")]);
        assert_eq!(reached.len(), 1, "{reached:?}");
        assert_eq!(reached[0].func, "new");
    }

    #[test]
    fn chains_are_transitive_and_manifest_entries_excluded() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn hot() { mid(); } fn mid() { deep(); } fn deep() {}",
        )]);
        let reached = g.transitive_hot(&[hot("crates/x/src/a.rs", "hot")]);
        let names: Vec<&str> = reached.iter().map(|t| t.func.as_str()).collect();
        assert_eq!(names, vec!["deep", "mid"]);
        let deep = reached.iter().find(|t| t.func == "deep").unwrap();
        assert_eq!(deep.via, "hot → mid → deep");
    }

    #[test]
    fn calls_inside_test_modules_do_not_create_edges() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn hot() {}\nfn helper() {}\n#[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}",
        )]);
        let reached = g.transitive_hot(&[hot("crates/x/src/a.rs", "hot")]);
        assert!(reached.is_empty(), "{reached:?}");
    }

    #[test]
    fn macro_names_and_keywords_are_not_calls() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn hot(x: bool) { if (x) {} assert!(x); matches(); } fn matches() {}",
        )]);
        let cg = &g.crates["crates/x"];
        let callees: Vec<&str> = cg.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["matches"], "{callees:?}");
    }
}
