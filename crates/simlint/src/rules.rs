//! The rule catalog and the scanning engine for one file.
//!
//! Every rule enforces an invariant the reproduction's determinism or
//! performance story depends on (see DESIGN.md, "Static invariants &
//! simlint"):
//!
//! * `nondeterministic-iteration` — iterating a `HashMap`/`HashSet` in a
//!   crate whose output reaches `Datasets` can leak instance-dependent
//!   order into seeded studies.
//! * `wall-clock` — `Instant::now`/`SystemTime` outside `crates/bench`
//!   would couple simulation output to the host clock.
//! * `ambient-rng` — `thread_rng`/`from_entropy`/`OsRng` bypass the
//!   seeded `SmallRng` derivation tree.
//! * `panic-in-ingest` — `unwrap`/`expect`/`panic!`/slice indexing on the
//!   collector ingest/export paths and the firmware uploader, which must
//!   degrade into typed errors or gap declarations, never a crash.
//! * `hot-path-alloc` — allocation constructors inside functions listed in
//!   the hot-path manifest (`simlint-hotpaths.txt`), the static complement
//!   of the counting-allocator tests in `crates/firmware/tests/alloc.rs`.
//!
//! Matching is token-level and per-file: there is no type inference, so
//! the `HashMap` rule keys off declarations it can see in the same file.
//! That trades a few heuristic misses for zero dependencies; the
//! suppression mechanism absorbs deliberate exceptions.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// Rule identifiers, as written inside `allow(...)`.
pub const RULES: &[&str] = &[
    "nondeterministic-iteration",
    "wall-clock",
    "ambient-rng",
    "panic-in-ingest",
    "hot-path-alloc",
];

/// Crates whose emitted records reach `Datasets` (the determinism
/// boundary): unordered iteration inside them is a finding.
const DATASET_CRATES: &[&str] = &[
    "crates/obs/src/",
    "crates/simnet/src/",
    "crates/household/src/",
    "crates/firmware/src/",
    "crates/collector/src/",
    "crates/cgn/src/",
    "crates/core/src/",
];

/// Files making up the idempotent ingest / reliable upload path. The
/// spill module is included because segment I/O runs underneath ingestion:
/// a disk error must surface as a `Result` (degrading to in-memory), never
/// as a panic that takes the collector down mid-study.
const INGEST_FILES: &[&str] = &[
    "crates/collector/src/server.rs",
    "crates/collector/src/export.rs",
    "crates/collector/src/spill.rs",
    "crates/firmware/src/uploader.rs",
];

/// Map methods whose iteration order is the map's internal order.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Words that look like identifiers to the lexer but can never name a
/// local map binding (used to reject `let [a, b] = ...` as indexing).
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while",
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`], or the meta rules
    /// `unjustified-suppression` / `unused-suppression`).
    pub rule: String,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub message: String,
}

/// A parsed `// simlint: allow(rule, ...) — justification` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment ends on (it applies to this line and the next).
    pub line: u32,
    /// Rules it names.
    pub rules: Vec<String>,
    /// Whether non-empty justification text follows the rule list.
    pub justified: bool,
}

/// An entry of the hot-path manifest: `path::function`.
#[derive(Debug, Clone)]
pub struct HotPathFn {
    /// Workspace-relative file path.
    pub path: String,
    /// Function name.
    pub func: String,
}

/// Parse the manifest format: one `path::function` per line, `#` comments.
pub fn parse_hotpaths(text: &str) -> Vec<HotPathFn> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, func) = l.rsplit_once("::")?;
            Some(HotPathFn { path: path.trim().to_string(), func: func.trim().to_string() })
        })
        .collect()
}

/// Extract suppressions from comments. Doc comments (`///`, `//!`) are
/// documentation, not directives: mentioning the suppression syntax in
/// rustdoc must not create one.
pub fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let Some(pos) = c.text.find("simlint:") else { continue };
        let rest = c.text[pos + "simlint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim();
        out.push(Suppression { line: c.end_line, rules, justified: !tail.is_empty() });
    }
    out
}

/// Inclusive line ranges of `#[cfg(test)]`-gated items (plus, the caller
/// may treat whole files under `tests/`, `benches/`, `examples/` as test
/// code). Findings are not raised inside test code: tests may unwrap and
/// iterate freely, their output never reaches a dataset.
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 5 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip to the attribute's closing bracket.
        let mut j = i + 2;
        let mut bracket_depth = 1i32;
        while j < tokens.len() && bracket_depth > 0 {
            if tokens[j].is_punct('[') {
                bracket_depth += 1;
            } else if tokens[j].is_punct(']') {
                bracket_depth -= 1;
            }
            j += 1;
        }
        // The gated item: find its body (first `{` before any `;`) and the
        // matching close brace.
        let mut body_start = None;
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                break; // item without a body (e.g. a gated `use`)
            }
            if tokens[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            j += 1;
        }
        if let Some(open) = body_start {
            let mut depth = 0i32;
            let mut k = open;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let end_line = tokens.get(k).or_else(|| tokens.last()).map_or(start_line, |t| t.line);
            spans.push((start_line, end_line));
            i = k.max(i + 1);
        } else {
            i = j.max(i + 1);
        }
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Everything the rules need to scan one file.
pub struct FileInput<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Source text.
    pub source: &'a str,
    /// Hot-path manifest entries for this file.
    pub hotpaths: &'a [HotPathFn],
}

/// Result of scanning one file.
pub struct FileScan {
    /// Findings that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by justified suppressions.
    pub suppressed: usize,
}

/// Scan one file: lex, run every applicable rule, then apply suppressions.
pub fn scan_file(input: &FileInput<'_>) -> FileScan {
    let lexed = lex(input.source);
    let suppressions = parse_suppressions(&lexed.comments);
    let is_test_file = input.path.contains("/tests/")
        || input.path.contains("/benches/")
        || input.path.starts_with("tests/")
        || input.path.starts_with("examples/");
    let spans = if is_test_file {
        vec![(0, u32::MAX)]
    } else {
        test_spans(&lexed.tokens)
    };

    let mut raw = Vec::new();
    rule_nondeterministic_iteration(input, &lexed.tokens, &spans, &mut raw);
    rule_wall_clock(input, &lexed.tokens, &mut raw);
    rule_ambient_rng(input, &lexed.tokens, &mut raw);
    rule_panic_in_ingest(input, &lexed.tokens, &spans, &mut raw);
    rule_hot_path_alloc(input, &lexed.tokens, &spans, &mut raw);

    apply_suppressions(input.path, raw, &suppressions)
}

/// Filter findings through suppressions; flag unjustified and unused ones.
fn apply_suppressions(
    path: &str,
    raw: Vec<Finding>,
    suppressions: &[Suppression],
) -> FileScan {
    let mut used = vec![false; suppressions.len()];
    let mut unjustified: Vec<usize> = Vec::new();
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        // Prefer a same-line suppression over a line-above one: when both
        // exist (adjacent suppressed lines), each must pair with its own
        // finding or the same-line one is falsely reported as unused.
        let names_rule =
            |s: &&Suppression| s.rules.iter().any(|r| *r == f.rule);
        let hit = suppressions
            .iter()
            .enumerate()
            .find(|(_, s)| s.line == f.line && names_rule(s))
            .or_else(|| {
                suppressions
                    .iter()
                    .enumerate()
                    .find(|(_, s)| s.line + 1 == f.line && names_rule(s))
            });
        match hit {
            Some((idx, s)) => {
                used[idx] = true;
                if s.justified {
                    suppressed += 1;
                } else {
                    unjustified.push(idx);
                }
            }
            None => findings.push(f),
        }
    }
    for idx in unjustified {
        let s = &suppressions[idx];
        findings.push(Finding {
            rule: "unjustified-suppression".to_string(),
            path: path.to_string(),
            line: s.line,
            message: format!(
                "suppression for `{}` has no justification; write `// simlint: allow({}) — <why>`",
                s.rules.join(", "),
                s.rules.join(", "),
            ),
        });
    }
    for (idx, s) in suppressions.iter().enumerate() {
        if !used[idx] {
            findings.push(Finding {
                rule: "unused-suppression".to_string(),
                path: path.to_string(),
                line: s.line,
                message: format!(
                    "suppression for `{}` matches no finding; delete it",
                    s.rules.join(", ")
                ),
            });
        }
    }
    FileScan { findings, suppressed }
}

fn push(out: &mut Vec<Finding>, rule: &str, path: &str, line: u32, message: String) {
    // One finding per (rule, line): a line like `a.iter().chain(b.iter())`
    // is one reviewable site, not two.
    if out.iter().any(|f| f.rule == rule && f.line == line && f.path == path) {
        return;
    }
    out.push(Finding { rule: rule.to_string(), path: path.to_string(), line, message });
}

/// `nondeterministic-iteration`: in dataset crates, iterating an
/// identifier this file declares as `HashMap`/`HashSet`.
fn rule_nondeterministic_iteration(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !DATASET_CRATES.iter().any(|c| input.path.starts_with(c)) {
        return;
    }
    // Pass 1: names bound to an unordered map or set anywhere in the file
    // (fields `name: HashMap<..>`, params, and `let name = HashMap::new()`).
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk backwards over path segments (`std::collections::`),
        // references, and `mut` to find `name :` or `name =`.
        let mut j = i;
        while j >= 2 {
            let prev = &tokens[j - 1];
            if prev.is_punct(':') && j >= 2 && tokens[j - 2].is_punct(':') {
                // `::` path segment — skip the segment identifier too.
                j -= 3;
                continue;
            }
            if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime {
                j -= 1;
                continue;
            }
            if (prev.is_punct(':') || prev.is_punct('=')) && j >= 2 {
                let name = &tokens[j - 2];
                if name.kind == TokenKind::Ident && !KEYWORDS.contains(&name.text.as_str()) {
                    names.push(name.text.clone());
                }
            }
            break;
        }
    }
    names.sort();
    names.dedup();
    if names.is_empty() {
        return;
    }

    // Pass 2: iteration sites over those names.
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if in_spans(test_spans, t.line) {
            continue;
        }
        // name.method( where method iterates.
        if t.kind == TokenKind::Ident
            && names.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        {
            if let Some(m) = tokens.get(i + 2) {
                if m.kind == TokenKind::Ident
                    && ITERATING_METHODS.contains(&m.text.as_str())
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
                {
                    push(
                        out,
                        "nondeterministic-iteration",
                        input.path,
                        m.line,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet in a crate feeding Datasets; \
                             use BTreeMap/BTreeSet or sort before iterating",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // for x in [&mut] [self.] name {   — direct loop over the map.
        if t.is_ident("for") {
            if let Some(in_idx) =
                (i + 1..tokens.len().min(i + 24)).find(|&k| tokens[k].is_ident("in"))
            {
                let mut k = in_idx + 1;
                while tokens.get(k).is_some_and(|x| x.is_punct('&') || x.is_ident("mut")) {
                    k += 1;
                }
                // Walk a field chain (`self.a.b`): the final segment names
                // the collection being looped over.
                while tokens.get(k).map_or(false, |x| x.kind == TokenKind::Ident)
                    && tokens.get(k + 1).is_some_and(|x| x.is_punct('.'))
                    && tokens.get(k + 2).map_or(false, |x| x.kind == TokenKind::Ident)
                {
                    k += 2;
                }
                if let (Some(name), Some(next)) = (tokens.get(k), tokens.get(k + 1)) {
                    if name.kind == TokenKind::Ident
                        && names.contains(&name.text)
                        && next.is_punct('{')
                    {
                        push(
                            out,
                            "nondeterministic-iteration",
                            input.path,
                            name.line,
                            format!(
                                "`for .. in {}` iterates a HashMap/HashSet in a crate feeding \
                                 Datasets; use BTreeMap/BTreeSet or sort before iterating",
                                name.text
                            ),
                        );
                    }
                }
            }
        }
        // extend(name) — moves the map's iteration order into another table.
        if t.is_ident("extend") && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let mut k = i + 2;
            while tokens.get(k).is_some_and(|x| x.is_punct('&') || x.is_ident("mut")) {
                k += 1;
            }
            while tokens.get(k).map_or(false, |x| x.kind == TokenKind::Ident)
                && tokens.get(k + 1).is_some_and(|x| x.is_punct('.'))
                && tokens.get(k + 2).map_or(false, |x| x.kind == TokenKind::Ident)
            {
                k += 2;
            }
            if let (Some(name), Some(close)) = (tokens.get(k), tokens.get(k + 1)) {
                if name.kind == TokenKind::Ident && names.contains(&name.text) && close.is_punct(')')
                {
                    push(
                        out,
                        "nondeterministic-iteration",
                        input.path,
                        name.line,
                        format!(
                            "`extend({})` drains a HashMap/HashSet in map order into another \
                             collection; use BTreeMap/BTreeSet or sort first",
                            name.text
                        ),
                    );
                }
            }
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` outside `crates/bench`.
fn rule_wall_clock(input: &FileInput<'_>, tokens: &[Token], out: &mut Vec<Finding>) {
    if input.path.starts_with("crates/bench/") {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            push(
                out,
                "wall-clock",
                input.path,
                t.line,
                "`Instant::now()` reads the host clock; simulation code must use SimTime \
                 (wall-clock timing belongs in crates/bench)"
                    .to_string(),
            );
        }
        if t.is_ident("SystemTime") {
            push(
                out,
                "wall-clock",
                input.path,
                t.line,
                "`SystemTime` reads the host clock; simulation code must use SimTime".to_string(),
            );
        }
    }
}

/// `ambient-rng`: entropy-seeded randomness anywhere in the workspace.
fn rule_ambient_rng(input: &FileInput<'_>, tokens: &[Token], out: &mut Vec<Finding>) {
    for t in tokens {
        let bad = ["thread_rng", "from_entropy", "OsRng", "ThreadRng"]
            .iter()
            .any(|b| t.is_ident(b));
        if bad {
            push(
                out,
                "ambient-rng",
                input.path,
                t.line,
                format!(
                    "`{}` draws ambient entropy; all randomness must flow from the seeded \
                     SmallRng derivation tree (simnet::rng::DetRng)",
                    t.text
                ),
            );
        }
    }
}

/// `panic-in-ingest`: potential panics on the ingest/export/upload path.
fn rule_panic_in_ingest(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    if !INGEST_FILES.contains(&input.path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(test_spans, t.line) {
            continue;
        }
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                "panic-in-ingest",
                input.path,
                t.line,
                format!(
                    "`.{}()` can panic on the ingest path; return a typed error, handle the \
                     None/Err case, or document infallibility with a suppression",
                    t.text
                ),
            );
        }
        // panic!/unreachable!/todo!/unimplemented!
        if ["panic", "unreachable", "todo", "unimplemented"].iter().any(|m| t.is_ident(m))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                out,
                "panic-in-ingest",
                input.path,
                t.line,
                format!("`{}!` aborts ingestion; degrade into a typed error instead", t.text),
            );
        }
        // Slice/array indexing: `[` directly after an expression tail.
        if t.is_punct('[') && i > 0 {
            let prev = &tokens[i - 1];
            let indexes_expr = (prev.kind == TokenKind::Ident
                && !KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexes_expr {
                push(
                    out,
                    "panic-in-ingest",
                    input.path,
                    t.line,
                    "slice indexing can panic on the ingest path; use .get() or document the \
                     bounds invariant with a suppression"
                        .to_string(),
                );
            }
        }
    }
}

/// `hot-path-alloc`: allocation constructors inside manifest functions.
fn rule_hot_path_alloc(
    input: &FileInput<'_>,
    tokens: &[Token],
    test_spans: &[(u32, u32)],
    out: &mut Vec<Finding>,
) {
    for hp in input.hotpaths {
        let mut found_fn = false;
        let mut i = 0usize;
        while i + 1 < tokens.len() {
            if !(tokens[i].is_ident("fn")
                && tokens[i + 1].is_ident(&hp.func)
                && !in_spans(test_spans, tokens[i].line))
            {
                i += 1;
                continue;
            }
            found_fn = true;
            // Find the body: first `{` after the signature. A `;` ends a
            // bodyless trait method — but only at bracket depth 0, since
            // array types in the signature (`[u8; LEN]`) also contain `;`.
            let mut j = i + 2;
            let mut bracket_depth = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('[') || t.is_punct('(') {
                    bracket_depth += 1;
                } else if t.is_punct(']') || t.is_punct(')') {
                    bracket_depth -= 1;
                } else if t.is_punct('{') || (t.is_punct(';') && bracket_depth == 0) {
                    break;
                }
                j += 1;
            }
            if j >= tokens.len() || tokens[j].is_punct(';') {
                i = j;
                continue; // trait method without body
            }
            let mut depth = 0i32;
            let mut k = j;
            while k < tokens.len() {
                if tokens[k].is_punct('{') {
                    depth += 1;
                } else if tokens[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            scan_alloc_sites(input, tokens, j, k.min(tokens.len()), &hp.func, out);
            i = k.max(i + 1);
        }
        if !found_fn {
            push(
                out,
                "hot-path-alloc",
                input.path,
                1,
                format!(
                    "hot-path manifest names `{}::{}` but no such fn exists; update \
                     simlint-hotpaths.txt",
                    hp.path, hp.func
                ),
            );
        }
    }
}

fn scan_alloc_sites(
    input: &FileInput<'_>,
    tokens: &[Token],
    start: usize,
    end: usize,
    func: &str,
    out: &mut Vec<Finding>,
) {
    for i in start..end {
        let t = &tokens[i];
        let msg = |what: &str| {
            format!(
                "`{what}` allocates inside hot-path fn `{func}` (pinned allocation-free by \
                 crates/firmware/tests/alloc.rs and simlint-hotpaths.txt)"
            )
        };
        // Vec::new, Vec::with_capacity, String::new/from, Box::new.
        if ["Vec", "String", "Box"].iter().any(|s| t.is_ident(s))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
        {
            if let Some(m) = tokens.get(i + 3) {
                if ["new", "with_capacity", "from"].iter().any(|s| m.is_ident(s)) {
                    push(
                        out,
                        "hot-path-alloc",
                        input.path,
                        t.line,
                        msg(&format!("{}::{}", t.text, m.text)),
                    );
                }
            }
        }
        // vec! / format! macros.
        if (t.is_ident("vec") || t.is_ident("format"))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct('!'))
        {
            push(out, "hot-path-alloc", input.path, t.line, msg(&format!("{}!", t.text)));
        }
        // .to_vec() .to_string() .to_owned() .clone() .collect()
        if i > 0
            && tokens[i - 1].is_punct('.')
            && ["to_vec", "to_string", "to_owned", "clone", "collect"]
                .iter()
                .any(|s| t.is_ident(s))
            && tokens.get(i + 1).is_some_and(|a| a.is_punct('(') || a.is_punct(':'))
        {
            push(out, "hot-path-alloc", input.path, t.line, msg(&format!(".{}()", t.text)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, source: &str) -> Vec<Finding> {
        scan_file(&FileInput { path, source, hotpaths: &[] }).findings
    }

    fn scan_hot(path: &str, source: &str, func: &str) -> Vec<Finding> {
        let hp = vec![HotPathFn { path: path.to_string(), func: func.to_string() }];
        scan_file(&FileInput { path, source, hotpaths: &hp }).findings
    }

    #[test]
    fn hashmap_iteration_flagged_in_dataset_crate() {
        let src = "
            use std::collections::HashMap;
            struct S { leases: HashMap<u32, u32> }
            impl S {
                fn count(&self) -> usize { self.leases.values().count() }
            }";
        let f = scan("crates/simnet/src/dhcp.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondeterministic-iteration");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn hashmap_iteration_ignored_outside_dataset_crates() {
        let src = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u32>) { for x in m { drop(x); } }";
        assert!(scan("crates/analysis/src/usage.rs", src).is_empty());
    }

    #[test]
    fn for_loop_and_extend_flagged() {
        let src = "
            use std::collections::HashMap;
            fn f(seen: HashMap<u32, u32>, out: &mut Vec<(u32, u32)>) {
                for pair in &seen {
                    drop(pair);
                }
                out.extend(seen);
            }";
        let f = scan("crates/collector/src/server.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "nondeterministic-iteration"));
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "
            use std::collections::BTreeMap;
            struct S { leases: BTreeMap<u32, u32> }
            impl S {
                fn count(&self) -> usize { self.leases.values().count() }
            }";
        assert!(scan("crates/simnet/src/dhcp.rs", src).is_empty());
    }

    #[test]
    fn iteration_in_cfg_test_module_exempt() {
        let src = "
            use std::collections::HashMap;
            fn decl(m: HashMap<u32, u32>) -> usize { m.len() }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let counts: HashMap<u32, u32> = HashMap::new();
                    for x in counts.values() { drop(x); }
                }
            }";
        assert!(scan("crates/household/src/devices.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wall-clock");
        assert!(scan("crates/bench/src/bin/e2e.rs", src).is_empty(), "bench crate exempt");
    }

    #[test]
    fn ambient_rng_flagged_everywhere_even_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }";
        for path in ["crates/simnet/src/rng.rs", "crates/simnet/tests/properties.rs"] {
            let f = scan(path, src);
            assert_eq!(f.len(), 1, "{path}");
            assert_eq!(f[0].rule, "ambient-rng");
        }
    }

    #[test]
    fn rng_names_inside_strings_not_flagged() {
        let src = r#"fn f() { let s = "thread_rng"; }"#;
        assert!(scan("crates/simnet/src/rng.rs", src).is_empty());
    }

    #[test]
    fn panic_in_ingest_unwrap_and_index() {
        let src = "
            fn ingest(v: &[u8]) -> u8 {
                let first = v.first().unwrap();
                v[10] + first
            }";
        let f = scan("crates/collector/src/server.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "panic-in-ingest"));
        assert!(scan("crates/collector/src/windows.rs", src).is_empty(), "path-scoped");
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(scan("crates/collector/src/server.rs", src).is_empty());
    }

    #[test]
    fn array_types_and_literals_not_indexing() {
        let src = "
            fn f(buf: &mut [u8; 4]) -> [u8; 2] {
                let _x: Vec<[u8; 4]> = vec![];
                let [a, b] = [0u8, 1u8];
                [a, b]
            }";
        assert!(scan("crates/firmware/src/uploader.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_flags_constructors() {
        let src = "
            impl H {
                pub fn emit_into(&self, out: &mut [u8]) {
                    let tmp = Vec::new();
                    let s = format!(\"{}\", 1);
                    let c = self.name.clone();
                }
                pub fn cold(&self) -> Vec<u8> { self.bytes.to_vec() }
            }";
        let f = scan_hot("crates/firmware/src/heartbeat.rs", src, "emit_into");
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "hot-path-alloc"));
        assert!(f.iter().all(|x| (4..=6).contains(&x.line)), "cold fn not scanned: {f:?}");
    }

    #[test]
    fn hot_path_fn_with_array_type_in_signature_is_scanned() {
        // `[u8; LEN]` puts a `;` inside the signature; it must not be
        // mistaken for a bodyless trait method (the real `emit_into`
        // signatures all take fixed-size output buffers).
        let src = "
            impl H {
                pub fn emit_into(&self, out: &mut [u8; Self::WIRE_LEN]) {
                    let tmp = Vec::new();
                }
            }";
        let f = scan_hot("crates/firmware/src/heartbeat.rs", src, "emit_into");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "hot-path-alloc");
        let trait_src = "trait T { fn emit_into(&self, out: &mut [u8; 4]) -> [u8; 2]; }";
        assert!(scan_hot("crates/firmware/src/heartbeat.rs", trait_src, "emit_into").is_empty());
    }

    #[test]
    fn hot_path_stale_manifest_entry_is_a_finding() {
        let f = scan_hot("crates/firmware/src/heartbeat.rs", "fn other() {}", "emit_into");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-path-alloc");
        assert!(f[0].message.contains("no such fn"));
    }

    #[test]
    fn justified_suppression_silences_finding() {
        let src = "
            fn f() {
                // simlint: allow(wall-clock) — CLI phase timing, never reaches datasets
                let t = std::time::Instant::now();
            }";
        let scanned = scan_file(&FileInput {
            path: "crates/core/src/study.rs",
            source: src,
            hotpaths: &[],
        });
        assert!(scanned.findings.is_empty(), "{:?}", scanned.findings);
        assert_eq!(scanned.suppressed, 1);
    }

    #[test]
    fn same_line_suppression_works() {
        let src =
            "fn f() { let t = std::time::Instant::now(); } // simlint: allow(wall-clock) — timing";
        assert!(scan("crates/core/src/study.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_justification_fails() {
        let src = "
            fn f() {
                // simlint: allow(wall-clock)
                let t = std::time::Instant::now();
            }";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unjustified-suppression");
    }

    #[test]
    fn suppression_for_wrong_rule_does_not_silence() {
        let src = "
            fn f() {
                // simlint: allow(ambient-rng) — wrong rule named
                let t = std::time::Instant::now();
            }";
        let f = scan("crates/core/src/study.rs", src);
        assert!(f.iter().any(|x| x.rule == "wall-clock"), "{f:?}");
        assert!(f.iter().any(|x| x.rule == "unused-suppression"), "{f:?}");
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// simlint: allow(wall-clock) — nothing here anymore\nfn f() {}";
        let f = scan("crates/core/src/study.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-suppression");
    }

    #[test]
    fn multi_rule_suppression() {
        let src = "
            fn ingest(v: &[u8]) -> u8 {
                // simlint: allow(panic-in-ingest) — length checked by caller contract
                v[0]
            }";
        assert!(scan("crates/collector/src/server.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_do_not_create_suppressions() {
        let src = "
            /// Mentioning the syntax in docs is fine: simlint: allow(wall-clock) — example
            fn f() {}";
        assert!(scan("crates/core/src/study.rs", src).is_empty(), "no unused-suppression");
    }

    #[test]
    fn hotpath_manifest_parsing() {
        let text = "# comment\n\ncrates/firmware/src/heartbeat.rs::emit_into\n\
                    crates/firmware/src/uploader.rs::seal\n";
        let hp = parse_hotpaths(text);
        assert_eq!(hp.len(), 2);
        assert_eq!(hp[0].path, "crates/firmware/src/heartbeat.rs");
        assert_eq!(hp[0].func, "emit_into");
        assert_eq!(hp[1].func, "seal");
    }
}
