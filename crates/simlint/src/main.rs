//! Command-line front end.
//!
//! ```text
//! simlint --workspace [--json]          # scan every first-party .rs file
//! simlint PATH... [--json]              # scan specific files
//! simlint --audit                       # list suppressions + whitelist + baseline
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. `--audit` is
//! informational and always exits 0 on success.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  simlint --workspace [--json]\n  simlint PATH... [--json]\n  simlint --audit\n\n\
         Scans for violations of the project invariants (rules: {}).\n\
         Suppress with `// simlint: allow(<rule>) — <justification>`.\n\
         Config at the workspace root: {} (hot-path manifest), {} (layering manifest),\n\
         {} (shared-state whitelist), {} (baseline).",
        simlint::rules::RULES.join(", "),
        simlint::HOTPATHS_FILE,
        simlint::LAYERS_FILE,
        simlint::SHARED_STATE_FILE,
        simlint::BASELINE_FILE,
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let workspace = args.iter().any(|a| a == "--workspace");
    let audit = args.iter().any(|a| a == "--audit");
    let paths: Vec<PathBuf> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    if !workspace && !audit && paths.is_empty() {
        return usage();
    }
    if (workspace || audit) && !paths.is_empty() {
        eprintln!("simlint: --workspace/--audit take no paths");
        return usage();
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot read current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = simlint::find_workspace_root(&cwd) else {
        eprintln!("simlint: no workspace Cargo.toml found above {}", cwd.display());
        return ExitCode::from(2);
    };

    if audit {
        return match simlint::audit_workspace(&root) {
            Ok(listing) => {
                print!("{listing}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simlint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let result = if workspace {
        simlint::scan_workspace(&root)
    } else {
        let abs: Vec<PathBuf> =
            paths.iter().map(|p| if p.is_absolute() { p.clone() } else { cwd.join(p) }).collect();
        simlint::scan_paths(&root, &abs)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
