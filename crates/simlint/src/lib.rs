//! `simlint` — workspace static analysis for the reproduction's
//! determinism, hot-path, thread-safety, and panic-safety invariants.
//!
//! The binary (`cargo run -p simlint -- --workspace`) and the workspace
//! test (`tests/simlint_clean.rs`) both go through [`scan_workspace`],
//! which runs two passes:
//!
//! 1. **Pass 1 — symbol graph** ([`graph`]): read every first-party
//!    `.rs` file and every member `Cargo.toml` once, and build the
//!    workspace symbol graph — crate dependency edges, per-crate symbol
//!    references, and the intra-crate call graph. From it, derive the
//!    set of functions transitively reachable from the hot-path
//!    manifest.
//! 2. **Pass 2 — rules** ([`rules`]): scan each file with the rule
//!    families (which now see the graph-derived context), then run the
//!    workspace-level layering reconciliation and flag stale manifest
//!    entries. Findings are filtered through inline suppressions, the
//!    shared-state whitelist, and the checked-in baseline; zero
//!    unsuppressed findings is the contract.
//!
//! The tool is deliberately dependency-free (the build container has no
//! crates.io access): lexing is hand-rolled in [`lexer`], JSON output is
//! emitted by hand, and configuration is four flat files at the
//! workspace root — `simlint-hotpaths.txt` (hot-path manifest),
//! `simlint-layers.txt` (layering manifest), `simlint-shared-state.txt`
//! (shared-state whitelist), and `simlint.baseline` (grandfathered
//! findings, normally empty).

pub mod graph;
pub mod lexer;
pub mod rules;

use graph::{SymbolGraph, TransitiveHot};
use rules::{Finding, HotPathFn, LayerEdge, SharedStateEntry};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the hot-path manifest at the workspace root.
pub const HOTPATHS_FILE: &str = "simlint-hotpaths.txt";
/// Name of the layering manifest at the workspace root.
pub const LAYERS_FILE: &str = rules::layering::LAYERS_FILE;
/// Name of the shared-state whitelist at the workspace root.
pub const SHARED_STATE_FILE: &str = "simlint-shared-state.txt";
/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "simlint.baseline";

/// Directories never scanned: generated/vendored code is not ours to lint.
const SKIP_DIRS: &[&str] = &["target", "vendor-stubs", ".git"];

/// Aggregated scan result.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed, non-grandfathered findings (build-failing).
    pub findings: Vec<Finding>,
    /// Findings silenced by justified inline suppressions.
    pub suppressed: usize,
    /// Shared-state sites silenced by the whitelist.
    pub whitelisted: usize,
    /// Findings matched by the baseline file.
    pub grandfathered: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// True when nothing fails the build.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable diagnostics, one `file:line: [rule] message` per
    /// finding, followed by a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "simlint: {} finding{} ({} suppressed, {} whitelisted, {} grandfathered) across \
             {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.whitelisted,
            self.grandfathered,
            self.files,
        ));
        out
    }

    /// Machine-readable JSON (hand-emitted; the tool is dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"suppressed\": {},\n  \"whitelisted\": {},\n  \"grandfathered\": {},\n  \
             \"files\": {}\n}}\n",
            self.suppressed, self.whitelisted, self.grandfathered, self.files
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every first-party `.rs` file under the workspace root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A baseline entry: findings matching (rule, path, line-agnostic
/// message-free snippet) are reported as grandfathered, not failing.
/// Line numbers are deliberately absent so unrelated edits above a
/// grandfathered site do not invalidate the baseline.
fn parse_baseline(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path) = l.split_once('\t')?;
            Some((rule.trim().to_string(), path.trim().to_string()))
        })
        .collect()
}

/// Pass-1 output plus the root manifests: everything pass 2 consumes.
pub struct WorkspaceContext {
    /// Hot-path manifest entries.
    pub hotpaths: Vec<HotPathFn>,
    /// Layering manifest entries.
    pub layers: Vec<LayerEdge>,
    /// Shared-state whitelist entries.
    pub whitelist: Vec<SharedStateEntry>,
    /// Baseline entries (consumed as findings match them).
    pub baseline: Vec<(String, String)>,
    /// The workspace symbol graph.
    pub graph: SymbolGraph,
    /// Functions the call graph reaches from the hot-path manifest.
    pub transitive: Vec<TransitiveHot>,
    /// Every first-party source, keyed by workspace-relative path (read
    /// once in pass 1, reused by pass 2).
    pub sources: BTreeMap<String, String>,
}

/// Run pass 1: read every source and manifest, build the symbol graph.
pub fn load_context(root: &Path) -> io::Result<WorkspaceContext> {
    let read_optional = |name: &str| match fs::read_to_string(root.join(name)) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(e),
    };
    let hotpaths = rules::parse_hotpaths(&read_optional(HOTPATHS_FILE)?);
    let layers = rules::parse_layers(&read_optional(LAYERS_FILE)?);
    let whitelist = rules::parse_shared_whitelist(&read_optional(SHARED_STATE_FILE)?);
    let baseline = parse_baseline(&read_optional(BASELINE_FILE)?);

    let mut sources = BTreeMap::new();
    for path in workspace_files(root)? {
        let bytes = fs::read(&path)?;
        sources.insert(rel_path(root, &path), String::from_utf8_lossy(&bytes).into_owned());
    }
    let flat: Vec<(String, String)> =
        sources.iter().map(|(p, s)| (p.clone(), s.clone())).collect();
    let graph = SymbolGraph::build(root, &flat)?;
    let transitive = graph.transitive_hot(&hotpaths);
    Ok(WorkspaceContext { hotpaths, layers, whitelist, baseline, graph, transitive, sources })
}

/// Scan an explicit set of files (paths may be absolute or root-relative).
/// Per-file rules only; the workspace-level layering/staleness checks run
/// in [`scan_workspace`], where the full file set is in view.
pub fn scan_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let ctx = load_context(root)?;
    let mut used_whitelist = Vec::new();
    let mut baseline_left = ctx.baseline.clone();
    let mut report = scan_files(root, paths, &ctx, &mut used_whitelist, &mut baseline_left)?;
    sort_findings(&mut report.findings);
    Ok(report)
}

/// Scan the whole workspace rooted at `root`: every per-file rule plus
/// the workspace-level checks (layering reconciliation, stale/unjustified
/// whitelist entries).
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let ctx = load_context(root)?;
    let files = workspace_files(root)?;
    let mut used_whitelist = Vec::new();
    let mut baseline_left = ctx.baseline.clone();
    let mut report =
        scan_files(root, &files, &ctx, &mut used_whitelist, &mut baseline_left)?;

    let mut ws: Vec<Finding> = Vec::new();
    rules::layering::rule_layering(&ctx.graph, &ctx.layers, &mut ws);
    for e in &ctx.whitelist {
        if e.justification.is_empty() {
            ws.push(Finding {
                rule: "shared-state".to_string(),
                path: SHARED_STATE_FILE.to_string(),
                line: e.line,
                message: format!(
                    "whitelist entry `{} {}` has no justification; say why this file's use \
                     of the construct is sound",
                    e.path, e.construct
                ),
            });
        }
        if !used_whitelist.contains(&e.line) {
            ws.push(Finding {
                rule: "shared-state".to_string(),
                path: SHARED_STATE_FILE.to_string(),
                line: e.line,
                message: format!(
                    "whitelist entry `{} {}` matches no shared-state site; delete the stale \
                     line",
                    e.path, e.construct
                ),
            });
        }
    }
    for f in ws {
        match baseline_left.iter().position(|(r, p)| *r == f.rule && *p == f.path) {
            Some(i) => {
                baseline_left.remove(i);
                report.grandfathered += 1;
            }
            None => report.findings.push(f),
        }
    }
    sort_findings(&mut report.findings);
    Ok(report)
}

/// Pass 2 over an explicit file list, using pass 1's context. Collects
/// which whitelist entries were used into `used_whitelist`.
fn scan_files(
    root: &Path,
    paths: &[PathBuf],
    ctx: &WorkspaceContext,
    used_whitelist: &mut Vec<u32>,
    baseline_left: &mut Vec<(String, String)>,
) -> io::Result<Report> {
    let mut report = Report::default();
    for path in paths {
        let rel = rel_path(root, path);
        let source = match ctx.sources.get(&rel) {
            Some(s) => s.clone(),
            None => match fs::read(path) {
                Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("{}: not found", path.display()),
                    ))
                }
                Err(e) => return Err(e),
            },
        };
        let file_hotpaths: Vec<HotPathFn> =
            ctx.hotpaths.iter().filter(|h| h.path == rel).cloned().collect();
        let file_transitive: Vec<TransitiveHot> =
            ctx.transitive.iter().filter(|t| t.file == rel).cloned().collect();
        let scan = rules::scan_file(&rules::FileInput {
            path: &rel,
            source: &source,
            hotpaths: &file_hotpaths,
            transitive: &file_transitive,
            shared_whitelist: &ctx.whitelist,
        });
        report.suppressed += scan.suppressed;
        report.whitelisted += scan.whitelisted;
        used_whitelist.extend(scan.whitelist_used);
        report.files += 1;
        for f in scan.findings {
            let bi = baseline_left.iter().position(|(r, p)| *r == f.rule && *p == f.path);
            match bi {
                Some(i) => {
                    baseline_left.remove(i);
                    report.grandfathered += 1;
                }
                None => report.findings.push(f),
            }
        }
    }
    used_whitelist.sort_unstable();
    used_whitelist.dedup();
    Ok(report)
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
}

/// The `--audit` listing: every inline suppression, whitelist entry, and
/// baseline entry with its location and justification, plus a one-line
/// summary (`scripts/check.sh` surfaces the summary so suppression growth
/// is visible per PR).
pub fn audit_workspace(root: &Path) -> io::Result<String> {
    let ctx = load_context(root)?;
    let mut out = String::new();
    let mut suppression_count = 0usize;

    out.push_str("inline suppressions:\n");
    for (rel, source) in &ctx.sources {
        let lexed = lexer::lex(source);
        for s in rules::parse_suppressions(&lexed.comments) {
            suppression_count += 1;
            out.push_str(&format!(
                "  {}:{} [{}] — {}\n",
                rel,
                s.line,
                s.rules.join(", "),
                if s.justification.is_empty() { "(UNJUSTIFIED)" } else { &s.justification },
            ));
        }
    }
    if suppression_count == 0 {
        out.push_str("  (none)\n");
    }

    out.push_str(&format!("shared-state whitelist ({SHARED_STATE_FILE}):\n"));
    if ctx.whitelist.is_empty() {
        out.push_str("  (none)\n");
    }
    for e in &ctx.whitelist {
        out.push_str(&format!(
            "  {}:{} {} [{}] — {}\n",
            SHARED_STATE_FILE,
            e.line,
            e.path,
            e.construct,
            if e.justification.is_empty() { "(UNJUSTIFIED)" } else { &e.justification },
        ));
    }

    out.push_str(&format!("baseline ({BASELINE_FILE}):\n"));
    if ctx.baseline.is_empty() {
        out.push_str("  (none)\n");
    }
    for (rule, path) in &ctx.baseline {
        out.push_str(&format!("  {path} [{rule}]\n"));
    }

    out.push_str(&format!(
        "simlint audit: {} inline suppression{}, {} whitelist entr{}, {} baseline entr{}\n",
        suppression_count,
        if suppression_count == 1 { "" } else { "s" },
        ctx.whitelist.len(),
        if ctx.whitelist.len() == 1 { "y" } else { "ies" },
        ctx.baseline.len(),
        if ctx.baseline.len() == 1 { "y" } else { "ies" },
    ));
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn baseline_parsing() {
        let text = "# comment\nwall-clock\tcrates/core/src/study.rs\n\n";
        let b = parse_baseline(text);
        assert_eq!(b, vec![("wall-clock".to_string(), "crates/core/src/study.rs".to_string())]);
    }

    #[test]
    fn report_rendering() {
        let mut r = Report::default();
        r.files = 3;
        r.findings.push(Finding {
            rule: "wall-clock".into(),
            path: "crates/core/src/study.rs".into(),
            line: 7,
            message: "bad \"clock\"".into(),
        });
        let human = r.render_human();
        assert!(human.contains("crates/core/src/study.rs:7: [wall-clock]"));
        assert!(human.contains("whitelisted"));
        let json = r.render_json();
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"whitelisted\": 0"));
        assert!(json.contains("bad \\\"clock\\\""));
    }
}
