//! `simlint` — workspace static analysis for the reproduction's
//! determinism, hot-path, and panic-safety invariants.
//!
//! The binary (`cargo run -p simlint -- --workspace`) and the workspace
//! test (`tests/simlint_clean.rs`) both go through [`scan_workspace`]:
//! walk every first-party `.rs` file, run the rule catalog from
//! [`rules`], filter through inline suppressions and the checked-in
//! baseline, and report what is left. Zero unsuppressed findings is the
//! contract; anything else fails the build.
//!
//! The tool is deliberately dependency-free (the build container has no
//! crates.io access): lexing is hand-rolled in [`lexer`], JSON output is
//! emitted by hand, and configuration is two flat files at the workspace
//! root — `simlint-hotpaths.txt` (the hot-path manifest) and
//! `simlint.baseline` (grandfathered findings, normally empty).

pub mod lexer;
pub mod rules;

use rules::{Finding, HotPathFn};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the hot-path manifest at the workspace root.
pub const HOTPATHS_FILE: &str = "simlint-hotpaths.txt";
/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "simlint.baseline";

/// Directories never scanned: generated/vendored code is not ours to lint.
const SKIP_DIRS: &[&str] = &["target", "vendor-stubs", ".git"];

/// Aggregated scan result.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed, non-grandfathered findings (build-failing).
    pub findings: Vec<Finding>,
    /// Findings silenced by justified inline suppressions.
    pub suppressed: usize,
    /// Findings matched by the baseline file.
    pub grandfathered: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// True when nothing fails the build.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable diagnostics, one `file:line: [rule] message` per
    /// finding, followed by a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "simlint: {} finding{} ({} suppressed, {} grandfathered) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed,
            self.grandfathered,
            self.files,
        ));
        out
    }

    /// Machine-readable JSON (hand-emitted; the tool is dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"suppressed\": {},\n  \"grandfathered\": {},\n  \"files\": {}\n}}\n",
            self.suppressed, self.grandfathered, self.files
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect every first-party `.rs` file under the workspace root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A baseline entry: findings matching (rule, path, line-agnostic
/// message-free snippet) are reported as grandfathered, not failing.
/// Line numbers are deliberately absent so unrelated edits above a
/// grandfathered site do not invalidate the baseline.
fn parse_baseline(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, path) = l.split_once('\t')?;
            Some((rule.trim().to_string(), path.trim().to_string()))
        })
        .collect()
}

/// Scan an explicit set of files (paths may be absolute or root-relative).
pub fn scan_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let hotpaths = load_hotpaths(root)?;
    let baseline = match fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut report = Report::default();
    let mut baseline_left = baseline;
    for path in paths {
        let rel = rel_path(root, path);
        let source = match fs::read(path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(io::Error::new(e.kind(), format!("{}: not found", path.display())))
            }
            Err(e) => return Err(e),
        };
        let file_hotpaths: Vec<HotPathFn> =
            hotpaths.iter().filter(|h| h.path == rel).cloned().collect();
        let scan = rules::scan_file(&rules::FileInput {
            path: &rel,
            source: &source,
            hotpaths: &file_hotpaths,
        });
        report.suppressed += scan.suppressed;
        report.files += 1;
        for f in scan.findings {
            let bi = baseline_left.iter().position(|(r, p)| *r == f.rule && *p == f.path);
            match bi {
                Some(i) => {
                    baseline_left.remove(i);
                    report.grandfathered += 1;
                }
                None => report.findings.push(f),
            }
        }
    }
    report.findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule))
    });
    Ok(report)
}

/// Scan the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace_files(root)?;
    scan_paths(root, &files)
}

fn load_hotpaths(root: &Path) -> io::Result<Vec<HotPathFn>> {
    match fs::read_to_string(root.join(HOTPATHS_FILE)) {
        Ok(text) => Ok(rules::parse_hotpaths(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn baseline_parsing() {
        let text = "# comment\nwall-clock\tcrates/core/src/study.rs\n\n";
        let b = parse_baseline(text);
        assert_eq!(b, vec![("wall-clock".to_string(), "crates/core/src/study.rs".to_string())]);
    }

    #[test]
    fn report_rendering() {
        let mut r = Report::default();
        r.files = 3;
        r.findings.push(Finding {
            rule: "wall-clock".into(),
            path: "crates/core/src/study.rs".into(),
            line: 7,
            message: "bad \"clock\"".into(),
        });
        let human = r.render_human();
        assert!(human.contains("crates/core/src/study.rs:7: [wall-clock]"));
        let json = r.render_json();
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("bad \\\"clock\\\""));
    }
}
