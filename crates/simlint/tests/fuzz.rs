//! Property tests for the scanner and the symbol-graph builder.
//!
//! Three invariants matter more than any individual rule:
//!
//! * the scanner and the graph builder must never panic, whatever bytes
//!   they are pointed at — they run inside `cargo test` on every build,
//!   so a crash on weird input would take the whole gate down with it;
//! * a justified suppression must actually silence its finding, and only
//!   its finding — otherwise the escape hatch is either useless or a hole;
//! * the call graph must be deterministic: two builds over the same
//!   sources produce identical edges, or graph-aware rules would flap.

use proptest::prelude::*;
use simlint::graph::{CrateGraph, SymbolGraph};
use simlint::rules::{parse_hotpaths, scan_file, FileInput};

/// Single-line statements that each trip at least one rule when placed in
/// `crates/collector/src/server.rs` (a dataset crate and an ingest file),
/// plus neutral filler. Kept single-line and comment-free so a `//`
/// suppression can be appended to any of them.
const FRAGMENTS: &[&str] = &[
    "    let mut m: HashMap<u32, u32> = HashMap::new();",
    "    for (k, v) in m.iter() { sink(k, v); }",
    "    let _t = std::time::Instant::now();",
    "    let mut _r = rand::thread_rng();",
    "    let _v = input.unwrap();",
    "    let _ = input;",
    "    input.clone().ok();",
    "    std::thread::spawn(move || {});",
    "    flag.store(true, Ordering::Relaxed);",
    "    let _e = buf[0];",
    "    let _x = 1u64 + 2;",
    "    let _s = other.len();",
];

fn assemble_source(picks: &[usize]) -> String {
    let mut src = String::from("fn scanned(input: Option<u32>, buf: &[u8], other: &str) {\n");
    for &p in picks {
        src.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
        src.push('\n');
    }
    src.push_str("}\n");
    src
}

fn scan(source: &str) -> simlint::rules::FileScan {
    let hotpaths = parse_hotpaths("crates/collector/src/server.rs::scanned");
    scan_file(&FileInput {
        path: "crates/collector/src/server.rs",
        source,
        hotpaths: &hotpaths,
        ..FileInput::default()
    })
}

/// Build the symbol graph for a single synthetic member crate over the
/// given sources, the same way `SymbolGraph::build` would after manifest
/// parsing.
fn graph_over(sources: Vec<(String, String)>) -> SymbolGraph {
    let member = CrateGraph {
        package: "fuzz".to_string(),
        lib_name: "fuzz".to_string(),
        dir: "crates/fuzz".to_string(),
        ..CrateGraph::default()
    };
    SymbolGraph::assemble(vec![member], &sources)
}

proptest! {
    /// The lexer and every rule must survive arbitrary (lossily decoded)
    /// bytes: unterminated strings, stray quotes, half comments, NULs.
    #[test]
    fn scanner_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let source = String::from_utf8_lossy(&bytes);
        let scan = scan_file(&FileInput {
            path: "crates/simnet/src/fuzzed.rs",
            source: &source,
            hotpaths: &[],
            ..FileInput::default()
        });
        for f in &scan.findings {
            prop_assert!(f.line >= 1, "finding lines are 1-based: {f:?}");
        }
    }

    /// The symbol-graph builder must survive the same arbitrary bytes: it
    /// runs over every workspace file before any rule does.
    #[test]
    fn graph_builder_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let g = graph_over(vec![("crates/fuzz/src/lib.rs".to_string(), source)]);
        let cg = &g.crates["crates/fuzz"];
        for f in &cg.fns {
            prop_assert!(f.line >= 1, "fn lines are 1-based: {f:?}");
        }
        for c in &cg.calls {
            prop_assert!(c.line >= 1, "call lines are 1-based: {c:?}");
            prop_assert!(c.caller < cg.fns.len(), "caller index in range: {c:?}");
        }
    }

    /// Two graph builds over identical sources must produce identical
    /// fns, call edges, types, and refs — the call graph feeds
    /// hot-path-transitive, so nondeterminism here would make the lint
    /// gate itself flap.
    #[test]
    fn call_graph_edges_are_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let files = vec![
            ("crates/fuzz/src/lib.rs".to_string(), source.clone()),
            ("crates/fuzz/src/extra.rs".to_string(), format!("pub fn seeded() {{ helper(); }}\n{source}")),
        ];
        let a = graph_over(files.clone());
        let b = graph_over(files);
        let (ca, cb) = (&a.crates["crates/fuzz"], &b.crates["crates/fuzz"]);
        prop_assert_eq!(&ca.fns, &cb.fns);
        prop_assert_eq!(&ca.calls, &cb.calls);
        prop_assert_eq!(&ca.types, &cb.types);
        prop_assert_eq!(&ca.refs, &cb.refs);
    }

    /// Appending a justified allow-comment to every finding line silences
    /// exactly those findings: the rescan is clean, every original finding
    /// is accounted for as suppressed, and no unused-suppression noise
    /// appears.
    #[test]
    fn suppressed_findings_never_escape(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..40)) {
        let source = assemble_source(&picks);
        let first = scan(&source);

        let mut lines: Vec<String> = source.lines().map(String::from).collect();
        let mut per_line: std::collections::BTreeMap<u32, Vec<String>> = std::collections::BTreeMap::new();
        for f in &first.findings {
            per_line.entry(f.line).or_default().push(f.rule.clone());
        }
        for (line, mut rules) in per_line {
            rules.sort();
            rules.dedup();
            let idx = (line - 1) as usize;
            lines[idx].push_str(&format!(" // simlint: allow({}) — fuzz-injected", rules.join(", ")));
        }
        let patched = lines.join("\n");

        let second = scan(&patched);
        prop_assert!(
            second.findings.is_empty(),
            "suppressed findings escaped or suppressions misfired: {:?}",
            second.findings
        );
        prop_assert_eq!(second.suppressed, first.findings.len());
    }

    /// The same comments without justification text must NOT produce a
    /// clean scan: every suppression surfaces as unjustified-suppression.
    #[test]
    fn unjustified_suppressions_always_surface(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..40)) {
        let source = assemble_source(&picks);
        let first = scan(&source);
        prop_assume!(!first.findings.is_empty());

        let mut lines: Vec<String> = source.lines().map(String::from).collect();
        let mut suppressed_lines = 0usize;
        let mut per_line: std::collections::BTreeMap<u32, Vec<String>> = std::collections::BTreeMap::new();
        for f in &first.findings {
            per_line.entry(f.line).or_default().push(f.rule.clone());
        }
        for (line, mut rules) in per_line {
            rules.sort();
            rules.dedup();
            let idx = (line - 1) as usize;
            lines[idx].push_str(&format!(" // simlint: allow({})", rules.join(", ")));
            suppressed_lines += 1;
        }
        let patched = lines.join("\n");

        let second = scan(&patched);
        let unjustified =
            second.findings.iter().filter(|f| f.rule == "unjustified-suppression").count();
        prop_assert_eq!(unjustified, suppressed_lines);
        prop_assert_eq!(second.suppressed, 0);
    }
}
