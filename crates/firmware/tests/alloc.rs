//! Allocation accounting for the firmware hot paths.
//!
//! The simulation emits and parses on the order of 10^7 heartbeats per
//! study run, so this path is required to touch the heap zero times per
//! packet; the store-and-forward upload queue sits on the same hot path
//! whenever a fault plan is active, so its steady state (fill → seal →
//! attempt → fail → ack) carries the same requirement. The `obs` metric
//! handles ride these same hot paths, so their increments are held to the
//! same bar. A counting global allocator makes all of this hard tests
//! rather than code-review promises.

use firmware::records::{Record, RouterId, UptimeRecord};
use firmware::uploader::{Uploader, UploaderConfig};
use firmware::Heartbeat;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

thread_local! {
    // Const-initialized so the first access inside `alloc` cannot itself
    // allocate (lazy TLS init would recurse into the allocator). Per-thread
    // counting also keeps the libtest harness thread's own allocations from
    // being charged to the code under test.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: an allocation during thread teardown (after this TLS
        // slot is destroyed) must not panic inside the allocator.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn obs_counter_and_histogram_increments_allocate_nothing() {
    // Handle registration allocates (Box::leak into the static registry);
    // doing it in the warm-up phase mirrors how the simulation registers
    // handles once, before any hot loop runs.
    let counter = obs::counter("alloc_test_total");
    let hist = obs::histogram("alloc_test_micros", &obs::DURATION_BOUNDS_MICROS);
    counter.inc();
    hist.record(1_000_000);

    let before = ALLOCATIONS.with(Cell::get);
    for i in 0..100_000u64 {
        counter.add(2);
        counter.inc();
        hist.record(i * 37);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert!(
        after == before,
        "obs increments allocated {} times over 100k iterations",
        after - before
    );
    assert!(counter.get() >= 300_000);
}

#[test]
fn heartbeat_emit_and_parse_allocate_nothing() {
    let wan = Ipv4Addr::new(100, 64, 0, 9);
    let mut wire = [0u8; Heartbeat::WIRE_LEN];
    // Warm-up iteration outside the counted window, in case anything lazy
    // initializes on first use.
    Heartbeat { router: RouterId(7), seq: 0 }.emit_into(wan, &mut wire);
    Heartbeat::parse(&wire).expect("valid warm-up packet");

    let before = ALLOCATIONS.with(Cell::get);
    for seq in 1..=10_000u64 {
        let hb = Heartbeat { router: RouterId(7), seq };
        hb.emit_into(wan, &mut wire);
        let (parsed, src) = Heartbeat::parse(&wire).expect("valid packet");
        assert!(parsed == hb && src == wan);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert!(
        after == before,
        "heartbeat emit+parse allocated {} times over 10k packets",
        after - before
    );
}

#[test]
fn upload_queue_steady_state_allocates_nothing() {
    let cfg = UploaderConfig { batch_records: 64, ..UploaderConfig::default() };
    let batch = cfg.batch_records;
    let mut up = Uploader::new(cfg);
    let mut rng = DetRng::new(41).derive("alloc-test");
    let mut out: Vec<Record> = Vec::with_capacity(batch);
    let fill = |out: &mut Vec<Record>, round: u64| {
        for i in 0..batch as u64 {
            out.push(Record::Uptime(UptimeRecord {
                router: RouterId(3),
                at: SimTime::EPOCH + SimDuration::from_mins(round * 100 + i),
                uptime: SimDuration::from_mins(i),
            }));
        }
    };
    // One full cycle: fill, seal, offer once and fail (exercising the
    // backoff draw), offer again and ack. The ack recycles the batch's
    // buffer into the uploader's free pool.
    let cycle = |up: &mut Uploader, out: &mut Vec<Record>, rng: &mut DetRng, round: u64| {
        fill(out, round);
        up.seal(out);
        let seq = up.attempt().expect("sealed batch is in the spool").seq;
        let _backoff = up.fail_front(rng);
        let a = up.attempt().expect("failed batch stays at the front");
        assert_eq!(a.seq, seq);
        a.records.clear(); // the collector drains the buffer on accept
        up.ack_front();
    };
    // Warm-up rounds populate the free pool (the first seals hand the
    // caller fresh, empty buffers that grow to batch capacity once).
    for round in 0..4 {
        cycle(&mut up, &mut out, &mut rng, round);
    }
    assert!(!up.has_backlog(), "warm-up must drain fully");

    let before = ALLOCATIONS.with(Cell::get);
    for round in 4..1_004 {
        cycle(&mut up, &mut out, &mut rng, round);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert!(
        after == before,
        "upload queue steady state allocated {} times over 1k seal/fail/ack cycles",
        after - before
    );
    assert_eq!(up.stats().acked_batches, 1_004);
    assert_eq!(up.stats().failed_attempts, 1_004);
}
