//! Allocation accounting for the heartbeat wire path.
//!
//! The simulation emits and parses on the order of 10^7 heartbeats per
//! study run, so this path is required to touch the heap zero times per
//! packet. A counting global allocator makes that a hard test rather than
//! a code-review promise.

use firmware::records::RouterId;
use firmware::Heartbeat;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

thread_local! {
    // Const-initialized so the first access inside `alloc` cannot itself
    // allocate (lazy TLS init would recurse into the allocator). Per-thread
    // counting also keeps the libtest harness thread's own allocations from
    // being charged to the code under test.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: an allocation during thread teardown (after this TLS
        // slot is destroyed) must not panic inside the allocator.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn heartbeat_emit_and_parse_allocate_nothing() {
    let wan = Ipv4Addr::new(100, 64, 0, 9);
    let mut wire = [0u8; Heartbeat::WIRE_LEN];
    // Warm-up iteration outside the counted window, in case anything lazy
    // initializes on first use.
    Heartbeat { router: RouterId(7), seq: 0 }.emit_into(wan, &mut wire);
    Heartbeat::parse(&wire).expect("valid warm-up packet");

    let before = ALLOCATIONS.with(Cell::get);
    for seq in 1..=10_000u64 {
        let hb = Heartbeat { router: RouterId(7), seq };
        hb.emit_into(wan, &mut wire);
        let (parsed, src) = Heartbeat::parse(&wire).expect("valid packet");
        assert!(parsed == hb && src == wan);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert!(
        after == before,
        "heartbeat emit+parse allocated {} times over 10k packets",
        after - before
    );
}
