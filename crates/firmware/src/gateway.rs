//! The gateway itself: router state (radios, DHCP, NAT, DNS cache), boot
//! accounting, the hourly device census, and the WiFi scan policy.
//!
//! The measurement *schedule* — when minutes, hours, and 12-hour marks
//! fire — is driven by the home simulation's event queue; this type holds
//! the state those events act on and implements the firmware-side logic
//! (census counting, scan throttling, boot/uptime bookkeeping).

use crate::anonymize::Anonymizer;
use crate::records::{ApSighting, DeviceCensusRecord, RouterId, UptimeRecord, WifiScanRecord};
use simnet::arp::{ArpPacket, NeighborTable};
use simnet::dhcp::DhcpServer;
use simnet::dns::CachingResolver;
use simnet::nat::Nat;
use simnet::packet::MacAddr;
use simnet::rng::DetRng;
use simnet::time::SimTime;
use simnet::wifi::{Band, NeighborAp, Radio};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// How often the scanner *wants* to run (§3.2.2: every 10 minutes).
pub const SCAN_INTERVAL_MINS: u64 = 10;
/// Throttle factor applied when clients are associated (scans can knock
/// clients off, so the firmware backs off to every 30 minutes).
pub const SCAN_THROTTLE: u64 = 3;

/// Decide whether a scheduled scan slot should actually scan, given the
/// number of associated stations and the slot index since boot.
pub fn should_scan(associated: usize, slot: u64) -> bool {
    if associated == 0 {
        true
    } else {
        slot.is_multiple_of(SCAN_THROTTLE)
    }
}

/// The BISmark router: all firmware-visible state for one home.
#[derive(Debug)]
pub struct Gateway {
    /// Router identity (equals the home id).
    pub id: RouterId,
    /// The WAN address.
    pub wan_addr: Ipv4Addr,
    /// 2.4 GHz radio.
    pub radio_24: Radio,
    /// 5 GHz radio.
    pub radio_5: Radio,
    /// LAN address server.
    pub dhcp: DhcpServer,
    /// The address/port translator.
    pub nat: Nat,
    /// The gateway's caching stub resolver.
    pub resolver: CachingResolver,
    /// The kernel-style ARP neighbor table (populated by gratuitous ARP at
    /// attach and refreshed by relayed traffic).
    pub neighbors: NeighborTable,
    /// Devices currently on the Ethernet ports.
    wired: BTreeSet<MacAddr>,
    /// Whether the router is powered.
    powered: bool,
    /// Boot time of the current power cycle.
    booted_at: SimTime,
    /// Heartbeat sequence number within this boot.
    pub heartbeat_seq: u64,
    /// Scan slot counter within this boot.
    scan_slot: u64,
}

impl Gateway {
    /// A powered-off gateway with factory state.
    pub fn new(id: RouterId, wan_addr: Ipv4Addr) -> Gateway {
        Gateway {
            id,
            wan_addr,
            radio_24: Radio::new(Band::Ghz24),
            radio_5: Radio::new(Band::Ghz5),
            dhcp: DhcpServer::new(),
            nat: Nat::new(wan_addr),
            resolver: CachingResolver::new(),
            neighbors: NeighborTable::new(),
            wired: BTreeSet::new(),
            powered: false,
            booted_at: SimTime::EPOCH,
            heartbeat_seq: 0,
            scan_slot: 0,
        }
    }

    /// Is the router powered right now?
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Time since boot, or zero when off.
    pub fn uptime(&self, now: SimTime) -> simnet::time::SimDuration {
        if self.powered {
            now.saturating_since(self.booted_at)
        } else {
            simnet::time::SimDuration::ZERO
        }
    }

    /// Power the router on: volatile state starts fresh.
    pub fn power_on(&mut self, now: SimTime) {
        if self.powered {
            return;
        }
        self.powered = true;
        self.booted_at = now;
        self.heartbeat_seq = 0;
        self.scan_slot = 0;
    }

    /// Power the router off: associations, leases, NAT mappings, and the
    /// DNS cache all evaporate (they live in RAM).
    pub fn power_off(&mut self, _now: SimTime) {
        if !self.powered {
            return;
        }
        self.powered = false;
        self.radio_24.reset();
        self.radio_5.reset();
        self.dhcp.reset();
        self.resolver.reset();
        self.neighbors.reset();
        self.wired.clear();
    }

    /// Attach a wired device (at most four ports). The device announces
    /// itself with a gratuitous ARP, which populates the neighbor table —
    /// the structure a real census reads.
    pub fn connect_wired(&mut self, mac: MacAddr) -> bool {
        if self.wired.len() >= 4 && !self.wired.contains(&mac) {
            return false;
        }
        self.wired.insert(mac);
        true
    }

    /// A device joined the LAN and broadcast a gratuitous ARP: parse the
    /// wire image at the gateway and learn the neighbor.
    pub fn observe_gratuitous_arp(&mut self, now: SimTime, mac: MacAddr, addr: std::net::Ipv4Addr) {
        let announce = ArpPacket::gratuitous(mac, addr);
        // The gateway receives the broadcast as bytes and parses it.
        if let Ok(parsed) = ArpPacket::parse(&announce.emit()) {
            self.neighbors.observe(now, &parsed);
        }
    }

    /// Detach a wired device.
    pub fn disconnect_wired(&mut self, mac: MacAddr) {
        self.wired.remove(&mac);
    }

    /// Is this MAC currently connected on any medium?
    pub fn is_connected(&self, mac: MacAddr) -> bool {
        self.wired.contains(&mac)
            || self.radio_24.is_associated(mac)
            || self.radio_5.is_associated(mac)
    }

    /// Associate a wireless station on the given band.
    pub fn associate(&mut self, band: Band, mac: MacAddr) {
        match band {
            Band::Ghz24 => self.radio_24.associate(mac),
            Band::Ghz5 => self.radio_5.associate(mac),
        }
    }

    /// Disassociate a wireless station from whichever radio holds it.
    pub fn disassociate(&mut self, mac: MacAddr) {
        self.radio_24.disassociate(mac);
        self.radio_5.disassociate(mac);
    }

    /// Take the hourly device census.
    pub fn census(&self, now: SimTime) -> DeviceCensusRecord {
        DeviceCensusRecord {
            router: self.id,
            at: now,
            wired: self.wired.len() as u8,
            wireless_24: self.radio_24.station_count() as u8,
            wireless_5: self.radio_5.station_count() as u8,
        }
    }

    /// Build the 12-hourly uptime report.
    pub fn uptime_report(&self, now: SimTime) -> UptimeRecord {
        UptimeRecord { router: self.id, at: now, uptime: self.uptime(now) }
    }

    /// Run the scan slot for one band. Applies the throttle policy; when it
    /// scans, neighbor APs are sampled and any stations the scan knocked
    /// off are disassociated (the caller learns which, to model the client
    /// reconnecting later). Returns `None` when the slot was throttled.
    pub fn run_scan_slot(
        &mut self,
        now: SimTime,
        band: Band,
        neighborhood: &[NeighborAp],
        anonymizer: &Anonymizer,
        rng: &mut DetRng,
    ) -> Option<(WifiScanRecord, Vec<MacAddr>)> {
        let radio = match band {
            Band::Ghz24 => &mut self.radio_24,
            Band::Ghz5 => &mut self.radio_5,
        };
        let slot = self.scan_slot;
        if band == Band::Ghz5 {
            // Slot counter advances once per (24, 5) pair; 2.4 GHz goes first.
            self.scan_slot += 1;
        }
        if !should_scan(radio.station_count(), slot) {
            return None;
        }
        let outcome = radio.scan(neighborhood, rng);
        let associated = radio.station_count() as u8;
        let aps = outcome
            .visible
            .iter()
            .map(|entry| ApSighting {
                bssid_hash: anonymizer.ip(Ipv4Addr::from(
                    (entry.bssid.oui() ^ entry.bssid.nic()).to_be_bytes(),
                )),
                channel_number: entry.channel.number,
                signal_dbm: entry.signal_dbm,
            })
            .collect();
        Some((
            WifiScanRecord { router: self.id, at: now, band, aps, associated_stations: associated },
            outcome.dropped_stations,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_oui_nic(0x00_17_F2, n)
    }

    fn gw() -> Gateway {
        Gateway::new(RouterId(1), Ipv4Addr::new(100, 64, 0, 1))
    }

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    #[test]
    fn power_cycle_clears_volatile_state() {
        let mut g = gw();
        g.power_on(t(0));
        g.connect_wired(mac(1));
        g.associate(Band::Ghz24, mac(2));
        g.associate(Band::Ghz5, mac(3));
        g.dhcp.request(t(0), mac(2)).unwrap();
        assert_eq!(g.census(t(1)).total(), 3);
        g.power_off(t(2));
        assert!(!g.is_powered());
        assert_eq!(g.census(t(3)).total(), 0);
        g.power_on(t(4));
        assert_eq!(g.uptime(t(5)), SimDuration::from_mins(1));
        assert_eq!(g.heartbeat_seq, 0);
    }

    #[test]
    fn double_power_on_keeps_boot_time() {
        let mut g = gw();
        g.power_on(t(0));
        g.power_on(t(10));
        assert_eq!(g.uptime(t(20)), SimDuration::from_mins(20));
    }

    #[test]
    fn wired_ports_capped_at_four() {
        let mut g = gw();
        g.power_on(t(0));
        for i in 0..4 {
            assert!(g.connect_wired(mac(i)));
        }
        assert!(!g.connect_wired(mac(99)), "fifth port must not exist");
        assert!(g.connect_wired(mac(0)), "re-connecting an attached device is fine");
        g.disconnect_wired(mac(0));
        assert!(g.connect_wired(mac(99)));
    }

    #[test]
    fn census_counts_by_medium() {
        let mut g = gw();
        g.power_on(t(0));
        g.connect_wired(mac(1));
        g.associate(Band::Ghz24, mac(2));
        g.associate(Band::Ghz24, mac(3));
        g.associate(Band::Ghz5, mac(4));
        let c = g.census(t(1));
        assert_eq!((c.wired, c.wireless_24, c.wireless_5), (1, 2, 1));
        assert!(g.is_connected(mac(4)));
        g.disassociate(mac(4));
        assert!(!g.is_connected(mac(4)));
    }

    #[test]
    fn scan_policy_throttles_with_clients() {
        assert!(should_scan(0, 0));
        assert!(should_scan(0, 1));
        assert!(should_scan(3, 0));
        assert!(!should_scan(3, 1));
        assert!(!should_scan(3, 2));
        assert!(should_scan(3, 3));
    }

    #[test]
    fn scan_slot_produces_record_or_none() {
        let mut g = gw();
        g.power_on(t(0));
        let anon = Anonymizer::new(5, []);
        let mut rng = DetRng::new(2);
        let hood = vec![NeighborAp {
            bssid: mac(77),
            channel: Band::Ghz24.default_channel(),
            signal_dbm: -45,
            airtime_load: 0.1,
        }];
        // No clients: every slot scans.
        let mut seen_any = false;
        for i in 0..6 {
            let r24 = g.run_scan_slot(t(10 * i), Band::Ghz24, &hood, &anon, &mut rng);
            let r5 = g.run_scan_slot(t(10 * i), Band::Ghz5, &hood, &anon, &mut rng);
            assert!(r24.is_some() && r5.is_some());
            if !r24.unwrap().0.aps.is_empty() {
                seen_any = true;
            }
        }
        assert!(seen_any, "the strong co-channel AP must be sighted");
        // With clients associated, two of three slots are throttled.
        g.associate(Band::Ghz24, mac(1));
        let mut scans = 0;
        for i in 6..12 {
            if g.run_scan_slot(t(10 * i), Band::Ghz24, &hood, &anon, &mut rng).is_some() {
                scans += 1;
            }
            g.run_scan_slot(t(10 * i), Band::Ghz5, &hood, &anon, &mut rng);
            g.associate(Band::Ghz24, mac(1)); // re-associate if knocked off
        }
        assert_eq!(scans, 2, "throttled to one in three slots");
    }

    #[test]
    fn uptime_report_matches_boot() {
        let mut g = gw();
        g.power_on(t(100));
        let rep = g.uptime_report(t(160));
        assert_eq!(rep.uptime, SimDuration::from_mins(60));
        assert_eq!(rep.router, RouterId(1));
    }
}
