//! Heartbeats: once a minute, the router sends a small UDP packet to the
//! central collection server. No retransmission, no acknowledgment — a
//! lost packet simply leaves a gap, and persistent gaps are what §4 reads
//! as downtime.
//!
//! The packet is a genuine UDP/IPv4 wire image carrying the router id and
//! a sequence number, emitted through the home's *uplink* (so a saturated
//! uplink can delay it) and then across a lossy WAN path. The collector
//! parses and validates it before recording.

use crate::records::RouterId;
use simnet::packet::{IpProtocol, Ipv4View, ParseError, UdpView, IPV4_HEADER_LEN};
use std::net::Ipv4Addr;

/// The collector's UDP port for heartbeats.
pub const HEARTBEAT_PORT: u16 = 9_100;
/// The collection server's address (the deployment's server at Georgia
/// Tech; any stable address works here).
pub const COLLECTOR_ADDR: Ipv4Addr = Ipv4Addr::new(128, 61, 23, 45);
/// Magic tag guarding against misparses.
const MAGIC: &[u8; 4] = b"BSMK";

/// Heartbeat payload contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The reporting router.
    pub router: RouterId,
    /// Monotonic per-boot sequence number.
    pub seq: u64,
}

impl Heartbeat {
    /// Wire length of a heartbeat packet: 20 IP + 8 UDP + 16 payload.
    pub const WIRE_LEN: usize = 44;

    /// Build the full IPv4+UDP wire image from the router's WAN address.
    pub fn emit(&self, wan_addr: Ipv4Addr) -> Vec<u8> {
        let mut out = [0u8; Self::WIRE_LEN];
        self.emit_into(wan_addr, &mut out);
        out.to_vec()
    }

    /// Write the full IPv4+UDP wire image into a caller-owned buffer
    /// (typically a stack array) with zero heap allocations. Byte-identical
    /// to [`Heartbeat::emit`].
    pub fn emit_into(&self, wan_addr: Ipv4Addr, out: &mut [u8; Self::WIRE_LEN]) {
        let mut payload = [0u8; 16];
        payload[0..4].copy_from_slice(MAGIC);
        payload[4..8].copy_from_slice(&self.router.0.to_be_bytes());
        payload[8..16].copy_from_slice(&self.seq.to_be_bytes());
        let (ip_header, udp_segment) = out.split_at_mut(IPV4_HEADER_LEN);
        UdpView { src_port: HEARTBEAT_PORT, dst_port: HEARTBEAT_PORT, payload: &payload }
            .emit_into(wan_addr, COLLECTOR_ADDR, udp_segment);
        Ipv4View {
            src: wan_addr,
            dst: COLLECTOR_ADDR,
            protocol: IpProtocol::Udp,
            ttl: 64,
            identification: 0,
            dscp_ecn: 0,
            payload: udp_segment,
        }
        .emit_header_into(ip_header);
    }

    /// Parse and validate a received wire image (collector side). Runs on
    /// borrowed views all the way down: no heap allocations.
    pub fn parse(wire: &[u8]) -> Result<(Heartbeat, Ipv4Addr), ParseError> {
        let ip = Ipv4View::parse(wire)?;
        if ip.protocol != IpProtocol::Udp || ip.dst != COLLECTOR_ADDR {
            return Err(ParseError::Unsupported);
        }
        let udp = UdpView::parse(ip.payload, ip.src, ip.dst)?;
        if udp.dst_port != HEARTBEAT_PORT || udp.payload.len() != 16 {
            return Err(ParseError::Unsupported);
        }
        if &udp.payload[0..4] != MAGIC {
            return Err(ParseError::Unsupported);
        }
        let router = RouterId(u32::from_be_bytes(
            udp.payload[4..8].try_into().expect("fixed slice"),
        ));
        let seq = u64::from_be_bytes(udp.payload[8..16].try_into().expect("fixed slice"));
        Ok((Heartbeat { router, seq }, ip.src))
    }

    /// Wire length of a heartbeat packet (for link accounting).
    pub fn wire_len() -> u64 {
        Self::WIRE_LEN as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::packet::{Ipv4Packet, UdpDatagram};

    const WAN: Ipv4Addr = Ipv4Addr::new(100, 64, 0, 7);

    #[test]
    fn round_trip() {
        let hb = Heartbeat { router: RouterId(42), seq: 123_456 };
        let wire = hb.emit(WAN);
        assert_eq!(wire.len() as u64, Heartbeat::wire_len());
        let (parsed, src) = Heartbeat::parse(&wire).unwrap();
        assert_eq!(parsed, hb);
        assert_eq!(src, WAN);
    }

    #[test]
    fn emit_into_matches_emit() {
        let hb = Heartbeat { router: RouterId(0xDEAD), seq: u64::MAX - 7 };
        let mut stack = [0u8; Heartbeat::WIRE_LEN];
        hb.emit_into(WAN, &mut stack);
        assert_eq!(stack.as_slice(), hb.emit(WAN).as_slice());
        let (parsed, src) = Heartbeat::parse(&stack).unwrap();
        assert_eq!(parsed, hb);
        assert_eq!(src, WAN);
    }

    #[test]
    fn wrong_port_rejected() {
        let hb = Heartbeat { router: RouterId(1), seq: 1 };
        let mut wire = hb.emit(WAN);
        // Mangle the UDP destination port (bytes 20..22 are src port,
        // 22..24 dst port) and fix nothing else: checksum now fails, which
        // is also a rejection — both paths are fine, we only need Err.
        wire[22] ^= 0xFF;
        assert!(Heartbeat::parse(&wire).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let hb = Heartbeat { router: RouterId(1), seq: 1 };
        let wire = hb.emit(WAN);
        // Rebuild with corrupted payload but valid checksums.
        let ip = Ipv4Packet::parse(&wire).unwrap();
        let udp = UdpDatagram::parse(&ip.payload, ip.src, ip.dst).unwrap();
        let mut payload = udp.payload.clone();
        payload[0] = b'X';
        let evil = Ipv4Packet::new(
            ip.src,
            ip.dst,
            IpProtocol::Udp,
            UdpDatagram::new(udp.src_port, udp.dst_port, payload).emit(ip.src, ip.dst),
        )
        .emit();
        assert_eq!(Heartbeat::parse(&evil), Err(ParseError::Unsupported));
    }

    #[test]
    fn non_udp_rejected() {
        let pkt = Ipv4Packet::new(WAN, COLLECTOR_ADDR, IpProtocol::Tcp, vec![0; 24]).emit();
        assert_eq!(Heartbeat::parse(&pkt), Err(ParseError::Unsupported));
    }
}
