//! # firmware — the BISmark gateway agent
//!
//! A faithful reimplementation of the measurement logic the paper's custom
//! OpenWrt firmware ran on each home router:
//!
//! * [`heartbeat`] — 1/minute unreliable UDP beacons (the Heartbeats set);
//! * [`gateway`] — router state, the hourly device census (Devices set),
//!   12-hourly uptime reports (Uptime set), and the WiFi scan policy with
//!   its client-protection throttle (WiFi set);
//! * [`shaperprobe`] — 12-hourly packet-train capacity estimation with
//!   token-bucket (burst shaping) detection (Capacity set);
//! * [`latency`] — ICMP latency probing through the (possibly bloated)
//!   access-link queue, the platform capability behind the authors'
//!   companion performance study;
//! * [`traffic`] — consent-gated passive capture: per-second packet
//!   statistics, flow records, DNS samples, and MAC sightings (Traffic set);
//! * [`anonymize`] — the §3.2.2 privacy rules: OUI-preserving MAC hashing,
//!   whitelist-or-token domain reporting, IP obfuscation;
//! * [`metrics`] — `obs` handles for heartbeat/uploader telemetry (hot
//!   counts stay in local integers; totals publish at end of run);
//! * [`natprobe`] — STUN-style Test1/2/3 NAT-type classification and CGN
//!   detection over the gateway's real translation path (NAT Probes set);
//! * [`records`] — the upload schema, one type per data set of Table 2;
//! * [`uploader`] — the store-and-forward upload queue: sequence-numbered
//!   batches, capped exponential backoff with jitter, bounded spill with
//!   oldest-first eviction, and gap accounting for flash-wipe reboots.
//!
//! Nothing in this crate reads simulator-internal ground truth: every
//! record is derived from what a real gateway could observe at its own
//! vantage point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod gateway;
pub mod heartbeat;
pub mod latency;
pub mod metrics;
pub mod natprobe;
pub mod records;
pub mod shaperprobe;
pub mod traffic;
pub mod uploader;

pub use anonymize::{AnonMac, Anonymizer, ReportedDomain};
pub use gateway::Gateway;
pub use heartbeat::Heartbeat;
pub use records::{Record, RouterId};
pub use shaperprobe::{probe_link, ProbeEstimate};
pub use traffic::TrafficMonitor;
