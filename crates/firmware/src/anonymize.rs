//! The privacy machinery of §3.2.2: before anything leaves the gateway,
//! MAC addresses lose their device-identifying half, non-whitelisted domain
//! names become opaque tokens, and IP addresses are obfuscated.
//!
//! The rules, exactly as the paper states them:
//!
//! * **MACs**: the upper 24 bits (the manufacturer OUI) are kept — that is
//!   what Fig 12 is built from — and the lower 24 bits are replaced with a
//!   keyed hash, so a device is *consistent* within a home's data but not
//!   identifiable.
//! * **Domains**: names on the household's whitelist (Alexa US top-200 by
//!   default, plus user additions) pass through; all others are replaced
//!   with a keyed token. Tokens are stable within a home, so "the most
//!   popular domain" is still computable even when its name is hidden.
//! * **IPs**: remote addresses in flow records are obfuscated with the same
//!   keyed construction.

use serde::{Deserialize, Serialize};
use simnet::dns::DomainName;
use simnet::packet::MacAddr;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// A keyed 64-bit mixer (xorshift-multiply construction). Not
/// cryptographic — neither was the deployment's, and nothing here defends
/// against an adversary with the key — but stable and well-distributed.
fn keyed_mix(key: u64, value: u64) -> u64 {
    let mut x = value ^ key.rotate_left(31);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

fn hash_str(key: u64, s: &str) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        acc = (acc ^ u64::from(*b)).wrapping_mul(0x100_0000_01B3);
    }
    keyed_mix(key, acc)
}

/// An anonymized MAC: the true OUI plus a hashed 24-bit suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AnonMac {
    /// Manufacturer OUI (upper 24 bits, reported in clear).
    pub oui: u32,
    /// Keyed hash of the lower 24 bits.
    pub suffix_hash: u32,
}

impl std::fmt::Display for AnonMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:xx:{:04x}",
            (self.oui >> 16) & 0xFF,
            (self.oui >> 8) & 0xFF,
            self.oui & 0xFF,
            self.suffix_hash & 0xFFFF
        )
    }
}

/// A domain name as it appears in uploaded records.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReportedDomain {
    /// Whitelisted: the real (base) name.
    Clear(DomainName),
    /// Not whitelisted: a stable opaque token.
    Obfuscated(u64),
}

impl ReportedDomain {
    /// The clear name, if this record was whitelisted.
    pub fn clear_name(&self) -> Option<&DomainName> {
        match self {
            ReportedDomain::Clear(name) => Some(name),
            ReportedDomain::Obfuscated(_) => None,
        }
    }

    /// True when the name survived in clear.
    pub fn is_clear(&self) -> bool {
        matches!(self, ReportedDomain::Clear(_))
    }
}

/// Per-home anonymizer holding the home's key and whitelist.
///
/// ```
/// use firmware::anonymize::Anonymizer;
/// use simnet::dns::DomainName;
/// use simnet::packet::MacAddr;
///
/// let anon = Anonymizer::new(0x5EED, [DomainName::new("netflix.com").unwrap()]);
/// let mac = MacAddr::from_oui_nic(0x00_17_F2, 0xABCDEF);
/// let hidden = anon.mac(mac);
/// assert_eq!(hidden.oui, 0x00_17_F2);      // manufacturer stays visible
/// assert_ne!(hidden.suffix_hash, 0xABCDEF); // the device does not
/// assert!(anon.domain(&DomainName::new("cdn.netflix.com").unwrap()).is_clear());
/// assert!(!anon.domain(&DomainName::new("secret.example").unwrap()).is_clear());
/// ```
#[derive(Debug, Clone)]
pub struct Anonymizer {
    key: u64,
    whitelist: BTreeSet<DomainName>,
}

impl Anonymizer {
    /// Build an anonymizer with a per-home key and the effective whitelist
    /// (default 200 names plus any user additions).
    pub fn new(key: u64, whitelist: impl IntoIterator<Item = DomainName>) -> Anonymizer {
        Anonymizer { key, whitelist: whitelist.into_iter().collect() }
    }

    /// Number of whitelisted names.
    pub fn whitelist_len(&self) -> usize {
        self.whitelist.len()
    }

    /// Add a user-whitelisted name (the router's web UI allowed this).
    pub fn add_to_whitelist(&mut self, name: DomainName) {
        self.whitelist.insert(name);
    }

    /// Anonymize a MAC: keep the OUI, hash the NIC bits.
    pub fn mac(&self, mac: MacAddr) -> AnonMac {
        AnonMac {
            oui: mac.oui(),
            suffix_hash: (keyed_mix(self.key, u64::from(mac.nic())) & 0xFF_FF_FF) as u32,
        }
    }

    /// Anonymize a domain per the whitelist rule. Matching is at base
    /// domain granularity (`cdn.netflix.com` matches a whitelisted
    /// `netflix.com`).
    pub fn domain(&self, name: &DomainName) -> ReportedDomain {
        let base = name.base_domain();
        if self.whitelist.contains(name) || self.whitelist.contains(&base) {
            ReportedDomain::Clear(base)
        } else {
            ReportedDomain::Obfuscated(hash_str(self.key, base.as_str()))
        }
    }

    /// Obfuscate a remote IP address for flow records.
    pub fn ip(&self, addr: Ipv4Addr) -> u64 {
        keyed_mix(self.key, u64::from(u32::from(addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    fn anon() -> Anonymizer {
        Anonymizer::new(0xDEAD_BEEF, [name("google.com"), name("netflix.com")])
    }

    #[test]
    fn mac_keeps_oui_hides_nic() {
        let a = anon();
        let mac = MacAddr::from_oui_nic(0x00_17_F2, 0x12_34_56);
        let am = a.mac(mac);
        assert_eq!(am.oui, 0x00_17_F2);
        assert_ne!(am.suffix_hash, 0x12_34_56);
        assert!(am.suffix_hash <= 0xFF_FF_FF);
    }

    #[test]
    fn mac_hash_stable_within_key_distinct_across_keys() {
        let mac = MacAddr::from_oui_nic(0x00_17_F2, 0xAB_CD_EF);
        let a = anon();
        assert_eq!(a.mac(mac), a.mac(mac));
        let other = Anonymizer::new(0x1234, []);
        assert_ne!(a.mac(mac).suffix_hash, other.mac(mac).suffix_hash);
    }

    #[test]
    fn distinct_nics_rarely_collide() {
        let a = anon();
        let mut seen = std::collections::HashSet::new();
        for nic in 0..2_000u32 {
            seen.insert(a.mac(MacAddr::from_oui_nic(0x00_17_F2, nic)).suffix_hash);
        }
        assert!(seen.len() > 1_990, "hash collisions too frequent: {}", seen.len());
    }

    #[test]
    fn whitelisted_domains_pass_in_clear() {
        let a = anon();
        assert_eq!(
            a.domain(&name("google.com")),
            ReportedDomain::Clear(name("google.com"))
        );
        // Subdomains of whitelisted bases match.
        assert_eq!(
            a.domain(&name("cdn.netflix.com")),
            ReportedDomain::Clear(name("netflix.com"))
        );
    }

    #[test]
    fn unlisted_domains_become_stable_tokens() {
        let a = anon();
        let r1 = a.domain(&name("secret-site.org"));
        let r2 = a.domain(&name("www.secret-site.org"));
        assert!(!r1.is_clear());
        assert_eq!(r1, r2, "same base domain must yield the same token");
        let r3 = a.domain(&name("other-site.org"));
        assert_ne!(r1, r3);
    }

    #[test]
    fn tokens_differ_across_homes() {
        let a = Anonymizer::new(1, []);
        let b = Anonymizer::new(2, []);
        assert_ne!(a.domain(&name("x.org")), b.domain(&name("x.org")));
    }

    #[test]
    fn user_whitelist_additions_take_effect() {
        let mut a = anon();
        assert!(!a.domain(&name("myuni.edu")).is_clear());
        a.add_to_whitelist(name("myuni.edu"));
        assert!(a.domain(&name("myuni.edu")).is_clear());
        assert_eq!(a.whitelist_len(), 3);
    }

    #[test]
    fn ip_obfuscation_stable_and_keyed() {
        let a = anon();
        let ip = Ipv4Addr::new(8, 8, 8, 8);
        assert_eq!(a.ip(ip), a.ip(ip));
        assert_ne!(a.ip(ip), a.ip(Ipv4Addr::new(8, 8, 4, 4)));
        let b = Anonymizer::new(999, []);
        assert_ne!(a.ip(ip), b.ip(ip));
    }
}
