//! Instrument-layer metric handles: what the gateway agent did.
//!
//! Heartbeat emission is the one genuinely hot firmware metric (one per
//! simulated minute per home), so the per-home simulation counts it in a
//! plain local `u64` and folds the total in through
//! [`FirmwareMetrics::add_heartbeats`] at end of run. Uploader totals come
//! straight from [`UploaderStats`]; backoff delays are recorded as they are
//! drawn (a handful per fault window) in **sim-time microseconds**.

use crate::uploader::UploaderStats;
use simnet::time::SimDuration;

/// Pre-registered handles for the firmware-layer metrics.
#[derive(Debug, Clone, Copy)]
pub struct FirmwareMetrics {
    /// Heartbeats the firmware sent (whether or not they survived the WAN).
    pub heartbeats_emitted: &'static obs::Counter,
    /// Upload attempts that failed and went into backoff (lost or nacked).
    pub uploader_retries: &'static obs::Counter,
    /// Batches sealed from the accumulation buffer.
    pub uploader_sealed: &'static obs::Counter,
    /// Batches acknowledged by the collector.
    pub uploader_acked: &'static obs::Counter,
    /// Batches evicted by the bounded spool.
    pub uploader_spool_evictions: &'static obs::Counter,
    /// Records destroyed by injected flash wipes.
    pub uploader_wiped_records: &'static obs::Counter,
    /// Backoff delays drawn after failed attempts, sim-time microseconds.
    pub uploader_backoff_delay: &'static obs::Histogram,
}

impl FirmwareMetrics {
    /// Register (or fetch) the firmware-layer handles.
    pub fn handles() -> FirmwareMetrics {
        FirmwareMetrics {
            heartbeats_emitted: obs::counter("heartbeats_emitted_total"),
            uploader_retries: obs::counter("uploader_retries_total"),
            uploader_sealed: obs::counter("uploader_sealed_total"),
            uploader_acked: obs::counter("uploader_acked_total"),
            uploader_spool_evictions: obs::counter("uploader_spool_evictions_total"),
            uploader_wiped_records: obs::counter("uploader_wiped_records_total"),
            uploader_backoff_delay: obs::histogram(
                "uploader_backoff_delay_micros",
                &obs::DURATION_BOUNDS_MICROS,
            ),
        }
    }

    /// Fold a home's heartbeat count (kept as a local `u64` on the hot
    /// path) into the global total.
    pub fn add_heartbeats(&self, n: u64) {
        self.heartbeats_emitted.add(n);
    }

    /// Record one backoff delay drawn after a failed upload attempt.
    pub fn record_backoff(&self, delay: SimDuration) {
        self.uploader_backoff_delay.record(delay.as_micros());
    }

    /// Fold one uploader's lifetime stats into the global totals.
    pub fn publish_uploader(&self, stats: &UploaderStats) {
        self.uploader_retries.add(stats.failed_attempts);
        self.uploader_sealed.add(stats.sealed_batches);
        self.uploader_acked.add(stats.acked_batches);
        self.uploader_spool_evictions.add(stats.evicted_batches);
        self.uploader_wiped_records.add(stats.wiped_records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uploader_stats_fold_into_counters() {
        let m = FirmwareMetrics::handles();
        let before = (m.uploader_retries.get(), m.uploader_sealed.get());
        m.publish_uploader(&UploaderStats {
            sealed_batches: 4,
            acked_batches: 3,
            failed_attempts: 2,
            evicted_batches: 1,
            evicted_records: 50,
            wiped_batches: 0,
            wiped_records: 0,
        });
        m.add_heartbeats(7);
        m.record_backoff(SimDuration::from_secs(30));
        assert_eq!(m.uploader_retries.get() - before.0, 2);
        assert_eq!(m.uploader_sealed.get() - before.1, 4);
    }
}
