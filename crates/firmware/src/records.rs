//! The measurement records the gateway uploads — one type per data set of
//! Table 2. These are the *only* things the collector ever sees; every
//! figure in the paper is computed from vectors of these records, never
//! from simulator-internal state.

use crate::anonymize::{AnonMac, ReportedDomain};
use serde::{Deserialize, Serialize};
use simnet::packet::IpProtocol;
use simnet::time::{SimDuration, SimTime};
use simnet::wifi::Band;

/// Identifier of the reporting router (equals the home id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

impl std::fmt::Display for RouterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bismark-{:03}", self.0)
    }
}

/// One received heartbeat (Heartbeats data set). The record is created by
/// the *collector* when a heartbeat packet survives the WAN path; lost
/// heartbeats leave gaps, which is the entire measurement signal of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Collector-side arrival time.
    pub at: SimTime,
}

/// A 12-hourly uptime report (Uptime data set): how long the router has
/// been powered since its last boot. Distinguishes "powered but offline"
/// from "powered off" at coarse granularity (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UptimeRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Report time.
    pub at: SimTime,
    /// Time since boot at `at`.
    pub uptime: SimDuration,
}

/// A 12-hourly access-link capacity measurement (Capacity data set),
/// produced by the ShaperProbe-style estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Measurement time.
    pub at: SimTime,
    /// Estimated downstream capacity in bits/s.
    pub down_bps: u64,
    /// Estimated upstream capacity in bits/s.
    pub up_bps: u64,
    /// True when the estimator detected token-bucket shaping (a level shift
    /// between the head and tail of the probe train).
    pub shaping_detected: bool,
}

/// An hourly device census (Devices data set): connected wired devices and
/// associated stations per radio. Coarse by design — counts, not
/// identities — so it required no written consent (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCensusRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Census time.
    pub at: SimTime,
    /// Devices on the Ethernet ports.
    pub wired: u8,
    /// Stations associated on the 2.4 GHz radio.
    pub wireless_24: u8,
    /// Stations associated on the 5 GHz radio.
    pub wireless_5: u8,
}

impl DeviceCensusRecord {
    /// Total connected devices.
    pub fn total(&self) -> u32 {
        u32::from(self.wired) + u32::from(self.wireless_24) + u32::from(self.wireless_5)
    }

    /// Total wireless stations.
    pub fn wireless_total(&self) -> u32 {
        u32::from(self.wireless_24) + u32::from(self.wireless_5)
    }
}

/// One AP sighting within a WiFi scan (WiFi data set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApSighting {
    /// Hash of the neighbor's BSSID (BSSIDs are infrastructure, not user
    /// PII, but the released data set hashed them anyway).
    pub bssid_hash: u64,
    /// Channel the AP was seen on.
    pub channel_number: u8,
    /// Received signal strength in dBm.
    pub signal_dbm: i8,
}

/// A periodic WiFi scan report (WiFi data set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WifiScanRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Scan time.
    pub at: SimTime,
    /// Band scanned.
    pub band: Band,
    /// APs seen on the configured channel.
    pub aps: Vec<ApSighting>,
    /// Stations associated to this radio at scan time.
    pub associated_stations: u8,
}

/// Aggregate packet statistics (Traffic data set, "packet statistics": the
/// size and timestamp of every relayed packet, aggregated at upload into
/// one-minute windows that keep the *maximum per-second throughput* seen in
/// the window — the exact quantity §6.2's utilization analysis uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketStatsRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Start of the one-minute window.
    pub at: SimTime,
    /// Bytes from the Internet to the LAN in the window.
    pub bytes_down: u64,
    /// Bytes from the LAN to the Internet in the window.
    pub bytes_up: u64,
    /// Downstream packets in the window.
    pub pkts_down: u64,
    /// Upstream packets in the window.
    pub pkts_up: u64,
    /// Maximum one-second downstream byte count within the window.
    pub peak_down_1s: u64,
    /// Maximum one-second upstream byte count within the window.
    pub peak_up_1s: u64,
}

impl PacketStatsRecord {
    /// Peak downstream throughput in bits/s (max per-second bytes × 8).
    pub fn peak_down_bps(&self) -> u64 {
        self.peak_down_1s * 8
    }

    /// Peak upstream throughput in bits/s.
    pub fn peak_up_bps(&self) -> u64 {
        self.peak_up_1s * 8
    }
}

/// A sampled flow record (Traffic data set, "flow statistics"): obfuscated
/// endpoints, anonymized device MAC, application port, byte counts, and
/// the domain the flow was attributed to via DNS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Flow start time.
    pub started: SimTime,
    /// Flow end time (record is emitted at completion).
    pub ended: SimTime,
    /// Anonymized device MAC.
    pub device: AnonMac,
    /// Obfuscated remote address.
    pub remote_ip_hash: u64,
    /// Remote (server) port — reveals the application class.
    pub remote_port: u16,
    /// Transport protocol.
    pub proto: IpProtocol,
    /// Domain attribution from the gateway's DNS view, whitelisted-or-token.
    pub domain: ReportedDomain,
    /// Bytes received by the device.
    pub bytes_down: u64,
    /// Bytes sent by the device.
    pub bytes_up: u64,
}

impl FlowRecord {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_down + self.bytes_up
    }
}

/// A sampled DNS answer (Traffic data set, "DNS responses"): A and CNAME
/// records with non-whitelisted names obfuscated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsSampleRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Response time.
    pub at: SimTime,
    /// Anonymized querying device.
    pub device: AnonMac,
    /// The queried name, whitelisted-or-token.
    pub name: ReportedDomain,
    /// Number of CNAME links in the answer chain.
    pub cname_links: u8,
    /// Whether the answer carried an A record.
    pub resolved: bool,
}

/// A device sighting with its anonymized MAC (Traffic data set, "MAC
/// addresses"): lets the analysis count manufacturer prevalence (Fig 12)
/// without identifying devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacSightingRecord {
    /// Reporting router.
    pub router: RouterId,
    /// First time the device was seen in the window.
    pub first_seen: SimTime,
    /// Anonymized MAC.
    pub device: AnonMac,
    /// Total traffic attributed to the device so far, in bytes (the Fig 12
    /// analysis keeps devices that moved ≥ 100 KB).
    pub bytes_total: u64,
}

/// The medium a device was seen on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Medium {
    /// An Ethernet port.
    Wired,
    /// The 2.4 GHz radio.
    Wireless24,
    /// The 5 GHz radio.
    Wireless5,
}

impl Medium {
    /// The wireless band, if any.
    pub fn band(self) -> Option<Band> {
        match self {
            Medium::Wired => None,
            Medium::Wireless24 => Some(Band::Ghz24),
            Medium::Wireless5 => Some(Band::Ghz5),
        }
    }
}

/// An hourly per-device association report (Devices data set companion):
/// which anonymized devices were connected, and on which medium. This is
/// what the per-home unique-device figures (Figs 7 and 10) and the
/// always-connected analysis (Table 5) are computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssociationRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Census time this report accompanies.
    pub at: SimTime,
    /// Anonymized device MAC.
    pub device: crate::anonymize::AnonMac,
    /// Where the device was attached.
    pub medium: Medium,
}

pub use crate::latency::LatencyRecord;
pub use crate::natprobe::NatType;

/// One completed STUN-style NAT characterization probe (NAT Probes data
/// set): the classified NAT type, the mapped endpoint the primary STUN
/// server reported, and whether the mapped address differed from the
/// gateway's own WAN address — the carrier-grade-NAT detection signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NatProbeRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Probe time.
    pub at: SimTime,
    /// The classified NAT type.
    pub nat_type: NatType,
    /// Hash of the mapped address the STUN server observed (see
    /// [`crate::natprobe::ip_hash`]); lets the analysis count distinct
    /// shared pool addresses without carrying raw IPs.
    pub mapped_ip_hash: u64,
    /// The mapped port the STUN server observed.
    pub mapped_port: u16,
    /// True when the mapped address differs from the gateway's WAN
    /// address: a second translation tier sits between home and internet.
    pub cgn_detected: bool,
}

/// One pairwise UDP hole-punch trial (Punch Trials data set): two homes
/// exchange mapped endpoints through an introducer and attempt a
/// simultaneous open; `success` records whether traffic flowed both ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PunchTrialRecord {
    /// Reporting router (the initiating side).
    pub router: RouterId,
    /// Trial time.
    pub at: SimTime,
    /// The peer home's router.
    pub peer: RouterId,
    /// This side's NAT type at trial time (the latest probe's verdict).
    pub local_type: NatType,
    /// The peer's NAT type, as exchanged through the introducer.
    pub peer_type: NatType,
    /// Did both sides receive at least one datagram?
    pub success: bool,
}

/// Everything a router can upload, as a single enum for transport through
/// the collector's ingestion path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the record types
pub enum Record {
    Heartbeat(HeartbeatRecord),
    Uptime(UptimeRecord),
    Capacity(CapacityRecord),
    DeviceCensus(DeviceCensusRecord),
    WifiScan(WifiScanRecord),
    PacketStats(PacketStatsRecord),
    Flow(FlowRecord),
    DnsSample(DnsSampleRecord),
    MacSighting(MacSightingRecord),
    Association(AssociationRecord),
    Latency(LatencyRecord),
    NatProbe(NatProbeRecord),
    PunchTrial(PunchTrialRecord),
}

impl Record {
    /// The reporting router.
    pub fn router(&self) -> RouterId {
        match self {
            Record::Heartbeat(r) => r.router,
            Record::Uptime(r) => r.router,
            Record::Capacity(r) => r.router,
            Record::DeviceCensus(r) => r.router,
            Record::WifiScan(r) => r.router,
            Record::PacketStats(r) => r.router,
            Record::Flow(r) => r.router,
            Record::DnsSample(r) => r.router,
            Record::MacSighting(r) => r.router,
            Record::Association(r) => r.router,
            Record::Latency(r) => r.router,
            Record::NatProbe(r) => r.router,
            Record::PunchTrial(r) => r.router,
        }
    }

    /// Shift every timestamp in the record forward by `offset` — the
    /// clock-skew fault: a gateway whose clock runs ahead stamps its
    /// records in its own skewed time, and the collector stores them as
    /// stamped. Heartbeats are exempt in practice because their `at` is
    /// assigned collector-side on arrival.
    pub fn shift_time(&mut self, offset: SimDuration) {
        match self {
            Record::Heartbeat(r) => r.at = r.at + offset,
            Record::Uptime(r) => r.at = r.at + offset,
            Record::Capacity(r) => r.at = r.at + offset,
            Record::DeviceCensus(r) => r.at = r.at + offset,
            Record::WifiScan(r) => r.at = r.at + offset,
            Record::PacketStats(r) => r.at = r.at + offset,
            Record::Flow(r) => {
                r.started = r.started + offset;
                r.ended = r.ended + offset;
            }
            Record::DnsSample(r) => r.at = r.at + offset,
            Record::MacSighting(r) => r.first_seen = r.first_seen + offset,
            Record::Association(r) => r.at = r.at + offset,
            Record::Latency(r) => r.at = r.at + offset,
            Record::NatProbe(r) => r.at = r.at + offset,
            Record::PunchTrial(r) => r.at = r.at + offset,
        }
    }

    /// The record's timestamp (collection-relevant instant).
    pub fn at(&self) -> SimTime {
        match self {
            Record::Heartbeat(r) => r.at,
            Record::Uptime(r) => r.at,
            Record::Capacity(r) => r.at,
            Record::DeviceCensus(r) => r.at,
            Record::WifiScan(r) => r.at,
            Record::PacketStats(r) => r.at,
            Record::Flow(r) => r.ended,
            Record::DnsSample(r) => r.at,
            Record::MacSighting(r) => r.first_seen,
            Record::Association(r) => r.at,
            Record::Latency(r) => r.at,
            Record::NatProbe(r) => r.at,
            Record::PunchTrial(r) => r.at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_totals() {
        let c = DeviceCensusRecord {
            router: RouterId(1),
            at: SimTime::EPOCH,
            wired: 2,
            wireless_24: 4,
            wireless_5: 1,
        };
        assert_eq!(c.total(), 7);
        assert_eq!(c.wireless_total(), 5);
    }

    #[test]
    fn record_dispatch() {
        let hb = Record::Heartbeat(HeartbeatRecord {
            router: RouterId(3),
            at: SimTime::from_micros(60_000_000),
        });
        assert_eq!(hb.router(), RouterId(3));
        assert_eq!(hb.at(), SimTime::from_micros(60_000_000));
    }

    #[test]
    fn records_serialize() {
        let rec = Record::Capacity(CapacityRecord {
            router: RouterId(5),
            at: SimTime::EPOCH,
            down_bps: 20_000_000,
            up_bps: 2_000_000,
            shaping_detected: true,
        });
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("20000000"));
    }

    #[test]
    fn records_round_trip() {
        use simnet::dns::DomainName;

        let records = vec![
            Record::Heartbeat(HeartbeatRecord {
                router: RouterId(3),
                at: SimTime::from_micros(60_000_000),
            }),
            Record::Capacity(CapacityRecord {
                router: RouterId(5),
                at: SimTime::EPOCH,
                down_bps: 20_000_000,
                up_bps: 2_000_000,
                shaping_detected: true,
            }),
            Record::WifiScan(WifiScanRecord {
                router: RouterId(7),
                at: SimTime::from_micros(1),
                band: Band::Ghz5,
                aps: vec![ApSighting { bssid_hash: 0xDEAD_BEEF, channel_number: 36, signal_dbm: -61 }],
                associated_stations: 2,
            }),
            Record::Flow(FlowRecord {
                router: RouterId(9),
                started: SimTime::EPOCH,
                ended: SimTime::from_micros(42),
                device: AnonMac { oui: 0x0017F2, suffix_hash: 0x1234 },
                remote_ip_hash: 99,
                remote_port: 443,
                proto: IpProtocol::Tcp,
                domain: ReportedDomain::Clear(DomainName::new("netflix.com").unwrap()),
                bytes_down: 4096,
                bytes_up: 512,
            }),
            Record::DnsSample(DnsSampleRecord {
                router: RouterId(9),
                at: SimTime::from_micros(7),
                device: AnonMac { oui: 0x0017F2, suffix_hash: 0x1234 },
                name: ReportedDomain::Obfuscated(0x5EC237),
                cname_links: 2,
                resolved: true,
            }),
        ];
        for rec in records {
            let json = serde_json::to_string(&rec).unwrap();
            let back: Record = serde_json::from_str(&json).unwrap();
            assert_eq!(back, rec, "round trip through {json}");
        }
    }
}
