//! ShaperProbe-style capacity estimation (§3.2.2, "Capacity" data set).
//!
//! Every twelve hours the router measures each direction of its access
//! link by sending a back-to-back train of MTU-sized packets *through the
//! link model* and reading the dispersion of their arrivals: consecutive
//! packets of size `B` leaving a bottleneck of rate `r` are spaced `8B/r`
//! apart, so the inter-arrival gaps reveal the rate.
//!
//! Like the real tool, the estimator also detects **token-bucket shaping**
//! ("PowerBoost"): a train long enough to drain the bucket sees a level
//! shift — early gaps at the peak rate, late gaps at the sustained rate.
//! The *sustained* rate is what gets recorded as capacity; the detection
//! bit rides along. Receiver timestamping jitter makes repeated estimates
//! vary a little, as the deployment's did.

use simnet::link::{Link, TxOutcome};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// Number of packets per probe train. Sized so the train outlasts the
/// burst phase of a shaped link (the bucket refills at the sustained rate
/// while draining at the peak rate, so the burst phase carries roughly
/// `bucket * peak / (peak - sustained)` bytes) and the tail gaps show the
/// sustained rate.
pub const TRAIN_LEN: usize = 512;
/// Probe packet size (MTU-sized UDP).
pub const PROBE_BYTES: u64 = 1_500;
/// Receiver timestamp jitter bound (one-sided, microseconds).
const JITTER_US: u64 = 60;
/// Peak/sustained ratio above which shaping is declared.
const SHAPING_THRESHOLD: f64 = 1.25;
/// Minimum delivered packets for a usable estimate.
const MIN_DELIVERED: usize = 32;
/// Pacing: when the probe's own backlog reaches half the CPE queue, hold
/// off until most of it drains. Keeps the queue non-empty (so departures
/// stay back-to-back at the bottleneck rate — dispersion is preserved)
/// without overflowing small buffers. The real tool paces its trains for
/// the same reason.
const PACE_FILL_FRACTION: f64 = 0.5;

/// Result of probing one direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEstimate {
    /// Estimated sustained capacity in bits/s.
    pub bps: u64,
    /// Estimated burst (peak) rate in bits/s; equals `bps` when no shaping
    /// was detected.
    pub peak_bps: u64,
    /// True when a head/tail level shift was observed.
    pub shaping_detected: bool,
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Run one probe train through `link` starting at `now`. Returns `None`
/// when too few packets survive (e.g. the queue was already full of cross
/// traffic) — the deployment's probes failed sometimes too.
pub fn probe_link(link: &mut Link, now: SimTime, rng: &mut DetRng) -> Option<ProbeEstimate> {
    let mut arrivals: Vec<SimTime> = Vec::with_capacity(TRAIN_LEN);
    let mut send_at = now;
    let fill_limit =
        (link.config().queue_limit_bytes as f64 * PACE_FILL_FRACTION) as u64;
    for _ in 0..TRAIN_LEN {
        if link.backlog_bytes(send_at) + PROBE_BYTES > fill_limit {
            // Wait for ~3/4 of the backlog to drain before continuing.
            let queue_delay = link.queueing_delay(send_at);
            send_at += queue_delay * 0.75;
        }
        match link.transmit(send_at, PROBE_BYTES) {
            TxOutcome::Delivered { at } => {
                // Receiver timestamping jitter.
                let jitter = SimDuration::from_micros(rng.uniform_int(0, JITTER_US));
                arrivals.push(at + jitter);
            }
            TxOutcome::Dropped => {}
        }
    }
    if arrivals.len() < MIN_DELIVERED {
        return None;
    }
    arrivals.sort();
    let gaps: Vec<f64> = arrivals
        .windows(2)
        .map(|w| w[1].since(w[0]).as_secs_f64())
        .filter(|&g| g > 0.0)
        .collect();
    if gaps.len() < MIN_DELIVERED / 2 {
        return None;
    }
    let rate_of = |gap: f64| PROBE_BYTES as f64 * 8.0 / gap;
    // Head: after the first few gaps settle; tail: the last quarter.
    let head_n = (gaps.len() / 8).max(8).min(gaps.len());
    let tail_n = (gaps.len() / 4).max(8).min(gaps.len());
    let mut head: Vec<f64> = gaps[..head_n].iter().map(|&g| rate_of(g)).collect();
    let mut tail: Vec<f64> = gaps[gaps.len() - tail_n..].iter().map(|&g| rate_of(g)).collect();
    let head_rate = median(&mut head);
    let tail_rate = median(&mut tail);
    let shaping = head_rate > SHAPING_THRESHOLD * tail_rate;
    Some(ProbeEstimate {
        bps: tail_rate as u64,
        peak_bps: if shaping { head_rate as u64 } else { tail_rate as u64 },
        shaping_detected: shaping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::link::LinkConfig;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn estimates_plain_link_within_five_percent() {
        for rate in [1_000_000u64, 6_000_000, 25_000_000, 95_000_000] {
            let mut link = Link::new(LinkConfig::simple(
                rate,
                SimDuration::from_millis(10),
                4 * 1024 * 1024,
            ));
            let mut rng = DetRng::new(rate);
            let est = probe_link(&mut link, t(0), &mut rng).expect("probe must succeed");
            let err = (est.bps as f64 - rate as f64).abs() / rate as f64;
            assert!(err < 0.05, "rate {rate}: est {} err {err}", est.bps);
            assert!(!est.shaping_detected, "no shaping on a plain link");
        }
    }

    #[test]
    fn detects_token_bucket_shaping() {
        // 10 Mbps sustained, 20 Mbps peak, 192 KB bucket: the 384 KB train
        // straddles the level shift.
        let cfg = LinkConfig::shaped(
            10_000_000,
            20_000_000,
            192 * 1024,
            SimDuration::from_millis(8),
            4 * 1024 * 1024,
        );
        let mut link = Link::new(cfg);
        let mut rng = DetRng::new(7);
        let est = probe_link(&mut link, t(0), &mut rng).expect("probe must succeed");
        assert!(est.shaping_detected, "level shift must be detected");
        let sustained_err = (est.bps as f64 - 10e6).abs() / 10e6;
        assert!(sustained_err < 0.08, "sustained est {}", est.bps);
        assert!(est.peak_bps > 15_000_000, "peak est {}", est.peak_bps);
    }

    #[test]
    fn repeated_probes_vary_but_stay_close() {
        let mut link = Link::new(LinkConfig::simple(
            8_000_000,
            SimDuration::from_millis(5),
            4 * 1024 * 1024,
        ));
        let mut rng = DetRng::new(11);
        let mut estimates = Vec::new();
        for i in 0..20u64 {
            // Space probes out so the queue drains between them.
            let est = probe_link(&mut link, t(i * 3_600), &mut rng).unwrap();
            estimates.push(est.bps as f64);
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let min = estimates.iter().cloned().fold(f64::MAX, f64::min);
        let max = estimates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "jitter must produce some variation");
        assert!((mean - 8e6).abs() / 8e6 < 0.05, "mean {mean}");
        assert!((max - min) / mean < 0.2, "spread too wide: {min}..{max}");
    }

    #[test]
    fn fails_cleanly_when_queue_cannot_hold_a_packet() {
        // A queue smaller than one probe packet drops the whole train.
        let mut link =
            Link::new(LinkConfig::simple(1_000_000, SimDuration::from_millis(5), 1_400));
        let mut rng = DetRng::new(13);
        assert_eq!(probe_link(&mut link, t(0), &mut rng), None);
    }

    #[test]
    fn pacing_survives_small_queues() {
        // A 10 KB queue cannot hold a burst, but the paced train still
        // measures the link.
        let mut link =
            Link::new(LinkConfig::simple(1_000_000, SimDuration::from_millis(5), 10_000));
        let mut rng = DetRng::new(13);
        let est = probe_link(&mut link, t(0), &mut rng).expect("paced probe succeeds");
        let err = (est.bps as f64 - 1e6).abs() / 1e6;
        assert!(err < 0.05, "est {}", est.bps);
        assert_eq!(link.stats().dropped_packets, 0, "pacing avoids drops");
    }

    #[test]
    fn bufferbloat_scale_queue_with_fast_shaped_link() {
        // The regression that motivated pacing: a 256 KB CPE queue on a
        // fast boosted link. A raw burst would drop two thirds of the
        // train and read back the peak rate; the paced train must find the
        // sustained rate.
        let rate = 86_000_000u64;
        let cfg = LinkConfig::shaped(rate, rate * 2, 192 * 1024, SimDuration::from_millis(8), 256 * 1024);
        let mut link = Link::new(cfg);
        let mut rng = DetRng::new(17);
        let est = probe_link(&mut link, t(0), &mut rng).expect("probe succeeds");
        assert!(est.shaping_detected, "shaping must be detected");
        let err = (est.bps as f64 - rate as f64).abs() / rate as f64;
        assert!(err < 0.10, "sustained est {} vs {rate}", est.bps);
    }

    #[test]
    fn deterministic_given_stream() {
        let mk = || Link::new(LinkConfig::simple(5_000_000, SimDuration::from_millis(5), 1 << 22));
        let a = probe_link(&mut mk(), t(0), &mut DetRng::new(3));
        let b = probe_link(&mut mk(), t(0), &mut DetRng::new(3));
        assert_eq!(a, b);
    }
}
