//! Passive traffic collection (the Traffic data set, consent-gated).
//!
//! The monitor sits at the gateway's LAN/WAN boundary and observes:
//!
//! * every DNS response (sampling A/CNAME records and learning the
//!   IP→domain map it uses to attribute flows to services);
//! * per-second aggregate packet statistics;
//! * flows, keyed by device MAC, emitted as records at completion with
//!   obfuscated remote addresses and whitelist-anonymized domains;
//! * device MAC sightings with cumulative volume (for the manufacturer
//!   histogram, which keeps devices above 100 KB).
//!
//! All identifiers pass through the [`Anonymizer`] before they are stored
//! in a record — raw MACs and unlisted names never leave this module.

use crate::anonymize::{Anonymizer, ReportedDomain};
use crate::records::{
    DnsSampleRecord, FlowRecord, MacSightingRecord, PacketStatsRecord, Record, RouterId,
};
use simnet::dns::{DnsResponse, RecordData};
use simnet::packet::MacAddr;
use simnet::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Metadata the monitor keeps per active flow.
#[derive(Debug, Clone)]
struct FlowMeta {
    started: SimTime,
    device: MacAddr,
    remote_ip: Ipv4Addr,
    remote_port: u16,
    proto: simnet::packet::IpProtocol,
    bytes_down: u64,
    bytes_up: u64,
}

/// The gateway's passive monitor. Created only for consenting households.
#[derive(Debug)]
pub struct TrafficMonitor {
    router: RouterId,
    anonymizer: Anonymizer,
    /// The gateway's DNS view: remote address → last domain that resolved
    /// to it. This is how the deployment attributed flows to services.
    ip_to_domain: HashMap<Ipv4Addr, simnet::dns::DomainName>,
    flows: HashMap<netstack::FlowId, FlowMeta>,
    /// Accumulator for the current one-second bucket: (second, down, up).
    second: Option<(SimTime, u64, u64)>,
    /// Accumulator for the current one-minute window.
    minute: Option<PacketStatsRecord>,
    device_bytes: HashMap<MacAddr, (SimTime, u64)>,
    out: Vec<Record>,
}

impl TrafficMonitor {
    /// A monitor for one consenting household.
    pub fn new(router: RouterId, anonymizer: Anonymizer) -> TrafficMonitor {
        TrafficMonitor {
            router,
            anonymizer,
            ip_to_domain: HashMap::new(),
            flows: HashMap::new(),
            second: None,
            minute: None,
            device_bytes: HashMap::new(),
            out: Vec::new(),
        }
    }

    /// Fold a (second, down, up) bucket into the current minute window,
    /// emitting the window when the minute rolls over.
    fn fold_second(&mut self, second: SimTime, down: u64, up: u64, pkts_down: u64, pkts_up: u64) {
        let minute_start = second.align_down(simnet::time::SimDuration::from_mins(1));
        let minute = self.minute.get_or_insert(PacketStatsRecord {
            router: self.router,
            at: minute_start,
            bytes_down: 0,
            bytes_up: 0,
            pkts_down: 0,
            pkts_up: 0,
            peak_down_1s: 0,
            peak_up_1s: 0,
        });
        if minute.at != minute_start {
            let finished = *minute;
            if finished.bytes_down + finished.bytes_up > 0 {
                self.out.push(Record::PacketStats(finished));
            }
            *minute = PacketStatsRecord {
                router: self.router,
                at: minute_start,
                bytes_down: 0,
                bytes_up: 0,
                pkts_down: 0,
                pkts_up: 0,
                peak_down_1s: 0,
                peak_up_1s: 0,
            };
        }
        minute.bytes_down += down;
        minute.bytes_up += up;
        minute.pkts_down += pkts_down;
        minute.pkts_up += pkts_up;
        minute.peak_down_1s = minute.peak_down_1s.max(down);
        minute.peak_up_1s = minute.peak_up_1s.max(up);
    }

    /// Account bytes into the current one-second bucket; rolls the previous
    /// bucket into the minute window when the second advances.
    fn account(&mut self, second_start: SimTime, down: u64, up: u64, pkts_down: u64, pkts_up: u64) {
        match &mut self.second {
            Some((at, d, u)) if *at == second_start => {
                *d += down;
                *u += up;
            }
            Some((at, d, u)) => {
                let (at, d, u) = (*at, *d, *u);
                // Packet counts are folded per call; bytes per bucket.
                self.fold_second(at, d, u, 0, 0);
                self.second = Some((second_start, down, up));
            }
            None => self.second = Some((second_start, down, up)),
        }
        // Packet counts go straight to the minute totals (their per-second
        // peak is not needed).
        if pkts_down + pkts_up > 0 {
            let minute_probe = second_start.align_down(simnet::time::SimDuration::from_mins(1));
            let minute = self.minute.get_or_insert(PacketStatsRecord {
                router: self.router,
                at: minute_probe,
                bytes_down: 0,
                bytes_up: 0,
                pkts_down: 0,
                pkts_up: 0,
                peak_down_1s: 0,
                peak_up_1s: 0,
            });
            minute.pkts_down += pkts_down;
            minute.pkts_up += pkts_up;
        }
    }

    /// Access to the anonymizer (e.g. for user whitelist additions).
    pub fn anonymizer_mut(&mut self) -> &mut Anonymizer {
        &mut self.anonymizer
    }

    /// Observe a DNS response relayed to `device`: sample the record and
    /// learn the IP→domain mapping.
    pub fn on_dns_response(&mut self, now: SimTime, device: MacAddr, response: &DnsResponse) {
        let mut cname_links = 0u8;
        let mut resolved = false;
        for answer in &response.answers {
            match &answer.data {
                RecordData::Cname(_) => cname_links = cname_links.saturating_add(1),
                RecordData::A(addr) => {
                    resolved = true;
                    self.ip_to_domain.insert(*addr, response.question.base_domain());
                }
            }
        }
        self.out.push(Record::DnsSample(DnsSampleRecord {
            router: self.router,
            at: now,
            device: self.anonymizer.mac(device),
            name: self.anonymizer.domain(&response.question),
            cname_links,
            resolved,
        }));
    }

    /// A new flow appeared at the NAT.
    pub fn on_flow_start(&mut self, flow: &netstack::Flow) {
        self.flows.insert(
            flow.id,
            FlowMeta {
                started: flow.started,
                device: flow.device,
                remote_ip: flow.remote.addr,
                remote_port: flow.remote.port,
                proto: flow.kind.protocol(),
                bytes_down: 0,
                bytes_up: 0,
            },
        );
        self.device_bytes.entry(flow.device).or_insert((flow.started, 0));
    }

    /// Per-tick progress for one flow plus the window it fell in.
    pub fn on_flow_progress(&mut self, window_start: SimTime, progress: &netstack::FlowProgress) {
        let meta = match self.flows.get_mut(&progress.id) {
            Some(m) => m,
            None => return, // flow predates monitoring (e.g. consent toggled)
        };
        meta.bytes_down += progress.bytes_down;
        meta.bytes_up += progress.bytes_up;
        let device = meta.device;
        if let Some((_, total)) = self.device_bytes.get_mut(&device) {
            *total += progress.bytes_down + progress.bytes_up;
        }
        self.account(
            window_start,
            progress.bytes_down,
            progress.bytes_up,
            progress.pkts_down,
            progress.pkts_up,
        );
    }

    /// Account upstream bytes that entered the uplink queue beyond what any
    /// flow delivered this second — bursts and retransmissions absorbed by
    /// a bloated CPE buffer. The gateway counts packets at LAN ingress, so
    /// these bytes inflate measured utilization above link capacity, which
    /// is precisely the paper's Fig 16 observation.
    pub fn add_uplink_burst(&mut self, second_start: SimTime, extra_bytes: u64) {
        if extra_bytes > 0 {
            self.account(second_start, 0, extra_bytes, 0, extra_bytes.div_ceil(1_420));
        }
    }

    /// A flow completed (or was aborted): emit its record. Flows that
    /// never moved a byte (e.g. cut off by a power-cycle in the same tick
    /// they opened) leave no record — the capture box never saw data.
    pub fn on_flow_end(&mut self, now: SimTime, id: netstack::FlowId) {
        let meta = match self.flows.remove(&id) {
            Some(m) => m,
            None => return,
        };
        if meta.bytes_down + meta.bytes_up == 0 {
            return;
        }
        let domain = match self.ip_to_domain.get(&meta.remote_ip) {
            Some(name) => self.anonymizer.domain(name),
            // No DNS context (cache hit before boot, hard-coded address):
            // all the gateway can report is the obfuscated address.
            None => ReportedDomain::Obfuscated(self.anonymizer.ip(meta.remote_ip)),
        };
        self.out.push(Record::Flow(FlowRecord {
            router: self.router,
            started: meta.started,
            ended: now,
            device: self.anonymizer.mac(meta.device),
            remote_ip_hash: self.anonymizer.ip(meta.remote_ip),
            remote_port: meta.remote_port,
            proto: meta.proto,
            domain,
            bytes_down: meta.bytes_down,
            bytes_up: meta.bytes_up,
        }));
    }

    /// Close the collection window: flush the pending second and minute and
    /// emit one MAC sighting per device seen.
    pub fn finalize(&mut self, _now: SimTime) {
        if let Some((at, d, u)) = self.second.take() {
            self.fold_second(at, d, u, 0, 0);
        }
        if let Some(minute) = self.minute.take() {
            if minute.bytes_down + minute.bytes_up > 0 {
                self.out.push(Record::PacketStats(minute));
            }
        }
        let mut sightings: Vec<MacSightingRecord> = self
            .device_bytes
            // simlint: allow(nondeterministic-iteration) — the sort below re-keys by the total (first_seen, device) key, so collection order never reaches the record stream
            .iter()
            .map(|(mac, (first_seen, bytes))| MacSightingRecord {
                router: self.router,
                first_seen: *first_seen,
                device: self.anonymizer.mac(*mac),
                bytes_total: *bytes,
            })
            .collect();
        sightings.sort_by_key(|s| (s.first_seen, s.device));
        self.out.extend(sightings.into_iter().map(Record::MacSighting));
    }

    /// Drain records accumulated so far (upload to the collector).
    pub fn drain(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.out)
    }

    /// Number of flows currently tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::{AppKind, Flow, FlowId, FlowProgress};
    use simnet::dns::{DnsRecord, DomainName};
    use simnet::packet::Endpoint;
    use simnet::time::SimDuration;

    fn name(s: &str) -> DomainName {
        DomainName::new(s).unwrap()
    }

    fn monitor() -> TrafficMonitor {
        TrafficMonitor::new(
            RouterId(7),
            Anonymizer::new(0xABCD, [name("netflix.com"), name("google.com")]),
        )
    }

    fn mk_flow(id: u64, remote: Ipv4Addr) -> Flow {
        Flow {
            id: FlowId(id),
            device: MacAddr::from_oui_nic(0x00_17_F2, 0x111111),
            local: Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 40_000),
            remote: Endpoint::new(remote, 443),
            domain: name("netflix.com"),
            kind: AppKind::StreamingVideo,
            started: SimTime::EPOCH,
            remaining_down: 1_000_000,
            remaining_up: 10_000,
            rate_cap_bps: Some(4_000_000),
            rate_cap_up_bps: Some(100_000),
            saturated_ticks: 0,
        }
    }

    fn dns_response(question: &str, addr: Ipv4Addr) -> DnsResponse {
        DnsResponse {
            id: 1,
            question: name(question),
            answers: vec![DnsRecord {
                name: name(question),
                data: RecordData::A(addr),
                ttl: SimDuration::from_secs(300),
            }],
        }
    }

    fn one_byte(mon: &mut TrafficMonitor, id: u64) {
        mon.on_flow_progress(
            SimTime::EPOCH,
            &FlowProgress { id: FlowId(id), bytes_down: 1, bytes_up: 0, pkts_down: 1, pkts_up: 0 },
        );
    }

    #[test]
    fn dns_learns_attribution_and_samples() {
        let mut mon = monitor();
        let server = Ipv4Addr::new(23, 64, 1, 10);
        let device = MacAddr::from_oui_nic(0x00_17_F2, 0x111111);
        mon.on_dns_response(SimTime::EPOCH, device, &dns_response("netflix.com", server));
        let flow = mk_flow(1, server);
        mon.on_flow_start(&flow);
        one_byte(&mut mon, 1);
        mon.on_flow_end(SimTime::EPOCH + SimDuration::from_secs(60), flow.id);
        let records = mon.drain();
        let dns: Vec<&Record> =
            records.iter().filter(|r| matches!(r, Record::DnsSample(_))).collect();
        assert_eq!(dns.len(), 1);
        let flow_rec = records
            .iter()
            .find_map(|r| match r {
                Record::Flow(f) => Some(f),
                _ => None,
            })
            .expect("flow record emitted");
        assert_eq!(flow_rec.domain, ReportedDomain::Clear(name("netflix.com")));
    }

    #[test]
    fn unlisted_domain_is_obfuscated_but_stable() {
        let mut mon = monitor();
        let server = Ipv4Addr::new(23, 64, 2, 10);
        let device = MacAddr::from_oui_nic(0x00_17_F2, 0x111111);
        mon.on_dns_response(SimTime::EPOCH, device, &dns_response("hidden.example", server));
        for id in [2u64, 3] {
            let flow = mk_flow(id, server);
            mon.on_flow_start(&flow);
            one_byte(&mut mon, id);
            mon.on_flow_end(SimTime::EPOCH + SimDuration::from_secs(1), flow.id);
        }
        let records = mon.drain();
        let flows: Vec<&FlowRecord> = records
            .iter()
            .filter_map(|r| match r {
                Record::Flow(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(flows.len(), 2);
        assert!(!flows[0].domain.is_clear());
        assert_eq!(flows[0].domain, flows[1].domain, "token must be stable");
    }

    #[test]
    fn unknown_ip_falls_back_to_ip_hash() {
        let mut mon = monitor();
        let flow = mk_flow(9, Ipv4Addr::new(198, 51, 100, 77));
        mon.on_flow_start(&flow);
        one_byte(&mut mon, 9);
        mon.on_flow_end(SimTime::EPOCH, flow.id);
        let records = mon.drain();
        match &records[0] {
            Record::Flow(f) => assert!(!f.domain.is_clear()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minute_windows_keep_per_second_peaks() {
        let mut mon = monitor();
        let flow = mk_flow(1, Ipv4Addr::new(23, 64, 1, 10));
        mon.on_flow_start(&flow);
        let s0 = SimTime::EPOCH;
        let s1 = SimTime::EPOCH + SimDuration::from_secs(1);
        let s90 = SimTime::EPOCH + SimDuration::from_secs(90);
        let p = |bytes| FlowProgress {
            id: FlowId(1),
            bytes_down: bytes,
            bytes_up: 10,
            pkts_down: bytes / 1_420 + 1,
            pkts_up: 1,
        };
        mon.on_flow_progress(s0, &p(100_000));
        mon.on_flow_progress(s0, &p(50_000)); // same second: 150 KB
        mon.on_flow_progress(s1, &p(10_000));
        mon.on_flow_progress(s90, &p(7_000)); // next minute
        mon.finalize(s90 + SimDuration::from_secs(1));
        let stats: Vec<&PacketStatsRecord> = mon
            .out
            .iter()
            .filter_map(|r| match r {
                Record::PacketStats(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(stats.len(), 2, "two minute windows");
        assert_eq!(stats[0].bytes_down, 160_000);
        assert_eq!(stats[0].peak_down_1s, 150_000, "peak second within minute");
        assert_eq!(stats[1].bytes_down, 7_000);
        assert_eq!(stats[1].at, SimTime::EPOCH + SimDuration::from_mins(1));
    }

    #[test]
    fn uplink_bursts_inflate_upstream_counters() {
        let mut mon = monitor();
        let flow = mk_flow(1, Ipv4Addr::new(23, 64, 1, 10));
        mon.on_flow_start(&flow);
        let s0 = SimTime::EPOCH;
        mon.on_flow_progress(
            s0,
            &FlowProgress { id: FlowId(1), bytes_down: 0, bytes_up: 25_000, pkts_down: 0, pkts_up: 18 },
        );
        mon.add_uplink_burst(s0, 10_000);
        mon.finalize(s0 + SimDuration::from_mins(2));
        let stats = mon
            .out
            .iter()
            .find_map(|r| match r {
                Record::PacketStats(s) => Some(*s),
                _ => None,
            })
            .unwrap();
        assert_eq!(stats.bytes_up, 35_000, "burst bytes counted at LAN ingress");
        assert_eq!(stats.peak_up_1s, 35_000);
    }

    #[test]
    fn flow_totals_accumulate_across_ticks() {
        let mut mon = monitor();
        let flow = mk_flow(1, Ipv4Addr::new(23, 64, 1, 10));
        mon.on_flow_start(&flow);
        for i in 0..5u64 {
            mon.on_flow_progress(
                SimTime::EPOCH + SimDuration::from_secs(i),
                &FlowProgress {
                    id: FlowId(1),
                    bytes_down: 1_000,
                    bytes_up: 100,
                    pkts_down: 1,
                    pkts_up: 1,
                },
            );
        }
        mon.on_flow_end(SimTime::EPOCH + SimDuration::from_secs(5), FlowId(1));
        let records = mon.drain();
        let f = records
            .iter()
            .find_map(|r| match r {
                Record::Flow(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert_eq!(f.bytes_down, 5_000);
        assert_eq!(f.bytes_up, 500);
        assert_eq!(f.total_bytes(), 5_500);
    }

    #[test]
    fn mac_sightings_carry_cumulative_volume() {
        let mut mon = monitor();
        let flow = mk_flow(1, Ipv4Addr::new(23, 64, 1, 10));
        mon.on_flow_start(&flow);
        mon.on_flow_progress(
            SimTime::EPOCH,
            &FlowProgress { id: FlowId(1), bytes_down: 200_000, bytes_up: 0, pkts_down: 141, pkts_up: 0 },
        );
        mon.finalize(SimTime::EPOCH + SimDuration::from_secs(10));
        let records = mon.drain();
        let sighting = records
            .iter()
            .find_map(|r| match r {
                Record::MacSighting(s) => Some(s),
                _ => None,
            })
            .expect("sighting emitted");
        assert_eq!(sighting.bytes_total, 200_000);
        assert_eq!(sighting.device.oui, 0x00_17_F2);
    }

    #[test]
    fn zero_byte_flows_leave_no_record() {
        let mut mon = monitor();
        let flow = mk_flow(4, Ipv4Addr::new(23, 64, 1, 10));
        mon.on_flow_start(&flow);
        mon.on_flow_end(SimTime::EPOCH, flow.id);
        assert!(mon.drain().is_empty(), "a data-less flow is invisible to the capture");
    }

    #[test]
    fn progress_for_unknown_flow_is_ignored() {
        let mut mon = monitor();
        mon.on_flow_progress(
            SimTime::EPOCH,
            &FlowProgress { id: FlowId(99), bytes_down: 1, bytes_up: 1, pkts_down: 1, pkts_up: 1 },
        );
        mon.on_flow_end(SimTime::EPOCH, FlowId(99));
        assert!(mon.drain().is_empty());
    }
}
