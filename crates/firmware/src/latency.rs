//! Last-mile latency probing — the BISmark platform capability behind the
//! authors' companion performance study ("Broadband Internet Performance:
//! A View from the Gateway", the paper's reference [32]).
//!
//! Every probe round sends a small train of ICMP echo requests through the
//! access link to the nearest measurement server and reads the RTT
//! distribution from the replies. Under load the requests queue behind
//! bulk traffic in the (bloated) CPE buffer, so the *loaded* RTT measures
//! bufferbloat directly — the paper's §6.2 latency complaint made visible.

use crate::records::RouterId;
use serde::{Deserialize, Serialize};
use simnet::icmp::IcmpEcho;
use simnet::link::{Link, TxOutcome, WanPath};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

/// Pings per probe round.
pub const PING_TRAIN: u16 = 10;
/// Ping payload size (timestamp cookie + padding, classic 56-byte ping).
pub const PING_PAYLOAD: usize = 56;

/// One latency measurement (a data set the platform collected alongside
/// the six the paper analyzes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyRecord {
    /// Reporting router.
    pub router: RouterId,
    /// Probe time.
    pub at: SimTime,
    /// Minimum RTT over the train.
    pub rtt_min: SimDuration,
    /// Median RTT.
    pub rtt_median: SimDuration,
    /// Maximum RTT.
    pub rtt_max: SimDuration,
    /// Echo requests that got no reply.
    pub lost: u8,
}

/// Run one ping round at `now`: requests traverse the uplink (queueing
/// behind whatever is buffered there), then the WAN path, then return.
/// Returns `None` when every probe was lost.
pub fn probe_latency(
    router: RouterId,
    now: SimTime,
    up_link: &mut Link,
    wan: &WanPath,
    rng: &mut DetRng,
) -> Option<LatencyRecord> {
    let mut rtts: Vec<SimDuration> = Vec::with_capacity(PING_TRAIN as usize);
    let mut lost = 0u8;
    for seq in 0..PING_TRAIN {
        let echo = IcmpEcho::request(router.0 as u16, seq, vec![0xA5; PING_PAYLOAD]);
        let wire_len = (echo.wire_len() + 20) as u64; // + IPv4 header
        // Pings are paced 100 ms apart, as ping(8) does by default... the
        // deployment used sub-second spacing; 100 ms keeps the train short.
        let send_at = now + SimDuration::from_millis(100) * u64::from(seq);
        match up_link.transmit(send_at, wire_len) {
            TxOutcome::Delivered { at } => {
                if !wan.survives(rng) || !wan.survives(rng) {
                    // Forward or return leg lost.
                    lost += 1;
                    continue;
                }
                // Reply path: transit out and back plus a small server turn
                // and downstream serialization (negligible for 84 bytes).
                let reply = echo.reply_to();
                debug_assert_eq!(IcmpEcho::parse(&reply.emit()).map(|e| e.seq), Ok(seq));
                let rtt = at.since(send_at)
                    + wan.transit_delay
                    + wan.transit_delay
                    + SimDuration::from_micros(rng.uniform_int(100, 900));
                rtts.push(rtt);
            }
            TxOutcome::Dropped => lost += 1,
        }
    }
    if rtts.is_empty() {
        return None;
    }
    rtts.sort();
    Some(LatencyRecord {
        router,
        at: now,
        rtt_min: rtts[0],
        rtt_median: rtts[rtts.len() / 2],
        rtt_max: *rtts.last().expect("non-empty"),
        lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::link::LinkConfig;

    fn t(secs: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_secs(secs)
    }

    fn wan() -> WanPath {
        WanPath { transit_delay: SimDuration::from_millis(20), loss_prob: 0.0 }
    }

    #[test]
    fn idle_link_rtt_near_propagation() {
        let mut link =
            Link::new(LinkConfig::simple(5_000_000, SimDuration::from_millis(10), 256 * 1024));
        let mut rng = DetRng::new(1);
        let rec = probe_latency(RouterId(1), t(0), &mut link, &wan(), &mut rng).unwrap();
        assert_eq!(rec.lost, 0);
        // 10 ms access + 2×20 ms transit + ~0.1 ms serialization.
        assert!(rec.rtt_min >= SimDuration::from_millis(50));
        assert!(rec.rtt_max < SimDuration::from_millis(55), "idle RTT {}", rec.rtt_max);
    }

    #[test]
    fn bufferbloat_inflates_loaded_rtt() {
        let cfg = LinkConfig::simple(1_000_000, SimDuration::from_millis(10), 256 * 1024);
        let mut idle = Link::new(cfg);
        let mut loaded = Link::new(cfg);
        // Preload the bloated queue with 200 KB of bulk upload.
        for _ in 0..133 {
            loaded.transmit(t(0), 1_500);
        }
        let mut rng = DetRng::new(2);
        let idle_rec = probe_latency(RouterId(1), t(0), &mut idle, &wan(), &mut rng).unwrap();
        let loaded_rec =
            probe_latency(RouterId(1), t(0), &mut loaded, &wan(), &mut rng).unwrap();
        assert!(
            loaded_rec.rtt_median > idle_rec.rtt_median + SimDuration::from_millis(500),
            "bufferbloat must add most of a second: idle {} loaded {}",
            idle_rec.rtt_median,
            loaded_rec.rtt_median
        );
    }

    #[test]
    fn losses_counted() {
        let mut link =
            Link::new(LinkConfig::simple(5_000_000, SimDuration::from_millis(5), 256 * 1024));
        let lossy = WanPath { transit_delay: SimDuration::from_millis(20), loss_prob: 0.4 };
        let mut rng = DetRng::new(3);
        let rec = probe_latency(RouterId(1), t(0), &mut link, &lossy, &mut rng).unwrap();
        assert!(rec.lost > 0, "40% per-leg loss must lose some probes");
        assert!(rec.lost < PING_TRAIN as u8, "but not all of them");
    }

    #[test]
    fn all_lost_yields_none() {
        let mut link =
            Link::new(LinkConfig::simple(5_000_000, SimDuration::from_millis(5), 256 * 1024));
        let dead = WanPath { transit_delay: SimDuration::from_millis(20), loss_prob: 1.0 };
        let mut rng = DetRng::new(4);
        assert_eq!(probe_latency(RouterId(1), t(0), &mut link, &dead, &mut rng), None);
    }

    #[test]
    fn ordering_min_median_max() {
        let mut link =
            Link::new(LinkConfig::simple(2_000_000, SimDuration::from_millis(8), 256 * 1024));
        let mut rng = DetRng::new(5);
        let rec = probe_latency(RouterId(1), t(0), &mut link, &wan(), &mut rng).unwrap();
        assert!(rec.rtt_min <= rec.rtt_median && rec.rtt_median <= rec.rtt_max);
    }
}
