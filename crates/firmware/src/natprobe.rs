//! STUN-style NAT-type characterization (the RFC 3489 Test1/2/3 dance).
//!
//! The paper could only peek behind *home* NATs from the inside; this
//! module gives the firmware the standard outside-in experiment: send
//! binding requests to two cooperating STUN servers and observe (a) the
//! mapped address each reports back and (b) which unsolicited reply
//! directions the translation path admits. The decision tree classifies
//! the path as open, full-cone, address-restricted, port-restricted, or
//! symmetric, and comparing the mapped address against the gateway's own
//! WAN address detects a carrier-grade NAT tier the home router cannot
//! otherwise see.
//!
//! The probe is generic over a [`UdpPath`]: the simulation supplies the
//! real translation chain (home NAT, optionally fronted by a CGN hop), so
//! the classification is a mechanical consequence of the path's mapping
//! and filtering behavior, never a label copied from ground truth.

use serde::{Deserialize, Serialize};
use simnet::packet::Endpoint;
use simnet::time::SimTime;
use std::net::Ipv4Addr;

/// The NAT type the Test1/2/3 decision tree can conclude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NatType {
    /// No translation: the mapped address equals the local address.
    Open,
    /// Endpoint-independent mapping and filtering: anyone may reply to
    /// the mapped endpoint.
    FullCone,
    /// Endpoint-independent mapping, address-restricted filtering: only
    /// previously contacted *addresses* get through.
    Restricted,
    /// Endpoint-independent mapping, address-and-port-restricted
    /// filtering: only previously contacted (address, port) pairs.
    PortRestricted,
    /// Endpoint-dependent mapping: every destination sees a different
    /// mapped port, so reply paths learned from third parties are useless.
    Symmetric,
}

impl NatType {
    /// Every classifiable type, in severity order.
    pub const ALL: [NatType; 5] = [
        NatType::Open,
        NatType::FullCone,
        NatType::Restricted,
        NatType::PortRestricted,
        NatType::Symmetric,
    ];

    /// Stable wire code for columnar storage.
    pub fn code(self) -> u8 {
        match self {
            NatType::Open => 0,
            NatType::FullCone => 1,
            NatType::Restricted => 2,
            NatType::PortRestricted => 3,
            NatType::Symmetric => 4,
        }
    }

    /// Decode a wire code written by [`NatType::code`].
    pub fn from_code(code: u8) -> Option<NatType> {
        NatType::ALL.into_iter().find(|t| t.code() == code)
    }

    /// Human-readable name, as rendered in the report.
    pub fn name(self) -> &'static str {
        match self {
            NatType::Open => "open",
            NatType::FullCone => "full-cone",
            NatType::Restricted => "restricted",
            NatType::PortRestricted => "port-restricted",
            NatType::Symmetric => "symmetric",
        }
    }
}

impl std::fmt::Display for NatType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The two cooperating STUN servers the experiment probes against. Both
/// answer binding requests on `port`; "change address" / "change port"
/// replies come from the other server and/or `alt_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StunServers {
    /// Primary server address.
    pub primary: Ipv4Addr,
    /// Alternate server address (different IP, for the Test2 change-address
    /// reply and the second Test1).
    pub alternate: Ipv4Addr,
    /// Binding-request port on both servers.
    pub port: u16,
    /// Alternate source port for change-port replies.
    pub alt_port: u16,
}

/// The deployment's simulated STUN infrastructure (TEST-NET-1 addresses,
/// so they can never collide with home WAN or CGN pool space).
pub const STUN_SERVERS: StunServers = StunServers {
    primary: Ipv4Addr::new(192, 0, 2, 10),
    alternate: Ipv4Addr::new(192, 0, 2, 20),
    port: 3478,
    alt_port: 3479,
};

/// The translation path a probe exercises: everything between the
/// gateway's LAN-side socket and the open internet (home NAT alone, or
/// home NAT behind a CGN box).
pub trait UdpPath {
    /// Send one UDP datagram from the local endpoint to `dst`. Returns the
    /// source endpoint as the destination server observes it (the "mapped
    /// address"), or `None` if the path refused the packet (port space or
    /// CGN block exhausted).
    fn send(&mut self, now: SimTime, src: Endpoint, dst: Endpoint) -> Option<Endpoint>;

    /// Would an inbound datagram from `from`, addressed to the public
    /// endpoint `to`, traverse the path back to the host? Pure filtering
    /// question: implementations must not create mappings here.
    fn admits(&mut self, now: SimTime, from: Endpoint, to: Endpoint) -> bool;
}

/// What one completed probe learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The classified NAT type.
    pub nat_type: NatType,
    /// The mapped endpoint the primary server reported (Test1).
    pub mapped: Endpoint,
}

/// Run the RFC 3489 decision tree over `path` from the local endpoint
/// `local`. Returns `None` when the path drops the very first binding
/// request (an exhausted translator), in which case nothing was learned.
pub fn classify(
    path: &mut impl UdpPath,
    now: SimTime,
    local: Endpoint,
    servers: &StunServers,
) -> Option<ProbeOutcome> {
    let s1 = Endpoint::new(servers.primary, servers.port);
    let s2 = Endpoint::new(servers.alternate, servers.port);
    // Test1 against the primary server: learn the mapped address.
    let mapped = path.send(now, local, s1)?;
    if mapped == local {
        return Some(ProbeOutcome { nat_type: NatType::Open, mapped });
    }
    // Test2: the primary relays a reply sourced from the *alternate*
    // server's address and the alternate port — different address AND
    // port. Only endpoint-independent filtering lets it through.
    if path.admits(now, Endpoint::new(servers.alternate, servers.alt_port), mapped) {
        return Some(ProbeOutcome { nat_type: NatType::FullCone, mapped });
    }
    // Test1 against the alternate server: a different mapped endpoint
    // means the mapping depends on the destination — symmetric.
    let mapped2 = path.send(now, local, s2)?;
    if mapped2 != mapped {
        return Some(ProbeOutcome { nat_type: NatType::Symmetric, mapped });
    }
    // Test3: reply from the primary server's address but the alternate
    // port — same address, different port. Address-restricted filtering
    // admits it; address-and-port-restricted does not.
    let nat_type = if path.admits(now, Endpoint::new(servers.primary, servers.alt_port), mapped) {
        NatType::Restricted
    } else {
        NatType::PortRestricted
    };
    Some(ProbeOutcome { nat_type, mapped })
}

/// Deterministic, unkeyed FNV-1a hash of an IPv4 address, used to store
/// mapped addresses in the `nat_probes` table without carrying raw
/// `Ipv4Addr` columns. Mapped addresses are simulated infrastructure
/// (shared CGN pools), not user data, and the table never reaches the
/// public export; the hash only needs to be stable and collision-free
/// over the handful of pool addresses a study uses.
pub fn ip_hash(addr: Ipv4Addr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.octets() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted path: endpoint-independent mapping to a fixed public
    /// endpoint with configurable filtering, enough to drive every branch
    /// of the decision tree.
    struct FakePath {
        mapped: Endpoint,
        /// Second Test1 answer (differs for symmetric paths).
        mapped2: Endpoint,
        admit_any: bool,
        admit_same_addr: bool,
        sent_to: Vec<Endpoint>,
    }

    impl UdpPath for FakePath {
        fn send(&mut self, _now: SimTime, _src: Endpoint, dst: Endpoint) -> Option<Endpoint> {
            self.sent_to.push(dst);
            Some(if self.sent_to.len() >= 2 { self.mapped2 } else { self.mapped })
        }

        fn admits(&mut self, _now: SimTime, from: Endpoint, _to: Endpoint) -> bool {
            if self.admit_any {
                return true;
            }
            self.admit_same_addr && self.sent_to.iter().any(|d| d.addr == from.addr)
        }
    }

    fn local() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(192, 168, 1, 10), 5000)
    }

    fn mapped() -> Endpoint {
        Endpoint::new(Ipv4Addr::new(100, 64, 0, 9), 1024)
    }

    fn run(path: &mut FakePath) -> ProbeOutcome {
        classify(path, SimTime::EPOCH, local(), &STUN_SERVERS).expect("path never drops")
    }

    #[test]
    fn open_path_classifies_open() {
        let mut p = FakePath {
            mapped: local(),
            mapped2: local(),
            admit_any: true,
            admit_same_addr: true,
            sent_to: Vec::new(),
        };
        assert_eq!(run(&mut p).nat_type, NatType::Open);
    }

    #[test]
    fn full_cone_admits_changed_address_and_port() {
        let mut p = FakePath {
            mapped: mapped(),
            mapped2: mapped(),
            admit_any: true,
            admit_same_addr: true,
            sent_to: Vec::new(),
        };
        let out = run(&mut p);
        assert_eq!(out.nat_type, NatType::FullCone);
        assert_eq!(out.mapped, mapped());
    }

    #[test]
    fn symmetric_changes_mapping_per_destination() {
        let mut p = FakePath {
            mapped: mapped(),
            mapped2: Endpoint::new(mapped().addr, 2048),
            admit_any: false,
            admit_same_addr: false,
            sent_to: Vec::new(),
        };
        assert_eq!(run(&mut p).nat_type, NatType::Symmetric);
    }

    #[test]
    fn restricted_vs_port_restricted_split_on_test3() {
        let mut addr_only = FakePath {
            mapped: mapped(),
            mapped2: mapped(),
            admit_any: false,
            admit_same_addr: true,
            sent_to: Vec::new(),
        };
        assert_eq!(run(&mut addr_only).nat_type, NatType::Restricted);
        let mut strict = FakePath {
            mapped: mapped(),
            mapped2: mapped(),
            admit_any: false,
            admit_same_addr: false,
            sent_to: Vec::new(),
        };
        assert_eq!(run(&mut strict).nat_type, NatType::PortRestricted);
    }

    #[test]
    fn codes_round_trip() {
        for t in NatType::ALL {
            assert_eq!(NatType::from_code(t.code()), Some(t));
        }
        assert_eq!(NatType::from_code(9), None);
    }

    #[test]
    fn ip_hash_distinguishes_pool_addresses() {
        let a = ip_hash(Ipv4Addr::new(198, 18, 0, 1));
        let b = ip_hash(Ipv4Addr::new(198, 18, 0, 2));
        assert_ne!(a, b);
        assert_eq!(a, ip_hash(Ipv4Addr::new(198, 18, 0, 1)), "hash is stable");
    }
}
