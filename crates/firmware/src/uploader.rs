//! Store-and-forward upload queue — the gateway's answer to an unreliable
//! path to the collector.
//!
//! The real BISmark firmware spooled measurement files on flash and pushed
//! them with a retrying uploader; §3.3 of the paper concedes that "various
//! outages and failures" of both routers and the collection infrastructure
//! shaped every dataset. This module reproduces that delivery layer:
//!
//! * records accumulate in the caller's buffer and are **sealed** into
//!   sequence-numbered batches (seq starts at 1, never reused);
//! * sealed batches wait in a spool and are offered to the collector
//!   oldest-first; a failed attempt backs off exponentially (capped, with
//!   jitter drawn from the caller's deterministic stream);
//! * the spool is bounded: when it overflows, the *oldest* batch is evicted
//!   and the loss is accounted for as a [`GapDecl`] instead of vanishing;
//! * a flash-wipe reboot loses the spool and any unsealed records, again
//!   with full gap accounting. The sequence counter and the pending gap
//!   declarations survive a wipe — they model the tiny NVRAM journal a real
//!   uploader keeps outside the wiped filesystem.
//!
//! Gap declarations ride along with the next successful upload so the
//! collector can advance its per-router watermark past the missing batches
//! and record the loss in its gap ledger — lost data is *declared*, never
//! silent.
//!
//! The steady state (seal → deliver → ack) recycles batch buffers through a
//! free pool and touches the heap zero times per cycle; this is enforced by
//! the counting-allocator test in `tests/alloc.rs`, the same guarantee the
//! heartbeat wire path carries.

use crate::records::Record;
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Why a range of batches never reached the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GapCause {
    /// The spool hit its bound and the oldest batch was evicted.
    Evicted,
    /// A flash-wipe reboot destroyed the spooled data.
    FlashWipe,
}

/// A declaration that the batches `first_seq..=last_seq` are gone for good.
///
/// Sent to the collector with subsequent uploads; applied idempotently
/// there, advancing the router's watermark past the hole and producing one
/// gap-ledger row per declaration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapDecl {
    /// First lost batch (inclusive).
    pub first_seq: u64,
    /// Last lost batch (inclusive).
    pub last_seq: u64,
    /// Records lost across the declared range.
    pub records_lost: u64,
    /// Earliest record timestamp in the lost range.
    pub from: SimTime,
    /// Latest record timestamp in the lost range.
    pub to: SimTime,
    /// What destroyed the data.
    pub cause: GapCause,
}

/// Tuning knobs for the upload queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UploaderConfig {
    /// Seal a batch once this many records have accumulated. (The caller
    /// owns the accumulation buffer; this is the threshold it checks.)
    pub batch_records: usize,
    /// Evict oldest batches once the spool holds more than this many
    /// records. Models the flash partition budget.
    pub max_spill_records: usize,
    /// First retry delay after a failed attempt.
    pub backoff_base: SimDuration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Backoff jitter: the delay is drawn uniformly from
    /// `[d·(1-j), d·(1+j))` to de-synchronize a fleet retrying into the
    /// same recovering collector.
    pub jitter_frac: f64,
}

impl Default for UploaderConfig {
    fn default() -> UploaderConfig {
        UploaderConfig {
            batch_records: 4_000,
            max_spill_records: 400_000,
            backoff_base: SimDuration::from_secs(30),
            backoff_cap: SimDuration::from_mins(15),
            jitter_frac: 0.25,
        }
    }
}

/// Delivery counters, visible to tests and the study summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UploaderStats {
    /// Batches sealed from the accumulation buffer.
    pub sealed_batches: u64,
    /// Batches acknowledged by the collector (including duplicate acks).
    pub acked_batches: u64,
    /// Upload attempts that failed (lost in transit or nacked).
    pub failed_attempts: u64,
    /// Batches evicted by the spool bound.
    pub evicted_batches: u64,
    /// Records lost to eviction.
    pub evicted_records: u64,
    /// Batches destroyed by flash wipes.
    pub wiped_batches: u64,
    /// Records lost to flash wipes.
    pub wiped_records: u64,
}

#[derive(Debug)]
struct SealedBatch {
    seq: u64,
    attempt: u32,
    /// Record count at seal time. The live `records` length cannot serve
    /// for accounting: the collector drains the buffer on acceptance (and
    /// may move its storage entirely when buffering ahead of the
    /// watermark), so by ack time it is empty.
    sealed_len: usize,
    records: Vec<Record>,
}

/// One upload attempt's view of the queue head: everything the transport
/// needs to hand the collector. `records` is drained by the collector on
/// acceptance; the caller then reports the outcome via
/// [`Uploader::ack_front`] or [`Uploader::fail_front`].
#[derive(Debug)]
pub struct UploadAttempt<'a> {
    /// Sequence number of the batch being offered.
    pub seq: u64,
    /// How many times this batch has already failed (0 on first try). The
    /// collector uses a non-zero value to count retried-then-accepted
    /// uploads.
    pub attempt: u32,
    /// Gap declarations riding along with this upload.
    pub gaps: &'a [GapDecl],
    /// The batch payload.
    pub records: &'a mut Vec<Record>,
}

/// The store-and-forward upload queue for one gateway.
#[derive(Debug)]
pub struct Uploader {
    cfg: UploaderConfig,
    spool: VecDeque<SealedBatch>,
    spooled_records: usize,
    next_seq: u64,
    consecutive_failures: u32,
    pending_gaps: Vec<GapDecl>,
    free: Vec<Vec<Record>>,
    stats: UploaderStats,
}

impl Uploader {
    /// A fresh queue; the first sealed batch gets sequence number 1.
    pub fn new(cfg: UploaderConfig) -> Uploader {
        Uploader {
            cfg,
            spool: VecDeque::new(),
            spooled_records: 0,
            next_seq: 1,
            consecutive_failures: 0,
            pending_gaps: Vec::new(),
            free: Vec::new(),
            stats: UploaderStats::default(),
        }
    }

    /// The configuration the queue was built with.
    pub fn config(&self) -> &UploaderConfig {
        &self.cfg
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> UploaderStats {
        self.stats
    }

    /// Anything waiting to upload (batches or unsent gap declarations)?
    pub fn has_backlog(&self) -> bool {
        !self.spool.is_empty() || !self.pending_gaps.is_empty()
    }

    /// Sealed batches waiting in the spool.
    pub fn spool_len(&self) -> usize {
        self.spool.len()
    }

    /// Records across all spooled batches.
    pub fn spooled_records(&self) -> usize {
        self.spooled_records
    }

    /// Gap declarations not yet acknowledged by the collector.
    pub fn pending_gaps(&self) -> &[GapDecl] {
        &self.pending_gaps
    }

    /// Seal the caller's accumulation buffer into a sequence-numbered batch.
    ///
    /// The buffer's contents move into the spool; the caller gets back a
    /// recycled (empty, pre-sized) buffer from the free pool, so the steady
    /// state allocates nothing. An empty buffer seals nothing. Sealing may
    /// evict the *oldest* spooled batches to honor `max_spill_records`;
    /// evictions become pending [`GapDecl`]s.
    pub fn seal(&mut self, buf: &mut Vec<Record>) {
        if buf.is_empty() {
            return;
        }
        let mut records = self.free.pop().unwrap_or_default();
        std::mem::swap(&mut records, buf);
        let sealed_len = records.len();
        self.spooled_records += sealed_len;
        self.spool.push_back(SealedBatch { seq: self.next_seq, attempt: 0, sealed_len, records });
        self.next_seq += 1;
        self.stats.sealed_batches += 1;
        // Spill bound: shed oldest-first, but never the batch just sealed.
        while self.spooled_records > self.cfg.max_spill_records && self.spool.len() > 1 {
            self.evict_oldest();
        }
    }

    /// Seal an empty carrier batch if gap declarations are pending but no
    /// data batch is spooled to carry them. Ensures a wipe near the end of
    /// a run still gets its losses onto the collector's ledger.
    pub fn seal_gap_carrier(&mut self) {
        if !self.pending_gaps.is_empty() && self.spool.is_empty() {
            let records = self.free.pop().unwrap_or_default();
            self.spool.push_back(SealedBatch {
                seq: self.next_seq,
                attempt: 0,
                sealed_len: 0,
                records,
            });
            self.next_seq += 1;
            self.stats.sealed_batches += 1;
        }
    }

    /// The next upload to attempt (oldest spooled batch plus any pending
    /// gap declarations), or `None` when the spool is empty.
    pub fn attempt(&mut self) -> Option<UploadAttempt<'_>> {
        let gaps = &self.pending_gaps;
        self.spool.front_mut().map(|b| UploadAttempt {
            seq: b.seq,
            attempt: b.attempt,
            gaps,
            records: &mut b.records,
        })
    }

    /// The collector accepted (or already had) the front batch: drop it,
    /// recycle its buffer, clear the gap declarations it carried, and reset
    /// the backoff ladder.
    pub fn ack_front(&mut self) {
        // simlint: allow(panic-in-ingest) — the protocol only acks a batch attempt() just handed out, so the spool cannot be empty here; an empty-spool ack is a driver bug worth crashing on
        let batch = self.spool.pop_front().expect("ack with empty spool");
        self.spooled_records -= batch.sealed_len;
        let mut records = batch.records;
        records.clear(); // empty already unless the ack was a duplicate
        self.recycle(records);
        self.pending_gaps.clear();
        self.consecutive_failures = 0;
        self.stats.acked_batches += 1;
    }

    /// The attempt failed (lost in transit or collector down): bump the
    /// backoff ladder and return how long to wait before retrying.
    pub fn fail_front(&mut self, rng: &mut DetRng) -> SimDuration {
        if let Some(front) = self.spool.front_mut() {
            front.attempt = front.attempt.saturating_add(1);
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.stats.failed_attempts += 1;
        self.backoff_delay(rng)
    }

    /// A flash-wipe reboot: the spool and the caller's unsealed buffer are
    /// destroyed. Every lost batch (including the records that were still
    /// unsealed — they are sealed first so the loss has a sequence number)
    /// becomes a pending [`GapDecl`] with cause [`GapCause::FlashWipe`].
    /// The sequence counter and pending declarations survive, as a real
    /// uploader's NVRAM journal would.
    pub fn wipe(&mut self, buf: &mut Vec<Record>) {
        // Seal the unsealed tail so its loss is declared, not silent.
        if !buf.is_empty() {
            let mut records = self.free.pop().unwrap_or_default();
            std::mem::swap(&mut records, buf);
            let sealed_len = records.len();
            self.spooled_records += sealed_len;
            self.spool.push_back(SealedBatch { seq: self.next_seq, attempt: 0, sealed_len, records });
            self.next_seq += 1;
            self.stats.sealed_batches += 1;
        }
        while let Some(batch) = self.spool.pop_front() {
            self.spooled_records -= batch.sealed_len;
            self.stats.wiped_batches += 1;
            self.stats.wiped_records += batch.sealed_len as u64;
            self.declare_lost(batch, GapCause::FlashWipe);
        }
        debug_assert_eq!(self.spooled_records, 0);
        self.consecutive_failures = 0;
    }

    fn evict_oldest(&mut self) {
        // simlint: allow(panic-in-ingest) — only called when spooled_records exceeds the cap, which implies at least one spooled batch
        let batch = self.spool.pop_front().expect("evict with empty spool");
        self.spooled_records -= batch.sealed_len;
        self.stats.evicted_batches += 1;
        self.stats.evicted_records += batch.sealed_len as u64;
        self.declare_lost(batch, GapCause::Evicted);
    }

    fn declare_lost(&mut self, batch: SealedBatch, cause: GapCause) {
        let (from, to) = batch
            .records
            .iter()
            .fold(None, |acc: Option<(SimTime, SimTime)>, r| {
                let at = r.at();
                Some(acc.map_or((at, at), |(lo, hi)| (lo.min(at), hi.max(at))))
            })
            .unwrap_or((SimTime::EPOCH, SimTime::EPOCH));
        // Coalesce with the previous declaration when the ranges are
        // adjacent and share a cause (a wipe of N batches is one hole).
        if let Some(last) = self.pending_gaps.last_mut() {
            if last.cause == cause && last.last_seq + 1 == batch.seq {
                last.last_seq = batch.seq;
                last.records_lost += batch.records.len() as u64;
                last.from = last.from.min(from);
                last.to = last.to.max(to);
                self.recycle(batch.records);
                return;
            }
        }
        self.pending_gaps.push(GapDecl {
            first_seq: batch.seq,
            last_seq: batch.seq,
            records_lost: batch.records.len() as u64,
            from,
            to,
            cause,
        });
        self.recycle(batch.records);
    }

    fn recycle(&mut self, mut records: Vec<Record>) {
        records.clear();
        if self.free.len() < 8 {
            self.free.push(records);
        }
    }

    fn backoff_delay(&self, rng: &mut DetRng) -> SimDuration {
        let base = self.cfg.backoff_base.as_micros().max(1);
        let cap = self.cfg.backoff_cap.as_micros().max(base);
        let shift = u32::min(self.consecutive_failures.saturating_sub(1), 40);
        let delay = base.saturating_shl(shift).min(cap);
        let j = self.cfg.jitter_frac.clamp(0.0, 1.0);
        let factor = 1.0 - j + 2.0 * j * rng.uniform();
        SimDuration::from_micros(((delay as f64) * factor).max(1.0) as u64)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{RouterId, UptimeRecord};

    fn t(mins: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_mins(mins)
    }

    fn uptime(at_min: u64) -> Record {
        Record::Uptime(UptimeRecord {
            router: RouterId(1),
            at: t(at_min),
            uptime: SimDuration::from_mins(at_min),
        })
    }

    fn small_cfg(max_spill: usize) -> UploaderConfig {
        UploaderConfig { batch_records: 4, max_spill_records: max_spill, ..Default::default() }
    }

    #[test]
    fn seal_assigns_increasing_seqs_and_recycles_buffers() {
        let mut up = Uploader::new(small_cfg(1_000));
        let mut buf = vec![uptime(0), uptime(1)];
        up.seal(&mut buf);
        assert!(buf.is_empty());
        buf.extend([uptime(2)]);
        up.seal(&mut buf);
        let a = up.attempt().unwrap();
        assert_eq!((a.seq, a.attempt, a.records.len()), (1, 0, 2));
        a.records.clear();
        up.ack_front();
        let b = up.attempt().unwrap();
        assert_eq!(b.seq, 2);
        b.records.clear();
        up.ack_front();
        assert!(up.attempt().is_none());
        assert!(!up.has_backlog());
        assert_eq!(up.stats().acked_batches, 2);
    }

    #[test]
    fn empty_buffer_seals_nothing() {
        let mut up = Uploader::new(small_cfg(1_000));
        let mut buf = Vec::new();
        up.seal(&mut buf);
        assert_eq!(up.spool_len(), 0);
        assert_eq!(up.stats().sealed_batches, 0);
    }

    #[test]
    fn backoff_grows_caps_and_resets() {
        let cfg = UploaderConfig {
            backoff_base: SimDuration::from_secs(10),
            backoff_cap: SimDuration::from_secs(60),
            jitter_frac: 0.0,
            ..small_cfg(1_000)
        };
        let mut up = Uploader::new(cfg);
        let mut rng = DetRng::new(4);
        let mut buf = vec![uptime(0)];
        up.seal(&mut buf);
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(10));
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(20));
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(40));
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(60), "capped");
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(60));
        assert_eq!(up.attempt().unwrap().attempt, 5);
        up.attempt().unwrap().records.clear();
        up.ack_front();
        buf.push(uptime(1));
        up.seal(&mut buf);
        assert_eq!(up.fail_front(&mut rng), SimDuration::from_secs(10), "ladder reset by ack");
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let cfg = UploaderConfig {
            backoff_base: SimDuration::from_secs(100),
            backoff_cap: SimDuration::from_secs(100),
            jitter_frac: 0.25,
            ..small_cfg(1_000)
        };
        let mut up = Uploader::new(cfg);
        let mut rng = DetRng::new(11);
        let mut buf = vec![uptime(0)];
        up.seal(&mut buf);
        for _ in 0..200 {
            let d = up.fail_front(&mut rng);
            assert!(
                (SimDuration::from_secs(75)..=SimDuration::from_secs(125)).contains(&d),
                "jittered delay {d:?} outside ±25% band"
            );
        }
    }

    #[test]
    fn spill_bound_evicts_oldest_with_accounting() {
        // Bound of 5 records, batches of 2: sealing the 4th batch evicts
        // batches 1 then 2 (oldest first) to get back under the bound.
        let mut up = Uploader::new(small_cfg(5));
        for i in 0..4u64 {
            let mut buf = vec![uptime(2 * i), uptime(2 * i + 1)];
            up.seal(&mut buf);
        }
        assert_eq!(up.spool_len(), 2);
        assert_eq!(up.spooled_records(), 4);
        assert_eq!(up.stats().evicted_batches, 2);
        assert_eq!(up.stats().evicted_records, 4);
        // The two evictions coalesced into one declaration covering 1..=2.
        let gaps = up.pending_gaps();
        assert_eq!(gaps.len(), 1);
        assert_eq!(
            (gaps[0].first_seq, gaps[0].last_seq, gaps[0].records_lost, gaps[0].cause),
            (1, 2, 4, GapCause::Evicted)
        );
        assert_eq!((gaps[0].from, gaps[0].to), (t(0), t(3)));
        // The surviving front is batch 3; its attempt carries the gaps.
        let a = up.attempt().unwrap();
        assert_eq!(a.seq, 3);
        assert_eq!(a.gaps.len(), 1);
        a.records.clear();
        up.ack_front();
        assert!(up.pending_gaps().is_empty(), "ack clears carried declarations");
    }

    #[test]
    fn wipe_declares_spool_and_unsealed_tail() {
        let mut up = Uploader::new(small_cfg(1_000));
        let mut buf = vec![uptime(0), uptime(1)];
        up.seal(&mut buf); // seq 1
        buf.extend([uptime(2), uptime(3), uptime(4)]); // unsealed tail
        up.wipe(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(up.spool_len(), 0);
        assert_eq!(up.stats().wiped_batches, 2);
        assert_eq!(up.stats().wiped_records, 5);
        let gaps = up.pending_gaps();
        assert_eq!(gaps.len(), 1, "adjacent wiped batches coalesce");
        assert_eq!(
            (gaps[0].first_seq, gaps[0].last_seq, gaps[0].records_lost, gaps[0].cause),
            (1, 2, 5, GapCause::FlashWipe)
        );
        // Declarations survive the wipe and ride the next (carrier) batch.
        assert!(up.has_backlog());
        up.seal_gap_carrier();
        let a = up.attempt().unwrap();
        assert_eq!((a.seq, a.records.len(), a.gaps.len()), (3, 0, 1));
        a.records.clear();
        up.ack_front();
        assert!(!up.has_backlog());
    }

    #[test]
    fn seq_counter_survives_wipe() {
        let mut up = Uploader::new(small_cfg(1_000));
        let mut buf = vec![uptime(0)];
        up.seal(&mut buf); // seq 1
        up.wipe(&mut buf);
        buf.push(uptime(9));
        up.seal(&mut buf);
        assert_eq!(up.attempt().unwrap().seq, 2, "seqs are never reused after a wipe");
    }
}
