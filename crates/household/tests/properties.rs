//! Property-based tests over the behavioral substrate: interval algebra
//! laws, availability-model invariants, and deployment stability.

use household::availability::{AvailabilityModel, PowerMode};
use household::interval::{gaps_within, intersect, normalize, subtract, total_duration, Interval};
use household::{build_deployment, Country};
use proptest::prelude::*;
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

fn iv(a: u64, b: u64) -> Interval {
    Interval::new(SimTime::from_micros(a.min(b)), SimTime::from_micros(a.max(b)))
}

fn arb_intervals(n: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..n)
        .prop_map(|pairs| pairs.into_iter().map(|(a, b)| iv(a, b)).collect())
}

proptest! {
    #[test]
    fn normalize_is_idempotent_and_sorted(spans in arb_intervals(40)) {
        let once = normalize(spans);
        let twice = normalize(once.clone());
        prop_assert_eq!(&once, &twice);
        for pair in once.windows(2) {
            prop_assert!(pair[0].end < pair[1].start, "normalized spans are disjoint and ordered");
        }
    }

    #[test]
    fn subtract_and_intersect_partition(a in arb_intervals(20), b in arb_intervals(20)) {
        let a = normalize(a);
        let b = normalize(b);
        // subtract(a,b) ∪ intersect(a,b) == a, and the two parts are disjoint.
        let minus = subtract(&a, &b);
        let both = intersect(&a, &b);
        let mut rebuilt = minus.clone();
        rebuilt.extend(both.clone());
        prop_assert_eq!(normalize(rebuilt), a.clone());
        prop_assert!(intersect(&minus, &both).is_empty());
        // Durations add up.
        let total = total_duration(&a);
        prop_assert_eq!(total_duration(&minus) + total_duration(&normalize(both)), total);
    }

    #[test]
    fn gaps_complement_coverage(spans in arb_intervals(20)) {
        let range = iv(0, 1_000_000);
        let spans = normalize(spans.into_iter()
            .filter_map(|s| s.intersect(&range))
            .collect());
        let gaps = gaps_within(&spans, range);
        prop_assert_eq!(
            total_duration(&spans) + total_duration(&gaps),
            range.duration()
        );
        prop_assert!(intersect(&spans, &gaps).is_empty());
    }

    #[test]
    fn up_intervals_always_inside_span(seed in any::<u64>(), days in 1u64..20) {
        let mut rng = DetRng::new(seed);
        let country = *rng.pick(&Country::ALL);
        let model = AvailabilityModel::sample(country, &mut rng);
        let start = SimTime::EPOCH;
        let end = start + SimDuration::from_days(days);
        let up = model.up_intervals(start, end, &mut rng.derive("up"));
        for span in &up {
            prop_assert!(span.start >= start && span.end <= end);
            prop_assert!(span.end > span.start);
        }
        for pair in up.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
        prop_assert!(total_duration(&up) <= end.since(start));
    }

    #[test]
    fn power_mode_sampling_never_panics(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        for country in Country::ALL {
            let mode = PowerMode::sample(country, &mut rng);
            // Appliance parameters stay inside sane bounds.
            if let PowerMode::Appliance { weekday_on_hour, weekday_hours, .. } = mode {
                prop_assert!((0.0..24.0).contains(&weekday_on_hour));
                prop_assert!(weekday_hours > 0.0);
            }
        }
    }

    #[test]
    fn deployment_stable_under_seed(seed in any::<u64>()) {
        let homes = build_deployment(seed);
        prop_assert_eq!(homes.len(), 126);
        // Weights normalized per home, devices within bounds.
        for home in &homes {
            let total: f64 = home.devices.iter().map(|d| d.usage_weight).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
            prop_assert!((3..=16).contains(&home.devices.len()));
            let wired = home.devices.iter().filter(|d| !d.attachment.is_wireless()).count();
            prop_assert!(wired <= 4);
            prop_assert!(home.session_rate_per_hour > 0.0);
            prop_assert!(home.up_link.rate_bps > 0 && home.down_link.rate_bps > 0);
        }
    }
}
