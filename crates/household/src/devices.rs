//! The device population: what hardware lives in each home, how it
//! connects (wired port or wireless band), who made it (MAC OUI → the
//! vendor histogram of Fig 12), which devices never disconnect (Table 5),
//! and how heavily each is used (the dominant-device result of Fig 17).

use crate::country::{Country, Region};
use netstack::AppKind;
use serde::{Deserialize, Serialize};
use simnet::packet::MacAddr;
use simnet::rng::DetRng;
use simnet::wifi::Band;

/// Broad device categories used for connection medium, usage mix, and
/// domain affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceType {
    /// Stationary desktop computer.
    Desktop,
    /// Laptop computer.
    Laptop,
    /// Smartphone.
    Phone,
    /// Tablet.
    Tablet,
    /// Streaming set-top box (Roku, Apple TV, …).
    StreamingBox,
    /// Game console.
    GameConsole,
    /// Network printer.
    Printer,
    /// Wireless VoIP phone.
    VoipPhone,
    /// Network storage / home server.
    Nas,
    /// Embedded / hobbyist device (thermostat, Raspberry Pi, …).
    Embedded,
}

/// Manufacturer classes exactly as Fig 12 buckets them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VendorClass {
    /// Apple Inc.
    Apple,
    /// Original design manufacturers (Compal, Hon Hai, Quanta, …).
    Odm,
    /// Intel NICs.
    Intel,
    /// Smartphone vendors (HTC, LG, Motorola, Nokia, …).
    SmartPhone,
    /// Samsung devices (phones and tablets).
    Samsung,
    /// Gateway vendors (TP-Link, D-Link, Cisco-Linksys, Belkin, …).
    Gateway,
    /// Asus.
    Asus,
    /// Miscellaneous (Polycom, Prolifix, Pegatron, …).
    Misc,
    /// Microsoft (possibly Xbox).
    Microsoft,
    /// Internet TV boxes (Roku, TiVo, ASRock).
    InternetTv,
    /// Gaming vendors (Nintendo, Mitsumi).
    Gaming,
    /// Wireless card makers (AzureWave, GainSpan).
    WirelessCard,
    /// VoIP hardware (UniData).
    Voip,
    /// Hewlett-Packard.
    HewlettPackard,
    /// Hardware vendors (Giga-Byte, Microchip).
    Hardware,
    /// VMware virtual NICs.
    Vmware,
    /// Raspberry Pi Foundation.
    RaspberryPi,
    /// Printers (Epson).
    Printer,
}

impl VendorClass {
    /// All classes in Fig 12's x-axis order.
    pub const ALL: [VendorClass; 18] = [
        VendorClass::Apple,
        VendorClass::Odm,
        VendorClass::Intel,
        VendorClass::SmartPhone,
        VendorClass::Samsung,
        VendorClass::Gateway,
        VendorClass::Asus,
        VendorClass::Misc,
        VendorClass::Microsoft,
        VendorClass::InternetTv,
        VendorClass::Gaming,
        VendorClass::WirelessCard,
        VendorClass::Voip,
        VendorClass::HewlettPackard,
        VendorClass::Hardware,
        VendorClass::Vmware,
        VendorClass::RaspberryPi,
        VendorClass::Printer,
    ];

    /// A representative IEEE OUI for this class (real registrations).
    pub fn oui(self) -> u32 {
        match self {
            VendorClass::Apple => 0x00_17_F2,
            VendorClass::Odm => 0x00_26_5C,           // Compal
            VendorClass::Intel => 0x00_1B_21,
            VendorClass::SmartPhone => 0x38_E7_D8,    // HTC
            VendorClass::Samsung => 0x5C_0A_5B,
            VendorClass::Gateway => 0xF8_1A_67,       // TP-Link
            VendorClass::Asus => 0x08_60_6E,
            VendorClass::Misc => 0x00_04_F2,          // Polycom
            VendorClass::Microsoft => 0x7C_ED_8D,
            VendorClass::InternetTv => 0xB0_A7_37,    // Roku
            VendorClass::Gaming => 0x00_19_1D,        // Nintendo
            VendorClass::WirelessCard => 0x74_F0_6D,  // AzureWave
            VendorClass::Voip => 0x00_14_F1,          // UniData-era block
            VendorClass::HewlettPackard => 0x3C_D9_2B,
            VendorClass::Hardware => 0x00_24_1D,      // Giga-Byte
            VendorClass::Vmware => 0x00_50_56,
            VendorClass::RaspberryPi => 0xB8_27_EB,
            VendorClass::Printer => 0x00_26_AB,       // Epson
        }
    }

    /// Reverse lookup from an OUI (what the manufacturer database in the
    /// analysis does with the anonymized Traffic MACs).
    pub fn from_oui(oui: u32) -> Option<VendorClass> {
        VendorClass::ALL.iter().copied().find(|v| v.oui() == oui)
    }

    /// Display label as printed on Fig 12's axis.
    pub fn label(self) -> &'static str {
        match self {
            VendorClass::Apple => "Apple",
            VendorClass::Odm => "ODM",
            VendorClass::Intel => "Intel",
            VendorClass::SmartPhone => "SmartPhone",
            VendorClass::Samsung => "Samsung",
            VendorClass::Gateway => "Gateway",
            VendorClass::Asus => "Asus",
            VendorClass::Misc => "Misc.",
            VendorClass::Microsoft => "Microsoft",
            VendorClass::InternetTv => "InternetTV",
            VendorClass::Gaming => "Gaming",
            VendorClass::WirelessCard => "WirelessCard",
            VendorClass::Voip => "VoIP",
            VendorClass::HewlettPackard => "Hewlett-Packard",
            VendorClass::Hardware => "Hardware",
            VendorClass::Vmware => "VMware",
            VendorClass::RaspberryPi => "Raspberry-Pi",
            VendorClass::Printer => "Printer",
        }
    }
}

/// How a device attaches to the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attachment {
    /// One of the four Ethernet ports.
    Wired,
    /// Wireless, with the bands the radio hardware supports.
    Wireless {
        /// True when the device can use 5 GHz in addition to 2.4 GHz.
        dual_band: bool,
    },
}

impl Attachment {
    /// True for wireless attachments.
    pub fn is_wireless(self) -> bool {
        matches!(self, Attachment::Wireless { .. })
    }

    /// The band a wireless device associates on: dual-band hardware prefers
    /// the cleaner 5 GHz spectrum, single-band hardware has no choice.
    pub fn preferred_band(self) -> Option<Band> {
        match self {
            Attachment::Wired => None,
            Attachment::Wireless { dual_band: true } => Some(Band::Ghz5),
            Attachment::Wireless { dual_band: false } => Some(Band::Ghz24),
        }
    }
}

/// One device in a home.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// The device's MAC address (vendor OUI + random NIC bits).
    pub mac: MacAddr,
    /// Category.
    pub kind: DeviceType,
    /// Manufacturer class (consistent with `mac`'s OUI).
    pub vendor: VendorClass,
    /// Connection medium.
    pub attachment: Attachment,
    /// True when the device stays connected whenever the router is up
    /// (Table 5's always-connected devices).
    pub always_connected: bool,
    /// Relative share of the household's network appetite in `(0, 1]`;
    /// weights across a home sum to 1.
    pub usage_weight: f64,
}

impl Device {
    /// The application mix this device type generates, as (kind, weight)
    /// pairs. Weights need not sum to one.
    pub fn app_mix(&self) -> &'static [(AppKind, f64)] {
        match self.kind {
            DeviceType::Desktop => &[
                (AppKind::Web, 0.55),
                (AppKind::StreamingVideo, 0.12),
                (AppKind::CloudSync, 0.18),
                (AppKind::Background, 0.14),
                (AppKind::BulkUpload, 0.01),
            ],
            DeviceType::Laptop => &[
                (AppKind::Web, 0.55),
                (AppKind::StreamingVideo, 0.22),
                (AppKind::CloudSync, 0.10),
                (AppKind::Background, 0.10),
                (AppKind::Voip, 0.03),
            ],
            DeviceType::Phone => &[
                (AppKind::Web, 0.55),
                (AppKind::StreamingAudio, 0.18),
                (AppKind::StreamingVideo, 0.15),
                (AppKind::Background, 0.12),
            ],
            DeviceType::Tablet => &[
                (AppKind::Web, 0.45),
                (AppKind::StreamingVideo, 0.40),
                (AppKind::Background, 0.15),
            ],
            DeviceType::StreamingBox => &[
                (AppKind::StreamingVideo, 0.80),
                (AppKind::StreamingAudio, 0.15),
                (AppKind::Background, 0.05),
            ],
            DeviceType::GameConsole => &[
                (AppKind::Gaming, 0.55),
                (AppKind::Background, 0.25),
                (AppKind::StreamingVideo, 0.20),
            ],
            DeviceType::Printer => &[(AppKind::Background, 1.0)],
            DeviceType::VoipPhone => &[(AppKind::Voip, 0.95), (AppKind::Background, 0.05)],
            DeviceType::Nas => &[
                (AppKind::CloudSync, 0.70),
                (AppKind::BulkUpload, 0.05),
                (AppKind::Background, 0.25),
            ],
            DeviceType::Embedded => &[(AppKind::Background, 1.0)],
        }
    }

    /// Baseline probability this device is online during its owner's active
    /// hours (phones nearly always; printers rarely).
    pub fn presence_propensity(&self) -> f64 {
        if self.always_connected {
            return 1.0;
        }
        match self.kind {
            DeviceType::Phone => 0.85,
            DeviceType::Laptop => 0.6,
            DeviceType::Tablet => 0.5,
            DeviceType::Desktop => 0.55,
            DeviceType::StreamingBox => 0.45,
            DeviceType::GameConsole => 0.3,
            DeviceType::Printer => 0.25,
            DeviceType::VoipPhone => 0.9,
            DeviceType::Nas => 0.9,
            DeviceType::Embedded => 0.8,
        }
    }
}

fn vendor_for(kind: DeviceType, rng: &mut DetRng) -> VendorClass {
    use VendorClass as V;
    let table: &[(V, f64)] = match kind {
        DeviceType::Desktop => &[(V::Apple, 0.32), (V::Odm, 0.18), (V::Intel, 0.26), (V::HewlettPackard, 0.09), (V::Hardware, 0.08), (V::Vmware, 0.04), (V::Asus, 0.03)],
        DeviceType::Laptop => &[(V::Apple, 0.36), (V::Odm, 0.22), (V::Intel, 0.28), (V::WirelessCard, 0.06), (V::Asus, 0.05), (V::HewlettPackard, 0.03)],
        DeviceType::Phone => &[(V::Apple, 0.45), (V::SmartPhone, 0.31), (V::Samsung, 0.24)],
        DeviceType::Tablet => &[(V::Apple, 0.55), (V::Samsung, 0.35), (V::Asus, 0.1)],
        DeviceType::StreamingBox => &[(V::InternetTv, 0.65), (V::Apple, 0.25), (V::Misc, 0.1)],
        DeviceType::GameConsole => &[(V::Microsoft, 0.45), (V::Gaming, 0.55)],
        DeviceType::Printer => &[(V::Printer, 0.55), (V::HewlettPackard, 0.45)],
        DeviceType::VoipPhone => &[(V::Voip, 0.7), (V::Misc, 0.3)],
        DeviceType::Nas => &[(V::Hardware, 0.4), (V::Intel, 0.3), (V::Odm, 0.3)],
        DeviceType::Embedded => &[(V::RaspberryPi, 0.45), (V::Misc, 0.35), (V::Gateway, 0.2)],
    };
    let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
    table[rng.weighted_index(&weights)].0
}

fn wired_kind(rng: &mut DetRng) -> DeviceType {
    let kinds = [
        (DeviceType::Desktop, 0.38),
        (DeviceType::StreamingBox, 0.22),
        (DeviceType::GameConsole, 0.18),
        (DeviceType::Nas, 0.12),
        (DeviceType::Printer, 0.10),
    ];
    let weights: Vec<f64> = kinds.iter().map(|(_, w)| *w).collect();
    kinds[rng.weighted_index(&weights)].0
}

fn wireless_kind(region: Region, rng: &mut DetRng) -> DeviceType {
    let kinds: &[(DeviceType, f64)] = match region {
        Region::Developed => &[
            (DeviceType::Laptop, 0.34),
            (DeviceType::Phone, 0.27),
            (DeviceType::Tablet, 0.14),
            (DeviceType::StreamingBox, 0.08),
            (DeviceType::Desktop, 0.05),
            (DeviceType::GameConsole, 0.04),
            (DeviceType::Printer, 0.03),
            (DeviceType::VoipPhone, 0.02),
            (DeviceType::Embedded, 0.03),
        ],
        Region::Developing => &[
            (DeviceType::Laptop, 0.3),
            (DeviceType::Phone, 0.45),
            (DeviceType::Tablet, 0.12),
            (DeviceType::Desktop, 0.05),
            (DeviceType::StreamingBox, 0.02),
            (DeviceType::VoipPhone, 0.02),
            (DeviceType::Embedded, 0.04),
        ],
    };
    let weights: Vec<f64> = kinds.iter().map(|(_, w)| *w).collect();
    kinds[rng.weighted_index(&weights)].0
}

fn dual_band_prob(kind: DeviceType) -> f64 {
    // Phones of the era were almost exclusively 2.4 GHz (§5.3); laptops and
    // tablets increasingly dual-band. Calibrated for the 5-vs-2 median of
    // Fig 10.
    match kind {
        DeviceType::Phone => 0.12,
        DeviceType::Laptop => 0.65,
        DeviceType::Tablet => 0.5,
        DeviceType::Desktop => 0.5,
        DeviceType::StreamingBox => 0.6,
        DeviceType::GameConsole => 0.25,
        DeviceType::Printer => 0.0,
        DeviceType::VoipPhone => 0.0,
        DeviceType::Nas => 0.4,
        DeviceType::Embedded => 0.05,
    }
}

/// Sample the whole device population of one home.
///
/// The returned list is ordered by decreasing `usage_weight`, so index 0 is
/// the household's dominant device.
pub fn sample_home_devices(country: Country, rng: &mut DetRng) -> Vec<Device> {
    let env = country.environment();
    let region = country.region();
    // Total device count: Poisson around the regional mean, at least 3
    // (every Traffic household had ≥ 3 unique devices, §6.3).
    let n = rng.poisson(env.mean_devices).clamp(3, 16) as usize;
    // Wired count: small; developed homes skew higher (Fig 8). At most 4
    // ports exist; only ~9% of homes use all four (§5.2).
    let wired_weights: &[f64] = match region {
        Region::Developed => &[0.30, 0.30, 0.22, 0.09, 0.09],
        Region::Developing => &[0.55, 0.28, 0.08, 0.05, 0.04],
    };
    let wired_n = rng.weighted_index(wired_weights).min(n.saturating_sub(1));

    let mut devices = Vec::with_capacity(n);
    for i in 0..n {
        let (kind, attachment) = if i < wired_n {
            (wired_kind(rng), Attachment::Wired)
        } else {
            let kind = wireless_kind(region, rng);
            let dual = rng.chance(dual_band_prob(kind));
            (kind, Attachment::Wireless { dual_band: dual })
        };
        let vendor = vendor_for(kind, rng);
        let mac = MacAddr::from_oui_nic(vendor.oui(), (rng.next_u64() & 0xFF_FF_FF) as u32);
        devices.push(Device {
            mac,
            kind,
            vendor,
            attachment,
            always_connected: false,
            usage_weight: 0.0,
        });
    }

    // Always-connected devices (Table 5): decided per home, preferring the
    // kinds that plausibly never sleep.
    if rng.chance(env.always_on_wired_prob) {
        if let Some(d) = devices.iter_mut().find(|d| {
            !d.attachment.is_wireless()
                && matches!(d.kind, DeviceType::StreamingBox | DeviceType::Nas | DeviceType::Desktop)
        }) {
            d.always_connected = true;
        } else if let Some(d) = devices.iter_mut().find(|d| !d.attachment.is_wireless()) {
            d.always_connected = true;
        }
    }
    if rng.chance(env.always_on_wireless_prob) {
        if let Some(d) = devices.iter_mut().find(|d| {
            d.attachment.is_wireless()
                && matches!(d.kind, DeviceType::VoipPhone | DeviceType::Embedded | DeviceType::Nas)
        }) {
            d.always_connected = true;
        } else if let Some(d) = devices.iter_mut().find(|d| d.attachment.is_wireless()) {
            d.always_connected = true;
        }
    }

    // Usage weights: a steep, noisy rank distribution so one device
    // dominates (Fig 17: ~60-65% for the top device, ~20% for the second).
    let mut raw: Vec<f64> = (0..devices.len())
        .map(|rank| {
            let base = 1.0 / ((rank + 1) as f64).powf(2.0);
            base * rng.log_normal(0.0, 0.35)
        })
        .collect();
    raw.sort_by(|a, b| b.partial_cmp(a).expect("weights are finite"));
    let total: f64 = raw.iter().sum();
    // Prefer interactive device kinds for the heavy ranks: sort devices so
    // that high-appetite kinds come first, then assign sorted weights.
    devices.sort_by_key(|d| match d.kind {
        DeviceType::Desktop | DeviceType::Laptop => 0,
        DeviceType::StreamingBox | DeviceType::Tablet => 1,
        DeviceType::Phone | DeviceType::GameConsole => 2,
        DeviceType::Nas => 3,
        _ => 4,
    });
    for (device, weight) in devices.iter_mut().zip(&raw) {
        device.usage_weight = weight / total;
    }
    devices
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homes(country: Country, n: usize) -> Vec<Vec<Device>> {
        let root = DetRng::new(42);
        (0..n)
            .map(|i| sample_home_devices(country, &mut root.derive_indexed("home", i as u64)))
            .collect()
    }

    #[test]
    fn weights_sum_to_one_and_descend() {
        for home in homes(Country::UnitedStates, 50) {
            let total: f64 = home.iter().map(|d| d.usage_weight).sum();
            assert!((total - 1.0).abs() < 1e-9);
            for pair in home.windows(2) {
                assert!(pair[0].usage_weight >= pair[1].usage_weight);
            }
        }
    }

    #[test]
    fn dominant_device_share_matches_paper() {
        let all = homes(Country::UnitedStates, 300);
        let mean_top: f64 =
            all.iter().map(|h| h[0].usage_weight).sum::<f64>() / all.len() as f64;
        let mean_second: f64 = all
            .iter()
            .filter_map(|h| h.get(1).map(|d| d.usage_weight))
            .sum::<f64>()
            / all.len() as f64;
        assert!((0.5..0.75).contains(&mean_top), "top-device share {mean_top}");
        assert!((0.1..0.3).contains(&mean_second), "second-device share {mean_second}");
    }

    #[test]
    fn every_home_has_at_least_three_devices() {
        for home in homes(Country::India, 100) {
            assert!(home.len() >= 3);
        }
    }

    #[test]
    fn developed_homes_have_more_devices_and_more_wired() {
        let us = homes(Country::UnitedStates, 300);
        let india = homes(Country::India, 300);
        let mean = |hs: &[Vec<Device>]| {
            hs.iter().map(Vec::len).sum::<usize>() as f64 / hs.len() as f64
        };
        let wired = |hs: &[Vec<Device>]| {
            hs.iter()
                .flat_map(|h| h.iter())
                .filter(|d| !d.attachment.is_wireless())
                .count() as f64
                / hs.len() as f64
        };
        assert!(mean(&us) > mean(&india) + 1.0, "{} vs {}", mean(&us), mean(&india));
        assert!(wired(&us) > 1.5 * wired(&india), "{} vs {}", wired(&us), wired(&india));
    }

    #[test]
    fn wireless_outnumbers_wired_everywhere() {
        for country in [Country::UnitedStates, Country::India] {
            let all = homes(country, 200);
            let wireless: usize = all
                .iter()
                .flat_map(|h| h.iter())
                .filter(|d| d.attachment.is_wireless())
                .count();
            let wired: usize =
                all.iter().flat_map(|h| h.iter()).filter(|d| !d.attachment.is_wireless()).count();
            assert!(wireless > 2 * wired, "{country:?}: {wireless} wireless vs {wired} wired");
        }
    }

    #[test]
    fn wired_never_exceeds_four_ports() {
        for home in homes(Country::UnitedStates, 300) {
            let wired = home.iter().filter(|d| !d.attachment.is_wireless()).count();
            assert!(wired <= 4, "only four Ethernet ports exist");
        }
    }

    #[test]
    fn always_connected_prevalence_by_region() {
        let us = homes(Country::UnitedStates, 500);
        let india = homes(Country::India, 500);
        let frac_wired = |hs: &[Vec<Device>]| {
            hs.iter()
                .filter(|h| h.iter().any(|d| d.always_connected && !d.attachment.is_wireless()))
                .count() as f64
                / hs.len() as f64
        };
        let us_frac = frac_wired(&us);
        let in_frac = frac_wired(&india);
        assert!((0.3..0.55).contains(&us_frac), "US always-on wired {us_frac}");
        assert!(in_frac < 0.2, "India always-on wired {in_frac}");
    }

    #[test]
    fn band_capability_skews_to_24ghz() {
        let all = homes(Country::UnitedStates, 300);
        let (mut single, mut dual) = (0, 0);
        for d in all.iter().flat_map(|h| h.iter()) {
            match d.attachment {
                Attachment::Wireless { dual_band: true } => dual += 1,
                Attachment::Wireless { dual_band: false } => single += 1,
                Attachment::Wired => {}
            }
        }
        assert!(single > dual, "2.4 GHz-only must dominate: {single} vs {dual}");
        assert!(dual > 0, "some dual-band devices must exist");
    }

    #[test]
    fn vendor_histogram_has_apple_on_top() {
        let all = homes(Country::UnitedStates, 300);
        let mut counts = std::collections::HashMap::new();
        for d in all.iter().flat_map(|h| h.iter()) {
            *counts.entry(d.vendor).or_insert(0usize) += 1;
        }
        let apple = counts.get(&VendorClass::Apple).copied().unwrap_or(0);
        let max_other = counts
            .iter()
            .filter(|(v, _)| **v != VendorClass::Apple)
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0);
        assert!(apple >= max_other, "Apple must lead the vendor histogram");
    }

    #[test]
    fn mac_oui_matches_vendor() {
        for home in homes(Country::UnitedStates, 50) {
            for d in home {
                assert_eq!(VendorClass::from_oui(d.mac.oui()), Some(d.vendor));
            }
        }
    }

    #[test]
    fn oui_table_is_injective() {
        let mut seen = std::collections::HashSet::new();
        for v in VendorClass::ALL {
            assert!(seen.insert(v.oui()), "duplicate OUI for {v:?}");
        }
    }

    #[test]
    fn attachment_band_preference() {
        assert_eq!(Attachment::Wired.preferred_band(), None);
        assert_eq!(
            Attachment::Wireless { dual_band: true }.preferred_band(),
            Some(Band::Ghz5)
        );
        assert_eq!(
            Attachment::Wireless { dual_band: false }.preferred_band(),
            Some(Band::Ghz24)
        );
    }

    #[test]
    fn app_mix_nonempty_for_all_kinds() {
        let mut rng = DetRng::new(1);
        let home = sample_home_devices(Country::UnitedStates, &mut rng);
        for d in home {
            assert!(!d.app_mix().is_empty());
            assert!(d.presence_propensity() > 0.0 && d.presence_propensity() <= 1.0);
        }
    }
}
