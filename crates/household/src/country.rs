//! Country profiles for the deployment: the 19 countries of Table 1, their
//! per-capita GDP (PPP, 2011), the developed/developing split the paper
//! uses (top-50 GDP per capita = developed), router counts, and per-country
//! network-environment parameters that drive the availability and
//! infrastructure models.

use serde::{Deserialize, Serialize};

/// Economic group per the paper's GDP-based classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// Per-capita GDP within the 2011 top 50.
    Developed,
    /// All other countries in the deployment.
    Developing,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Developed => write!(f, "developed"),
            Region::Developing => write!(f, "developing"),
        }
    }
}

/// The 19 countries of the deployment (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are country names
pub enum Country {
    Canada,
    Germany,
    France,
    UnitedKingdom,
    Ireland,
    Italy,
    Japan,
    Netherlands,
    Singapore,
    UnitedStates,
    India,
    Pakistan,
    Malaysia,
    SouthAfrica,
    Mexico,
    China,
    Brazil,
    Indonesia,
    Thailand,
}

impl Country {
    /// All 19 countries, developed first, in Table 1 order.
    pub const ALL: [Country; 19] = [
        Country::Canada,
        Country::Germany,
        Country::France,
        Country::UnitedKingdom,
        Country::Ireland,
        Country::Italy,
        Country::Japan,
        Country::Netherlands,
        Country::Singapore,
        Country::UnitedStates,
        Country::India,
        Country::Pakistan,
        Country::Malaysia,
        Country::SouthAfrica,
        Country::Mexico,
        Country::China,
        Country::Brazil,
        Country::Indonesia,
        Country::Thailand,
    ];

    /// ISO 3166-1 alpha-2 code (used as the axis label in Fig 5).
    pub fn code(self) -> &'static str {
        match self {
            Country::Canada => "CA",
            Country::Germany => "DE",
            Country::France => "FR",
            Country::UnitedKingdom => "GB",
            Country::Ireland => "IE",
            Country::Italy => "IT",
            Country::Japan => "JP",
            Country::Netherlands => "NL",
            Country::Singapore => "SG",
            Country::UnitedStates => "US",
            Country::India => "IN",
            Country::Pakistan => "PK",
            Country::Malaysia => "MY",
            Country::SouthAfrica => "ZA",
            Country::Mexico => "MX",
            Country::China => "CN",
            Country::Brazil => "BR",
            Country::Indonesia => "ID",
            Country::Thailand => "TH",
        }
    }

    /// Human-readable name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Country::Canada => "Canada",
            Country::Germany => "Germany",
            Country::France => "France",
            Country::UnitedKingdom => "United Kingdom",
            Country::Ireland => "Ireland",
            Country::Italy => "Italy",
            Country::Japan => "Japan",
            Country::Netherlands => "Netherlands",
            Country::Singapore => "Singapore",
            Country::UnitedStates => "United States",
            Country::India => "India",
            Country::Pakistan => "Pakistan",
            Country::Malaysia => "Malaysia",
            Country::SouthAfrica => "South Africa",
            Country::Mexico => "Mexico",
            Country::China => "China",
            Country::Brazil => "Brazil",
            Country::Indonesia => "Indonesia",
            Country::Thailand => "Thailand",
        }
    }

    /// Per-capita GDP at purchasing power parity, 2011, in international
    /// dollars (IMF WEO — the source the paper cites for Fig 5).
    pub fn gdp_ppp_per_capita(self) -> u32 {
        match self {
            Country::Canada => 40_500,
            Country::Germany => 39_700,
            Country::France => 35_600,
            Country::UnitedKingdom => 36_000,
            Country::Ireland => 41_700,
            Country::Italy => 32_700,
            Country::Japan => 34_300,
            Country::Netherlands => 42_800,
            Country::Singapore => 60_700,
            Country::UnitedStates => 48_100,
            Country::India => 3_700,
            Country::Pakistan => 2_800,
            Country::Malaysia => 16_000,
            Country::SouthAfrica => 11_000,
            Country::Mexico => 15_100,
            Country::China => 8_400,
            Country::Brazil => 11_600,
            Country::Indonesia => 4_600,
            Country::Thailand => 9_400,
        }
    }

    /// The paper's grouping (Table 1).
    pub fn region(self) -> Region {
        match self {
            Country::Canada
            | Country::Germany
            | Country::France
            | Country::UnitedKingdom
            | Country::Ireland
            | Country::Italy
            | Country::Japan
            | Country::Netherlands
            | Country::Singapore
            | Country::UnitedStates => Region::Developed,
            _ => Region::Developing,
        }
    }

    /// Number of routers the paper deployed in this country (Table 1).
    pub fn router_count(self) -> usize {
        match self {
            Country::Canada => 2,
            Country::Germany => 2,
            Country::France => 1,
            Country::UnitedKingdom => 12,
            Country::Ireland => 2,
            Country::Italy => 1,
            Country::Japan => 2,
            Country::Netherlands => 3,
            Country::Singapore => 2,
            Country::UnitedStates => 63,
            Country::India => 12,
            Country::Pakistan => 5,
            Country::Malaysia => 1,
            Country::SouthAfrica => 10,
            Country::Mexico => 2,
            Country::China => 2,
            Country::Brazil => 2,
            Country::Indonesia => 1,
            Country::Thailand => 1,
        }
    }

    /// Representative UTC offset in whole hours (each home's diurnal clock).
    pub fn utc_offset_hours(self) -> i32 {
        match self {
            Country::Canada => -5,
            Country::Germany => 1,
            Country::France => 1,
            Country::UnitedKingdom => 0,
            Country::Ireland => 0,
            Country::Italy => 1,
            Country::Japan => 9,
            Country::Netherlands => 1,
            Country::Singapore => 8,
            Country::UnitedStates => -5,
            Country::India => 5,
            Country::Pakistan => 5,
            Country::Malaysia => 8,
            Country::SouthAfrica => 2,
            Country::Mexico => -6,
            Country::China => 8,
            Country::Brazil => -3,
            Country::Indonesia => 7,
            Country::Thailand => 7,
        }
    }
}

/// Environment parameters that vary with economic development; indexed off
/// GDP so the availability gradient of Fig 5 emerges from one scalar.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnvironmentProfile {
    /// Mean ISP/power outages (≥ 10 min) per day affecting connectivity.
    pub outage_rate_per_day: f64,
    /// Log-normal sigma of outage duration (heavier tails = longer outages).
    pub outage_sigma: f64,
    /// Median outage duration in minutes.
    pub outage_median_mins: f64,
    /// Probability a household treats the router as an appliance
    /// (powering it only when in use).
    pub appliance_mode_prob: f64,
    /// Typical downstream capacity range in Mbps.
    pub down_mbps: (f64, f64),
    /// Typical upstream capacity range in Mbps.
    pub up_mbps: (f64, f64),
    /// Mean number of devices owned per household.
    pub mean_devices: f64,
    /// Probability of ≥ 1 always-connected wired device (Table 5 target:
    /// 43% developed vs 12% developing).
    pub always_on_wired_prob: f64,
    /// Probability of ≥ 1 always-connected wireless device.
    pub always_on_wireless_prob: f64,
    /// Mean number of neighboring 2.4 GHz APs in a dense neighborhood.
    pub dense_neighbor_aps: f64,
    /// Mean number in a sparse neighborhood.
    pub sparse_neighbor_aps: f64,
    /// Probability the home sits in a dense neighborhood (bimodality of
    /// Fig 11).
    pub dense_neighborhood_prob: f64,
    /// Per-packet heartbeat loss probability on the WAN path to the
    /// collection server.
    pub heartbeat_loss_prob: f64,
    /// Multiplier on per-device online propensity: below 1 where
    /// households power devices off to save electricity or data (§5.1).
    pub presence_factor: f64,
    /// Probability a non-appliance home switches the router off overnight.
    pub night_off_prob: f64,
    /// One-way WAN transit to the (US-hosted) measurement server, in ms
    /// (range sampled per home).
    pub wan_transit_ms: (f64, f64),
    /// Mean extended offline events (vacations, moves) per 30 days for
    /// always-on homes.
    pub extended_off_rate_per_month: f64,
}

impl Country {
    /// The environment profile for homes in this country.
    pub fn environment(self) -> EnvironmentProfile {
        let gdp = f64::from(self.gdp_ppp_per_capita());
        match self.region() {
            Region::Developed => EnvironmentProfile {
                // Median time between ≥10-min downtimes > 1 month.
                outage_rate_per_day: 0.032,
                outage_sigma: 1.0,
                outage_median_mins: 22.0,
                appliance_mode_prob: 0.02,
                down_mbps: (8.0, 110.0),
                up_mbps: (1.0, 12.0),
                mean_devices: 7.5,
                always_on_wired_prob: 0.55, // conditional on owning a wired device ≈ Table 5's 43%
                always_on_wireless_prob: 0.20,
                dense_neighbor_aps: 65.0,
                sparse_neighbor_aps: 4.0,
                dense_neighborhood_prob: 0.72,
                heartbeat_loss_prob: 0.002,
                presence_factor: 1.0,
                night_off_prob: 0.0,
                wan_transit_ms: (8.0, 45.0),
                extended_off_rate_per_month: 0.18,
            },
            Region::Developing => {
                // Scale severity with how far below the development
                // threshold the country sits: India/Pakistan (lowest GDP)
                // see the most downtime (Fig 5).
                let poverty = ((20_000.0 - gdp) / 20_000.0).clamp(0.0, 1.0);
                EnvironmentProfile {
                    outage_rate_per_day: 0.35 + 1.4 * poverty * poverty,
                    outage_sigma: 1.4,
                    outage_median_mins: 24.0 + 16.0 * poverty,
                    appliance_mode_prob: 0.10 + 0.35 * poverty,
                    down_mbps: (0.8, 12.0),
                    up_mbps: (0.25, 2.0),
                    mean_devices: 5.2,
                    always_on_wired_prob: 0.22, // conditional ≈ Table 5's 12%
                    always_on_wireless_prob: 0.12,
                    dense_neighbor_aps: 14.0,
                    sparse_neighbor_aps: 2.2,
                    dense_neighborhood_prob: 0.40,
                    heartbeat_loss_prob: 0.01,
                    presence_factor: 0.62,
                    night_off_prob: 0.40,
                    wan_transit_ms: (70.0, 200.0),
                    extended_off_rate_per_month: 0.6,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let developed: usize = Country::ALL
            .iter()
            .filter(|c| c.region() == Region::Developed)
            .map(|c| c.router_count())
            .sum();
        let developing: usize = Country::ALL
            .iter()
            .filter(|c| c.region() == Region::Developing)
            .map(|c| c.router_count())
            .sum();
        assert_eq!(developed, 90, "Table 1: 90 developed routers");
        assert_eq!(developing, 36, "Table 1: 36 developing routers");
        assert_eq!(developed + developing, 126);
    }

    #[test]
    fn nineteen_countries_ten_developed() {
        assert_eq!(Country::ALL.len(), 19);
        let developed = Country::ALL.iter().filter(|c| c.region() == Region::Developed).count();
        assert_eq!(developed, 10);
    }

    #[test]
    fn gdp_ordering_matches_classification() {
        let min_developed = Country::ALL
            .iter()
            .filter(|c| c.region() == Region::Developed)
            .map(|c| c.gdp_ppp_per_capita())
            .min()
            .unwrap();
        let max_developing = Country::ALL
            .iter()
            .filter(|c| c.region() == Region::Developing)
            .map(|c| c.gdp_ppp_per_capita())
            .max()
            .unwrap();
        assert!(min_developed > max_developing, "GDP split must be clean");
    }

    #[test]
    fn india_and_pakistan_poorest_and_most_outage_prone() {
        let mut by_gdp: Vec<Country> = Country::ALL.to_vec();
        by_gdp.sort_by_key(|c| c.gdp_ppp_per_capita());
        assert_eq!(by_gdp[0], Country::Pakistan);
        assert_eq!(by_gdp[1], Country::India);
        let pk = Country::Pakistan.environment().outage_rate_per_day;
        let za = Country::SouthAfrica.environment().outage_rate_per_day;
        let us = Country::UnitedStates.environment().outage_rate_per_day;
        assert!(pk > za && za > us, "outage gradient must follow GDP: {pk} {za} {us}");
    }

    #[test]
    fn developing_profiles_differ_from_developed() {
        let dev = Country::UnitedStates.environment();
        let ding = Country::India.environment();
        assert!(ding.outage_rate_per_day > 10.0 * dev.outage_rate_per_day);
        assert!(ding.appliance_mode_prob > 5.0 * dev.appliance_mode_prob);
        assert!(dev.mean_devices > ding.mean_devices);
        assert!(dev.always_on_wired_prob > 2.0 * ding.always_on_wired_prob);
        assert!(dev.dense_neighbor_aps > ding.dense_neighbor_aps);
    }

    #[test]
    fn codes_unique() {
        let mut codes: Vec<&str> = Country::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 19);
    }

    #[test]
    fn utc_offsets_reasonable() {
        for c in Country::ALL {
            let off = c.utc_offset_hours();
            assert!((-12..=14).contains(&off), "{c:?} offset {off}");
        }
    }
}
