//! Assembly of complete homes and of the full 126-home deployment.
//!
//! A [`HomeConfig`] bundles everything the simulator needs to run one
//! household: where it is, how its router is powered, what its access link
//! looks like, which devices live in it, its daily rhythm, its domain
//! taste, and its radio neighborhood. [`build_deployment`] instantiates
//! the deployment of Table 1 — the same router counts per country the
//! paper reports — deterministically from one seed.

use crate::availability::AvailabilityModel;
use crate::country::{Country, Region};
use crate::devices::Device;
use crate::diurnal::DiurnalModel;
use crate::domains::{DomainUniverse, HomeTaste};
use crate::neighborhood::sample_neighborhood;
use simnet::link::LinkConfig;
use simnet::rng::DetRng;
use simnet::time::SimDuration;
use simnet::wifi::NeighborAp;
use std::net::Ipv4Addr;

/// Identifier of a home within the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct HomeId(pub u32);

impl std::fmt::Display for HomeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "home{:03}", self.0)
    }
}

/// Behavioral quirks observed in specific deployment homes and reproduced
/// as explicit variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Quirk {
    /// §6.2 / Fig 16a: a user who continually uploads scientific data,
    /// saturating the uplink around the clock.
    ScientificUploader,
}

/// Everything needed to simulate one household.
#[derive(Debug, Clone)]
pub struct HomeConfig {
    /// Deployment-wide id.
    pub id: HomeId,
    /// Where the home is.
    pub country: Country,
    /// Router power behavior and ISP outage process.
    pub availability: AvailabilityModel,
    /// The device population, dominant device first.
    pub devices: Vec<Device>,
    /// Daily activity rhythm.
    pub diurnal: DiurnalModel,
    /// Domain preferences.
    pub taste: HomeTaste,
    /// Neighboring access points.
    pub neighborhood: Vec<NeighborAp>,
    /// Downstream access-link model.
    pub down_link: LinkConfig,
    /// Upstream access-link model.
    pub up_link: LinkConfig,
    /// The home's public WAN address.
    pub wan_addr: Ipv4Addr,
    /// Whether the household consented to detailed Traffic collection
    /// (§3.2.2: 25 active US homes in the studied window).
    pub traffic_consent: bool,
    /// Mean application sessions initiated per household per active hour,
    /// before diurnal/usage-weight modulation.
    pub session_rate_per_hour: f64,
    /// Per-heartbeat loss probability on the WAN path to the collector.
    pub heartbeat_loss_prob: f64,
    /// One-way WAN transit from this home to the measurement server.
    pub wan_transit: SimDuration,
    /// Optional behavioral quirk.
    pub quirk: Option<Quirk>,
}

impl HomeConfig {
    /// Sample a home for `country`. The `rng` must be the home's private
    /// stream; all internal processes derive their own substreams from it.
    pub fn sample(id: HomeId, country: Country, rng: &DetRng) -> HomeConfig {
        let env = country.environment();
        let mut link_rng = rng.derive("link");
        // Log-uniform capacity inside the country's typical range.
        let (dlo, dhi) = env.down_mbps;
        let (ulo, uhi) = env.up_mbps;
        let down_mbps = (dlo.ln() + link_rng.uniform() * (dhi.ln() - dlo.ln())).exp();
        let up_mbps = (ulo.ln() + link_rng.uniform() * (uhi.ln() - ulo.ln())).exp();
        let down_bps = (down_mbps * 1e6) as u64;
        let up_bps = (up_mbps * 1e6) as u64;
        // Bufferbloat-era CPE: queues sized in bytes, not in delay. 256 KB
        // of uplink buffer at 1 Mbps is two *seconds* of queue — exactly
        // the pathology the paper cites.
        let queue = 256 * 1024;
        // A third of developed-country ISPs deploy burst shaping
        // ("PowerBoost"): short transfers see up to ~2x the sustained rate.
        let boosted = country.region() == Region::Developed && link_rng.chance(0.33);
        let mut mk = |rate: u64| -> LinkConfig {
            let delay = SimDuration::from_millis(link_rng.uniform_int(4, 25));
            if boosted {
                // Bucket sized so a capacity-probe train can straddle the
                // level shift (real PowerBoost buckets are larger; the
                // mechanism, not the magnitude, is what matters here).
                LinkConfig::shaped(rate, rate * 2, 192 * 1024, delay, queue)
            } else {
                LinkConfig::simple(rate, delay, queue)
            }
        };
        let down_link = mk(down_bps);
        let up_link = mk(up_bps);

        let mut dev_rng = rng.derive("devices");
        let devices = crate::devices::sample_home_devices(country, &mut dev_rng);
        let mut hood_rng = rng.derive("neighborhood");
        let neighborhood = sample_neighborhood(country, &mut hood_rng);
        let mut avail_rng = rng.derive("availability");
        let availability = AvailabilityModel::sample(country, &mut avail_rng);
        let mut diurnal_rng = rng.derive("diurnal");
        let diurnal = DiurnalModel::sample(&mut diurnal_rng);
        let universe = DomainUniverse::standard();
        let mut taste_rng = rng.derive("taste");
        let taste = HomeTaste::sample(&universe, &mut taste_rng);

        let mut misc_rng = rng.derive("misc");
        // Traffic consent exists only in the US for the studied window.
        let traffic_consent =
            country == Country::UnitedStates && misc_rng.chance(0.42);
        let wan_addr = Ipv4Addr::new(
            100,
            (64 + (id.0 / 250)) as u8,
            (id.0 % 250) as u8,
            misc_rng.uniform_int(2, 250) as u8,
        );
        // Household appetite: most homes are light users (§6.2).
        let session_rate_per_hour = misc_rng.log_normal(1.25, 0.55).clamp(0.8, 18.0);

        HomeConfig {
            id,
            country,
            availability,
            devices,
            diurnal,
            taste,
            neighborhood,
            down_link,
            up_link,
            wan_addr,
            traffic_consent,
            session_rate_per_hour,
            heartbeat_loss_prob: env.heartbeat_loss_prob,
            wan_transit: SimDuration::from_secs_f64(
                misc_rng.uniform_range(env.wan_transit_ms.0, env.wan_transit_ms.1) / 1e3,
            ),
            quirk: None,
        }
    }

    /// Total number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The dominant (highest usage-weight) device.
    pub fn dominant_device(&self) -> &Device {
        &self.devices[0]
    }
}

/// Instantiate the full deployment of Table 1: 126 homes across 19
/// countries, each sampled from its country profile, deterministically from
/// `seed`.
///
/// Two US Traffic-consent homes receive the [`Quirk::ScientificUploader`]
/// behavior, matching the uplink-saturating households of Fig 16.
pub fn build_deployment(seed: u64) -> Vec<HomeConfig> {
    build_deployment_scaled(seed, 126)
}

/// Largest-remainder apportionment of `homes` across the Table 1 country
/// mix: each country's exact share `homes * count / 126` is floored, and
/// the leftover homes go to the countries with the largest fractional
/// remainders (ties broken in Table 1 order). Exact at `homes == 126` —
/// every country gets precisely its Table 1 router count — and
/// mix-preserving (each share within one home of proportional) at any
/// other size.
fn apportion(homes: u32) -> Vec<(Country, u32)> {
    let counts: Vec<u64> = Country::ALL.iter().map(|c| c.router_count() as u64).collect();
    let total: u64 = counts.iter().sum();
    let mut shares: Vec<u32> = Vec::with_capacity(counts.len());
    let mut rems: Vec<u64> = Vec::with_capacity(counts.len());
    for &count in &counts {
        let exact = u64::from(homes) * count;
        shares.push((exact / total) as u32);
        rems.push(exact % total);
    }
    let mut leftover = homes - shares.iter().sum::<u32>();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(rems[i]));
    for &i in &order {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    Country::ALL.into_iter().zip(shares).collect()
}

/// Instantiate a generatively scaled deployment of `homes` homes: the
/// calibrated Table 1 country mix is preserved by largest-remainder
/// apportionment, and every synthetic home is sampled from its country
/// profile on its own RNG stream (`derive_indexed("home", id)` off the
/// study seed, exactly as the 126-home deployment does). At
/// `homes == 126` this is byte-for-byte [`build_deployment`].
///
/// The Fig 16 uploader quirk scales with the deployment: the first
/// `max(2, homes * 2 / 126)` consenting homes with a modest uplink
/// saturate their upstream around the clock.
pub fn build_deployment_scaled(seed: u64, homes: u32) -> Vec<HomeConfig> {
    let root = DetRng::new(seed);
    let mut out = Vec::with_capacity(homes as usize);
    let mut id = 0u32;
    for (country, count) in apportion(homes) {
        for _ in 0..count {
            let home_rng = root.derive_indexed("home", u64::from(id));
            out.push(HomeConfig::sample(HomeId(id), country, &home_rng));
            id += 1;
        }
    }
    // Assign the uploader quirk to the first consenting homes with a
    // modest uplink, mirroring the paper's two Fig 16 households and
    // keeping their prevalence constant as the deployment grows.
    let target = ((u64::from(homes) * 2) / 126).max(2);
    let mut assigned = 0;
    for home in out.iter_mut() {
        if assigned == target {
            break;
        }
        if home.traffic_consent && home.up_link.rate_bps < 3_000_000 {
            home.quirk = Some(Quirk::ScientificUploader);
            assigned += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_matches_table1() {
        let homes = build_deployment(1);
        assert_eq!(homes.len(), 126);
        let us = homes.iter().filter(|h| h.country == Country::UnitedStates).count();
        let india = homes.iter().filter(|h| h.country == Country::India).count();
        assert_eq!(us, 63);
        assert_eq!(india, 12);
        // Ids unique and dense.
        let mut ids: Vec<u32> = homes.iter().map(|h| h.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 126);
    }

    #[test]
    fn deployment_is_deterministic() {
        let a = build_deployment(7);
        let b = build_deployment(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.wan_addr, y.wan_addr);
            assert_eq!(x.device_count(), y.device_count());
            assert_eq!(x.session_rate_per_hour, y.session_rate_per_hour);
            assert_eq!(x.dominant_device().mac, y.dominant_device().mac);
        }
        let c = build_deployment(8);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.wan_addr != y.wan_addr),
            "different seeds must differ"
        );
    }

    #[test]
    fn consent_only_in_us_and_roughly_25() {
        let homes = build_deployment(1);
        for h in &homes {
            if h.traffic_consent {
                assert_eq!(h.country, Country::UnitedStates);
            }
        }
        let consenting = homes.iter().filter(|h| h.traffic_consent).count();
        assert!((15..=40).contains(&consenting), "consenting {consenting}");
    }

    #[test]
    fn uploader_quirks_assigned() {
        let homes = build_deployment(1);
        let uploaders: Vec<&HomeConfig> =
            homes.iter().filter(|h| h.quirk == Some(Quirk::ScientificUploader)).collect();
        assert_eq!(uploaders.len(), 2);
        for h in uploaders {
            assert!(h.traffic_consent);
            assert!(h.up_link.rate_bps < 3_000_000);
        }
    }

    #[test]
    fn developed_links_faster() {
        let homes = build_deployment(3);
        let mean_down = |region: Region| {
            let group: Vec<&HomeConfig> =
                homes.iter().filter(|h| h.country.region() == region).collect();
            group.iter().map(|h| h.down_link.rate_bps as f64).sum::<f64>() / group.len() as f64
        };
        assert!(mean_down(Region::Developed) > 3.0 * mean_down(Region::Developing));
    }

    #[test]
    fn links_have_bufferbloat_scale_queues() {
        for h in build_deployment(2).iter().take(20) {
            let drain_secs = h.up_link.queue_limit_bytes as f64 * 8.0 / h.up_link.rate_bps as f64;
            assert!(drain_secs > 0.1, "uplink queue should hold >100 ms of data");
        }
    }

    #[test]
    fn scaled_deployment_at_126_is_the_table1_deployment() {
        let base = build_deployment(7);
        let scaled = build_deployment_scaled(7, 126);
        assert_eq!(base.len(), scaled.len());
        for (a, b) in base.iter().zip(&scaled) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.country, b.country);
            assert_eq!(a.wan_addr, b.wan_addr);
            assert_eq!(a.session_rate_per_hour, b.session_rate_per_hour);
            assert_eq!(a.quirk, b.quirk);
        }
    }

    #[test]
    fn scaled_deployment_preserves_the_country_mix() {
        let homes = build_deployment_scaled(1, 1000);
        assert_eq!(homes.len(), 1000);
        for country in Country::ALL {
            let got = homes.iter().filter(|h| h.country == country).count() as f64;
            let exact = 1000.0 * country.router_count() as f64 / 126.0;
            assert!(
                (got - exact).abs() <= 1.0,
                "{country:?}: {got} homes vs exact share {exact:.2}"
            );
        }
        // US keeps its Table 1 half-share exactly (63/126 divides evenly).
        let us = homes.iter().filter(|h| h.country == Country::UnitedStates).count();
        assert_eq!(us, 500);
        // Ids stay unique and dense at scale.
        let mut ids: Vec<u32> = homes.iter().map(|h| h.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
        // Quirk prevalence scales with the deployment.
        let uploaders = homes.iter().filter(|h| h.quirk == Some(Quirk::ScientificUploader)).count();
        assert_eq!(uploaders, (1000 * 2) / 126);
    }

    #[test]
    fn scaled_deployment_handles_tiny_and_odd_sizes() {
        for n in [1u32, 5, 19, 127, 311] {
            let homes = build_deployment_scaled(3, n);
            assert_eq!(homes.len(), n as usize, "size {n}");
        }
        // The largest country (US) absorbs the first homes of a tiny
        // deployment; every home still gets a valid country profile.
        let five = build_deployment_scaled(3, 5);
        assert!(five.iter().filter(|h| h.country == Country::UnitedStates).count() >= 2);
    }

    #[test]
    fn scaled_deployment_is_deterministic_and_seed_sensitive() {
        let a = build_deployment_scaled(7, 300);
        let b = build_deployment_scaled(7, 300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.wan_addr, y.wan_addr);
            assert_eq!(x.session_rate_per_hour, y.session_rate_per_hour);
        }
        let c = build_deployment_scaled(8, 300);
        assert!(a.iter().zip(&c).any(|(x, y)| x.wan_addr != y.wan_addr));
        // Growing the deployment keeps each country's block a prefix
        // extension: home ids are stable within the country ordering, so
        // the first homes of a bigger study share nothing *by accident* —
        // each id derives its own stream.
        let big = build_deployment_scaled(7, 600);
        assert_eq!(big.len(), 600);
    }

    #[test]
    fn wan_addresses_unique() {
        let homes = build_deployment(1);
        let mut addrs: Vec<Ipv4Addr> = homes.iter().map(|h| h.wan_addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 126);
    }
}
