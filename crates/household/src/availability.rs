//! Router power behavior and ISP outage processes — the generative side of
//! the paper's §4 (Availability).
//!
//! Two independent processes determine when a home's gateway is reachable:
//!
//! * **Power behavior** ([`PowerMode`]): most households leave the router
//!   on permanently (Fig 6a); a substantial fraction of developing-world
//!   households treat it as an appliance, powering it up in the evening and
//!   for longer stretches on weekends (Fig 6b, the Chinese household);
//! * **ISP outages**: a Poisson process of connectivity losses with
//!   log-normal durations, far more frequent in low-GDP countries (Fig 6c,
//!   Figs 3–5).
//!
//! The router is *reachable* when powered AND the ISP is up. The firmware's
//! heartbeats sample that reachability; the paper (and therefore our
//! analysis crate) cannot distinguish the two causes, a limitation §3.3
//! makes explicit and which we reproduce by construction.

use crate::country::Country;
use crate::interval::{intersect, normalize, Interval};
use serde::{Deserialize, Serialize};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime, MICROS_PER_DAY, MICROS_PER_HOUR};

/// How a household manages router power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerMode {
    /// Router stays powered continuously; only rare reboots (a couple of
    /// minutes, typically under the paper's 10-minute downtime threshold)
    /// plus occasional extended offline periods (vacations, moves,
    /// unplugged equipment) that pull median coverage below 100%.
    AlwaysOn {
        /// Mean reboots per 30 days.
        reboot_rate_per_month: f64,
        /// Mean extended-off events per 30 days.
        extended_off_rate_per_month: f64,
    },
    /// Router powered except during a nightly off window — common in
    /// developing-country homes where equipment is switched off overnight
    /// to save electricity (the paper's India/South Africa coverage
    /// medians of 76%/86% reflect exactly this pattern).
    NightOff {
        /// Local hour the router is switched off (e.g. 0.5 = 00:30).
        off_hour: f64,
        /// Mean off-window length in hours.
        off_hours: f64,
        /// Probability a given night the router stays on.
        skip_night_prob: f64,
    },
    /// Router treated like an appliance: powered for an evening window on
    /// weekdays and longer, more frequent windows on weekends.
    Appliance {
        /// Mean local hour the weekday window opens (e.g. 18.5 = 18:30).
        weekday_on_hour: f64,
        /// Mean weekday window length in hours.
        weekday_hours: f64,
        /// Mean local hour the weekend window opens.
        weekend_on_hour: f64,
        /// Mean weekend window length in hours.
        weekend_hours: f64,
        /// Probability a given day has no window at all.
        skip_day_prob: f64,
    },
}

impl PowerMode {
    /// Sample a household's power mode for the given country.
    pub fn sample(country: Country, rng: &mut DetRng) -> PowerMode {
        let env = country.environment();
        if rng.chance(env.appliance_mode_prob) {
            PowerMode::Appliance {
                weekday_on_hour: rng.uniform_range(17.0, 20.0),
                weekday_hours: rng.uniform_range(2.0, 4.5),
                weekend_on_hour: rng.uniform_range(10.0, 14.0),
                weekend_hours: rng.uniform_range(5.0, 9.0),
                skip_day_prob: rng.uniform_range(0.05, 0.25),
            }
        } else if rng.chance(env.night_off_prob) {
            PowerMode::NightOff {
                off_hour: rng.uniform_range(22.5, 25.0) % 24.0,
                off_hours: rng.uniform_range(3.5, 6.5),
                skip_night_prob: rng.uniform_range(0.1, 0.35),
            }
        } else {
            PowerMode::AlwaysOn {
                reboot_rate_per_month: rng.uniform_range(0.5, 3.0),
                extended_off_rate_per_month: env.extended_off_rate_per_month
                    * rng.log_normal(0.0, 0.5),
            }
        }
    }

    /// True for the appliance pattern.
    pub fn is_appliance(&self) -> bool {
        matches!(self, PowerMode::Appliance { .. })
    }
}

/// The full availability model for one home.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Power behavior.
    pub power: PowerMode,
    /// Mean connectivity outages per day.
    pub outage_rate_per_day: f64,
    /// Median outage duration in minutes.
    pub outage_median_mins: f64,
    /// Log-normal sigma of outage durations.
    pub outage_sigma: f64,
    /// Local-time offset of the home, in hours east of UTC.
    pub utc_offset_hours: i32,
}

impl AvailabilityModel {
    /// Sample a home's availability model from its country profile.
    pub fn sample(country: Country, rng: &mut DetRng) -> AvailabilityModel {
        let env = country.environment();
        // Per-home heterogeneity: outage exposure varies ~3x across homes
        // in the same country (different ISPs, grids, neighborhoods).
        let exposure = rng.log_normal(0.0, 0.45);
        AvailabilityModel {
            power: PowerMode::sample(country, rng),
            outage_rate_per_day: env.outage_rate_per_day * exposure,
            outage_median_mins: env.outage_median_mins,
            outage_sigma: env.outage_sigma,
            utc_offset_hours: country.utc_offset_hours(),
        }
    }

    fn local_to_utc(&self, local_us: u64) -> SimTime {
        let shift = (self.utc_offset_hours.unsigned_abs() as u64) * MICROS_PER_HOUR;
        if self.utc_offset_hours >= 0 {
            SimTime::from_micros(local_us.saturating_sub(shift))
        } else {
            SimTime::from_micros(local_us.saturating_add(shift))
        }
    }

    /// Intervals during which the router is powered, over `[start, end)`
    /// (UTC). Deterministic for a given `rng` stream.
    pub fn power_intervals(&self, start: SimTime, end: SimTime, rng: &mut DetRng) -> Vec<Interval> {
        assert!(start <= end);
        match self.power {
            PowerMode::AlwaysOn { reboot_rate_per_month, extended_off_rate_per_month } => {
                // Powered throughout, minus short reboot gaps and rare
                // extended-off events (vacations, moves).
                let total_days = end.since(start).as_days_f64();
                let mut gaps = Vec::new();
                let reboots = rng.poisson(reboot_rate_per_month / 30.0 * total_days);
                for _ in 0..reboots {
                    let at = start
                        + SimDuration::from_secs_f64(
                            rng.uniform() * end.since(start).as_secs_f64(),
                        );
                    let dur = SimDuration::from_secs_f64(rng.uniform_range(90.0, 240.0));
                    gaps.push(Interval::new(at, (at + dur).min(end)));
                }
                let extended =
                    rng.poisson(extended_off_rate_per_month / 30.0 * total_days);
                for _ in 0..extended {
                    let at = start
                        + SimDuration::from_secs_f64(
                            rng.uniform() * end.since(start).as_secs_f64(),
                        );
                    // Median ~10 hours, occasionally days (a trip).
                    let dur_secs = rng.log_normal((4.0f64 * 3_600.0).ln(), 1.0);
                    let dur = SimDuration::from_secs_f64(dur_secs.clamp(1_800.0, 14.0 * 86_400.0));
                    gaps.push(Interval::new(at, (at + dur).min(end)));
                }
                crate::interval::subtract(&[Interval::new(start, end)], &normalize(gaps))
            }
            PowerMode::NightOff { off_hour, off_hours, skip_night_prob } => {
                // Powered except a nightly window in local time.
                let mut off_windows = Vec::new();
                let start_local_us = match self.utc_offset_hours >= 0 {
                    true => start
                        .as_micros()
                        .saturating_add(self.utc_offset_hours as u64 * MICROS_PER_HOUR),
                    false => start
                        .as_micros()
                        .saturating_sub(self.utc_offset_hours.unsigned_abs() as u64 * MICROS_PER_HOUR),
                };
                let first_day = start_local_us / MICROS_PER_DAY;
                let total_days = (end.since(start).as_days_f64().ceil() as u64) + 2;
                for day in first_day..first_day + total_days {
                    if rng.chance(skip_night_prob) {
                        continue;
                    }
                    // Off windows may cross midnight; the interval algebra
                    // normalizes overlaps between consecutive nights.
                    let off = (off_hour + rng.normal(0.0, 0.5)).clamp(0.0, 23.99);
                    let len = rng.normal(off_hours, 0.75).clamp(2.0, 10.0);
                    let s_local = day * MICROS_PER_DAY + (off * MICROS_PER_HOUR as f64) as u64;
                    let e_local = s_local + (len * MICROS_PER_HOUR as f64) as u64;
                    let s = self.local_to_utc(s_local);
                    let e = self.local_to_utc(e_local);
                    if let Some(clipped) =
                        Interval::new(s, e).intersect(&Interval::new(start, end))
                    {
                        off_windows.push(clipped);
                    }
                }
                crate::interval::subtract(
                    &[Interval::new(start, end)],
                    &normalize(off_windows),
                )
            }
            PowerMode::Appliance {
                weekday_on_hour,
                weekday_hours,
                weekend_on_hour,
                weekend_hours,
                skip_day_prob,
            } => {
                let mut spans = Vec::new();
                // Iterate local calendar days covering [start, end).
                let start_local_us = match self.utc_offset_hours >= 0 {
                    true => start
                        .as_micros()
                        .saturating_add(self.utc_offset_hours as u64 * MICROS_PER_HOUR),
                    false => start
                        .as_micros()
                        .saturating_sub(self.utc_offset_hours.unsigned_abs() as u64 * MICROS_PER_HOUR),
                };
                let first_day = start_local_us / MICROS_PER_DAY;
                let total_days = (end.since(start).as_days_f64().ceil() as u64) + 2;
                for day in first_day..first_day + total_days {
                    if rng.chance(skip_day_prob) {
                        continue;
                    }
                    let local_day = SimTime::from_micros(day * MICROS_PER_DAY);
                    let weekend = local_day.weekday().is_weekend();
                    let (on_hour, hours) = if weekend {
                        (weekend_on_hour, weekend_hours)
                    } else {
                        (weekday_on_hour, weekday_hours)
                    };
                    let open = (on_hour + rng.normal(0.0, 0.75)).clamp(0.0, 23.0);
                    let len = rng.exp(hours).clamp(0.5, 24.0 - open);
                    let s_local = day * MICROS_PER_DAY
                        + (open * MICROS_PER_HOUR as f64) as u64;
                    let e_local = s_local + (len * MICROS_PER_HOUR as f64) as u64;
                    let s = self.local_to_utc(s_local);
                    let e = self.local_to_utc(e_local);
                    if let Some(clipped) =
                        Interval::new(s, e).intersect(&Interval::new(start, end))
                    {
                        spans.push(clipped);
                    }
                }
                normalize(spans)
            }
        }
    }

    /// Intervals during which the ISP connection is *down*, over
    /// `[start, end)` (UTC).
    pub fn isp_outages(&self, start: SimTime, end: SimTime, rng: &mut DetRng) -> Vec<Interval> {
        assert!(start <= end);
        let total_days = end.since(start).as_days_f64();
        let n = rng.poisson(self.outage_rate_per_day * total_days);
        let mu = (self.outage_median_mins * 60.0).ln();
        let mut spans = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let at =
                start + SimDuration::from_secs_f64(rng.uniform() * end.since(start).as_secs_f64());
            let dur_secs = rng.log_normal(mu, self.outage_sigma).clamp(60.0, 7.0 * 86_400.0);
            let dur = SimDuration::from_secs_f64(dur_secs);
            spans.push(Interval::new(at, (at + dur).min(end)));
        }
        normalize(spans)
    }

    /// Intervals during which the router is reachable from the Internet:
    /// powered AND the ISP is up.
    pub fn up_intervals(&self, start: SimTime, end: SimTime, rng: &mut DetRng) -> Vec<Interval> {
        let mut power_rng = rng.derive("power");
        let mut outage_rng = rng.derive("outage");
        let powered = self.power_intervals(start, end, &mut power_rng);
        let outages = self.isp_outages(start, end, &mut outage_rng);
        let up_range = crate::interval::subtract(&[Interval::new(start, end)], &outages);
        intersect(&powered, &up_range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::total_duration;

    fn month() -> (SimTime, SimTime) {
        (SimTime::EPOCH, SimTime::EPOCH + SimDuration::from_days(30))
    }

    #[test]
    fn always_on_covers_nearly_everything() {
        let model = AvailabilityModel {
            power: PowerMode::AlwaysOn { reboot_rate_per_month: 1.0, extended_off_rate_per_month: 0.0 },
            outage_rate_per_day: 0.0,
            outage_median_mins: 30.0,
            outage_sigma: 1.0,
            utc_offset_hours: -5,
        };
        let (s, e) = month();
        let mut rng = DetRng::new(1);
        let up = model.up_intervals(s, e, &mut rng);
        let frac = total_duration(&up) / e.since(s);
        assert!(frac > 0.995, "always-on fraction {frac}");
    }

    #[test]
    fn appliance_mode_fraction_is_low() {
        let model = AvailabilityModel {
            power: PowerMode::Appliance {
                weekday_on_hour: 18.0,
                weekday_hours: 3.0,
                weekend_on_hour: 12.0,
                weekend_hours: 7.0,
                skip_day_prob: 0.1,
            },
            outage_rate_per_day: 0.0,
            outage_median_mins: 30.0,
            outage_sigma: 1.0,
            utc_offset_hours: 8,
        };
        let (s, e) = month();
        let mut rng = DetRng::new(2);
        let up = model.up_intervals(s, e, &mut rng);
        let frac = total_duration(&up) / e.since(s);
        assert!(frac > 0.05 && frac < 0.45, "appliance fraction {frac}");
        assert!(up.len() > 15, "roughly one window per non-skipped day, got {}", up.len());
    }

    #[test]
    fn appliance_windows_fall_in_evening_weekdays() {
        let model = AvailabilityModel {
            power: PowerMode::Appliance {
                weekday_on_hour: 18.0,
                weekday_hours: 3.0,
                weekend_on_hour: 12.0,
                weekend_hours: 7.0,
                skip_day_prob: 0.0,
            },
            outage_rate_per_day: 0.0,
            outage_median_mins: 30.0,
            outage_sigma: 1.0,
            utc_offset_hours: 0, // local == UTC keeps the assertion simple
        };
        let (s, e) = month();
        let mut rng = DetRng::new(3);
        let powered = model.power_intervals(s, e, &mut rng);
        for span in &powered {
            if !span.start.weekday().is_weekend() {
                let h = span.start.hour_of_day_f64();
                assert!((14.0..23.5).contains(&h), "weekday window opened at {h}");
            }
        }
    }

    #[test]
    fn outage_counts_scale_with_rate() {
        let mk = |rate: f64| AvailabilityModel {
            power: PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 },
            outage_rate_per_day: rate,
            outage_median_mins: 30.0,
            outage_sigma: 1.2,
            utc_offset_hours: 0,
        };
        let (s, e) = month();
        let few = mk(0.03).isp_outages(s, e, &mut DetRng::new(4));
        let many = mk(1.5).isp_outages(s, e, &mut DetRng::new(4));
        assert!(many.len() > 5 * few.len().max(1), "{} vs {}", many.len(), few.len());
    }

    #[test]
    fn up_intervals_exclude_outages() {
        let model = AvailabilityModel {
            power: PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 },
            outage_rate_per_day: 1.0,
            outage_median_mins: 60.0,
            outage_sigma: 1.0,
            utc_offset_hours: 0,
        };
        let (s, e) = month();
        let mut rng = DetRng::new(5);
        let up = model.up_intervals(s, e, &mut rng);
        // Regenerate the same outages via the same derived stream.
        let outages = model.isp_outages(s, e, &mut rng.derive("outage"));
        for o in &outages {
            for u in &up {
                assert!(u.intersect(o).is_none(), "up interval overlaps an outage");
            }
        }
        assert!(!outages.is_empty());
    }

    #[test]
    fn sampling_is_deterministic() {
        let (s, e) = month();
        let m1 = AvailabilityModel::sample(Country::India, &mut DetRng::new(6));
        let m2 = AvailabilityModel::sample(Country::India, &mut DetRng::new(6));
        let up1 = m1.up_intervals(s, e, &mut DetRng::new(7));
        let up2 = m2.up_intervals(s, e, &mut DetRng::new(7));
        assert_eq!(up1, up2);
    }

    #[test]
    fn appliance_prevalence_follows_country() {
        let mut rng = DetRng::new(8);
        let count = |c: Country, rng: &mut DetRng| {
            (0..1000).filter(|_| PowerMode::sample(c, rng).is_appliance()).count()
        };
        let us = count(Country::UnitedStates, &mut rng);
        let cn = count(Country::China, &mut rng);
        assert!(cn > 5 * us.max(1), "China {cn} vs US {us}");
    }
}
