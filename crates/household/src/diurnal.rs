//! Diurnal activity: how household network activity varies over the day,
//! differently on weekdays and weekends (Fig 13), in the home's local time.
//!
//! The weekday curve has a pronounced evening peak, a working-hours trough,
//! and only a shallow night dip (phones stay associated overnight); the
//! weekend curve is flatter and higher through the daytime. These are the
//! paper's observations, encoded as smooth hour-of-day multipliers that
//! modulate both device presence and session arrivals.

use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// A household's activity rhythm. `intensity` scales the whole household
/// (some homes simply use the network more).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiurnalModel {
    /// Whole-household multiplier in `(0, ∞)`, log-normal across homes.
    pub intensity: f64,
    /// Phase jitter in hours: households differ in when "evening" is.
    pub phase_hours: f64,
}

impl DiurnalModel {
    /// A neutral rhythm (intensity 1, no phase shift).
    pub fn neutral() -> DiurnalModel {
        DiurnalModel { intensity: 1.0, phase_hours: 0.0 }
    }

    /// Sample a household's rhythm.
    pub fn sample(rng: &mut simnet::rng::DetRng) -> DiurnalModel {
        DiurnalModel {
            intensity: rng.log_normal(0.0, 0.5),
            phase_hours: rng.normal(0.0, 0.7),
        }
    }

    /// Baseline weekday activity multiplier at fractional hour `h` of local
    /// time, in `[0, 1]`. Peak ≈ 1 in the evening.
    pub fn weekday_curve(h: f64) -> f64 {
        // Sum of two smooth bumps: a small morning bump and a large evening
        // bump, over a floor that never quite reaches zero (always-on and
        // overnight devices).
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            // Circular distance in hours.
            let mut d = (h - center).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            height * (-0.5 * (d / width).powi(2)).exp()
        };
        let floor = 0.22;
        let morning = bump(7.5, 1.4, 0.25);
        let evening = bump(20.5, 2.8, 0.78);
        (floor + morning + evening).min(1.0)
    }

    /// Baseline weekend activity multiplier at fractional hour `h`.
    pub fn weekend_curve(h: f64) -> f64 {
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            let mut d = (h - center).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            height * (-0.5 * (d / width).powi(2)).exp()
        };
        let floor = 0.30;
        // One broad daytime plateau rather than a sharp evening peak.
        let daytime = bump(15.0, 5.5, 0.55);
        (floor + daytime).min(1.0)
    }

    /// The household's activity level at UTC instant `t` given its local
    /// offset: baseline curve × intensity, phase-shifted.
    pub fn activity(&self, t: SimTime, utc_offset_hours: i32) -> f64 {
        let local = t.to_local(utc_offset_hours);
        let h = (local.hour_of_day_f64() - self.phase_hours).rem_euclid(24.0);
        let base = if local.weekday().is_weekend() {
            Self::weekend_curve(h)
        } else {
            Self::weekday_curve(h)
        };
        base * self.intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    #[test]
    fn weekday_peaks_in_evening_dips_in_afternoon() {
        let evening = DiurnalModel::weekday_curve(20.5);
        let afternoon = DiurnalModel::weekday_curve(14.0);
        let night = DiurnalModel::weekday_curve(3.5);
        assert!(evening > 2.0 * afternoon, "evening {evening} afternoon {afternoon}");
        assert!(night < evening, "night below evening");
        assert!(night > 0.1, "night dip is shallow (phones stay on)");
    }

    #[test]
    fn night_dip_shallower_than_day_dip_relative_to_peak() {
        // Paper: devices dip only slightly at night compared to the
        // daytime dip... relative to adjacent peaks. We check the afternoon
        // trough is the daily minimum *excluding* late night floor region.
        let afternoon = DiurnalModel::weekday_curve(14.0);
        let morning = DiurnalModel::weekday_curve(7.5);
        assert!(morning > afternoon, "morning bump above afternoon trough");
    }

    #[test]
    fn weekend_flatter_than_weekday() {
        let spread = |f: fn(f64) -> f64| {
            let values: Vec<f64> = (0..24).map(|h| f(h as f64)).collect();
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            let min = values.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(
            spread(DiurnalModel::weekend_curve) < 0.75 * spread(DiurnalModel::weekday_curve),
            "weekend curve must be flatter"
        );
    }

    #[test]
    fn curves_bounded() {
        for h in 0..240 {
            let h = h as f64 / 10.0;
            for f in [DiurnalModel::weekday_curve, DiurnalModel::weekend_curve] {
                let v = f(h);
                assert!((0.0..=1.0).contains(&v), "curve out of range at {h}: {v}");
            }
        }
    }

    #[test]
    fn activity_respects_local_time() {
        let model = DiurnalModel::neutral();
        // 20:30 UTC == 20:30 local at offset 0 == peak; at offset +8 it is
        // 04:30 local == floor.
        let t = SimTime::EPOCH + SimDuration::from_mins(20 * 60 + 30);
        let at_peak = model.activity(t, 0);
        let at_floor = model.activity(t, 8);
        assert!(at_peak > 2.0 * at_floor);
    }

    #[test]
    fn weekend_branch_engages() {
        let model = DiurnalModel::neutral();
        // Day 5 of the study is a Saturday; mid-afternoon weekend activity
        // exceeds mid-afternoon weekday activity.
        let saturday = SimTime::EPOCH + SimDuration::from_days(5) + SimDuration::from_hours(14);
        let tuesday = SimTime::EPOCH + SimDuration::from_days(1) + SimDuration::from_hours(14);
        assert!(model.activity(saturday, 0) > model.activity(tuesday, 0));
    }

    #[test]
    fn intensity_scales_linearly() {
        let base = DiurnalModel::neutral();
        let double = DiurnalModel { intensity: 2.0, phase_hours: 0.0 };
        let t = SimTime::EPOCH + SimDuration::from_hours(20);
        assert!((double.activity(t, 0) - 2.0 * base.activity(t, 0)).abs() < 1e-12);
    }

    #[test]
    fn sampled_models_vary_but_stay_positive() {
        let mut rng = simnet::rng::DetRng::new(5);
        let models: Vec<DiurnalModel> = (0..100).map(|_| DiurnalModel::sample(&mut rng)).collect();
        let intensities: Vec<f64> = models.iter().map(|m| m.intensity).collect();
        assert!(intensities.iter().all(|&i| i > 0.0));
        let mean = intensities.iter().sum::<f64>() / 100.0;
        assert!((0.7..1.8).contains(&mean), "mean intensity {mean}");
    }
}
