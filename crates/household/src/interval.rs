//! Half-open time intervals `[start, end)` and set operations over
//! normalized interval lists. The availability models compose "router
//! powered" and "ISP up" interval sets with these primitives.

use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

/// A half-open span of virtual time, `start <= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Interval {
    /// Construct, panicking on inverted bounds.
    pub fn new(start: SimTime, end: SimTime) -> Interval {
        assert!(start <= end, "inverted interval");
        Interval { start, end }
    }

    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// True when the interval contains `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// True when the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Intersection with another interval, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }
}

/// Normalize a list: drop empties, sort, merge overlapping/touching spans.
pub fn normalize(mut spans: Vec<Interval>) -> Vec<Interval> {
    spans.retain(|s| !s.is_empty());
    spans.sort_by_key(|s| (s.start, s.end));
    let mut out: Vec<Interval> = Vec::with_capacity(spans.len());
    for s in spans {
        match out.last_mut() {
            Some(last) if s.start <= last.end => {
                last.end = last.end.max(s.end);
            }
            _ => out.push(s),
        }
    }
    out
}

/// Intersection of two normalized lists.
pub fn intersect(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if let Some(overlap) = a[i].intersect(&b[j]) {
            out.push(overlap);
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a` minus `b`, both normalized.
pub fn subtract(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut j = 0;
    for span in a {
        let mut cursor = span.start;
        while j < b.len() && b[j].end <= cursor {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && b[k].start < span.end {
            if b[k].start > cursor {
                out.push(Interval { start: cursor, end: b[k].start });
            }
            cursor = cursor.max(b[k].end);
            if cursor >= span.end {
                break;
            }
            k += 1;
        }
        if cursor < span.end {
            out.push(Interval { start: cursor, end: span.end });
        }
    }
    normalize(out)
}

/// Total covered duration of a normalized list.
pub fn total_duration(spans: &[Interval]) -> SimDuration {
    spans
        .iter()
        .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
}

/// The gaps between consecutive spans of a normalized list, within
/// `[range.start, range.end)` — i.e. the *downtime* intervals.
pub fn gaps_within(spans: &[Interval], range: Interval) -> Vec<Interval> {
    subtract(&[range], spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(SimTime::from_micros(a), SimTime::from_micros(b))
    }

    #[test]
    fn normalize_merges_overlaps_and_touches() {
        let spans = vec![iv(10, 20), iv(0, 5), iv(18, 30), iv(5, 7), iv(40, 40)];
        assert_eq!(normalize(spans), vec![iv(0, 7), iv(10, 30)]);
    }

    #[test]
    fn intersect_basic() {
        let a = vec![iv(0, 10), iv(20, 30)];
        let b = vec![iv(5, 25)];
        assert_eq!(intersect(&a, &b), vec![iv(5, 10), iv(20, 25)]);
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        assert!(intersect(&[iv(0, 5)], &[iv(5, 10)]).is_empty());
    }

    #[test]
    fn subtract_carves_holes() {
        let a = vec![iv(0, 100)];
        let b = vec![iv(10, 20), iv(50, 60)];
        assert_eq!(subtract(&a, &b), vec![iv(0, 10), iv(20, 50), iv(60, 100)]);
    }

    #[test]
    fn subtract_complete_cover() {
        assert!(subtract(&[iv(5, 10)], &[iv(0, 20)]).is_empty());
    }

    #[test]
    fn subtract_nothing() {
        assert_eq!(subtract(&[iv(5, 10)], &[]), vec![iv(5, 10)]);
    }

    #[test]
    fn subtract_multiple_sources() {
        let a = vec![iv(0, 10), iv(20, 30)];
        let b = vec![iv(8, 22)];
        assert_eq!(subtract(&a, &b), vec![iv(0, 8), iv(22, 30)]);
    }

    #[test]
    fn gaps_are_downtime() {
        let up = vec![iv(10, 20), iv(30, 40)];
        let gaps = gaps_within(&up, iv(0, 50));
        assert_eq!(gaps, vec![iv(0, 10), iv(20, 30), iv(40, 50)]);
    }

    #[test]
    fn duration_and_contains() {
        let s = iv(10, 25);
        assert_eq!(s.duration().as_micros(), 15);
        assert!(s.contains(SimTime::from_micros(10)));
        assert!(!s.contains(SimTime::from_micros(25)));
        assert_eq!(total_duration(&[iv(0, 5), iv(10, 20)]).as_micros(), 15);
    }

    #[test]
    fn subtract_then_union_partition_property() {
        // subtract(a,b) ∪ intersect(a,b) == a
        let a = vec![iv(0, 50), iv(60, 100)];
        let b = vec![iv(10, 70), iv(90, 95)];
        let mut rebuilt = subtract(&a, &b);
        rebuilt.extend(intersect(&a, &b));
        assert_eq!(normalize(rebuilt), a);
    }
}
