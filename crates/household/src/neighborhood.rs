//! The radio neighborhood around each home: how many foreign access points
//! beacon near the house, on which channels, how strong, and how busy.
//!
//! Fig 11's two observations drive the model: developed-country homes see
//! *many* more APs (median ≈ 20 vs ≈ 2), and both distributions are
//! **bimodal** — a home is either in a dense environment (apartment
//! buildings, row housing) or a sparse one (detached/rural), with little in
//! between. 2.4 GHz is far more occupied than 5 GHz.

use crate::country::Country;
use simnet::rng::DetRng;
use simnet::wifi::{Band, Channel, NeighborAp};
use simnet::packet::MacAddr;

/// Sample the set of neighboring APs visible around one home.
///
/// The returned list covers both bands; the gateway's per-band radios see
/// only the co-channel/overlapping subset when they scan.
pub fn sample_neighborhood(country: Country, rng: &mut DetRng) -> Vec<NeighborAp> {
    let env = country.environment();
    let dense = rng.chance(env.dense_neighborhood_prob);
    let mean_24 = if dense { env.dense_neighbor_aps } else { env.sparse_neighbor_aps };
    // 5 GHz occupancy is a small fraction of 2.4 GHz (§5.3: median of about
    // one AP visible on 5 GHz).
    let mean_5 = (mean_24 * 0.12).max(0.4);

    let n24 = rng.poisson(mean_24) as usize;
    let n5 = rng.poisson(mean_5) as usize;
    let mut aps = Vec::with_capacity(n24 + n5);

    // 2.4 GHz: neighbors cluster on the classic 1/6/11 channels with some
    // spread; channel 11 is our default, so co-channel contention is real.
    let popular = [1u8, 6, 11];
    for i in 0..n24 {
        let number = if rng.chance(0.75) {
            *rng.pick(&popular)
        } else {
            rng.uniform_int(1, 12) as u8
        };
        let channel = Channel::new(Band::Ghz24, number).expect("valid 2.4 GHz channel");
        aps.push(NeighborAp {
            bssid: neighbor_bssid(rng, i as u32),
            channel,
            signal_dbm: sample_signal(dense, rng),
            airtime_load: rng.uniform_range(0.01, 0.25),
        });
    }
    // 5 GHz: sparse, spread over the UNII-1 set.
    let unii1 = [36u8, 40, 44, 48];
    for i in 0..n5 {
        let channel =
            Channel::new(Band::Ghz5, *rng.pick(&unii1)).expect("valid 5 GHz channel");
        aps.push(NeighborAp {
            bssid: neighbor_bssid(rng, 0x8000_0000 | i as u32),
            channel,
            signal_dbm: sample_signal(dense, rng),
            airtime_load: rng.uniform_range(0.005, 0.1),
        });
    }
    aps
}

fn neighbor_bssid(rng: &mut DetRng, salt: u32) -> MacAddr {
    // Gateway-vendor OUI space for neighbor APs.
    let ouis = [0xF8_1A_67u32, 0x00_26_5A, 0x00_25_9C, 0x94_10_3E, 0xC0_3F_0E];
    let oui = *rng.pick(&ouis);
    MacAddr::from_oui_nic(oui, (rng.next_u64() as u32 ^ salt) & 0xFF_FF_FF)
}

fn sample_signal(dense: bool, rng: &mut DetRng) -> i8 {
    // Dense environments put neighbors closer (stronger). Clamp to the
    // plausible received range.
    let mean = if dense { -72.0 } else { -82.0 };
    rng.normal(mean, 7.0).clamp(-91.0, -35.0) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighborhoods(country: Country, n: usize) -> Vec<Vec<NeighborAp>> {
        let root = DetRng::new(88);
        (0..n)
            .map(|i| sample_neighborhood(country, &mut root.derive_indexed("hood", i as u64)))
            .collect()
    }

    fn count_band(hood: &[NeighborAp], band: Band) -> usize {
        hood.iter().filter(|ap| ap.channel.band == band).count()
    }

    #[test]
    fn developed_denser_than_developing() {
        let us = neighborhoods(Country::UnitedStates, 300);
        let india = neighborhoods(Country::India, 300);
        let mean = |hs: &[Vec<NeighborAp>]| {
            hs.iter().map(|h| count_band(h, Band::Ghz24)).sum::<usize>() as f64 / hs.len() as f64
        };
        assert!(mean(&us) > 3.0 * mean(&india), "{} vs {}", mean(&us), mean(&india));
    }

    #[test]
    fn two_four_ghz_more_crowded_than_five() {
        let us = neighborhoods(Country::UnitedStates, 300);
        let n24: usize = us.iter().map(|h| count_band(h, Band::Ghz24)).sum();
        let n5: usize = us.iter().map(|h| count_band(h, Band::Ghz5)).sum();
        assert!(n24 > 4 * n5, "2.4 GHz {n24} vs 5 GHz {n5}");
    }

    #[test]
    fn bimodality_in_developed_counts() {
        // Either very few APs or a lot (Fig 11): the between-mode middle
        // should be sparsely populated relative to the extremes.
        let us = neighborhoods(Country::UnitedStates, 500);
        let counts: Vec<usize> = us.iter().map(|h| count_band(h, Band::Ghz24)).collect();
        let low = counts.iter().filter(|&&c| c <= 6).count();
        let high = counts.iter().filter(|&&c| c >= 15).count();
        let mid = counts.iter().filter(|&&c| (9..=12).contains(&c)).count();
        assert!(low > mid && high > mid, "bimodal: low {low} mid {mid} high {high}");
    }

    #[test]
    fn channels_valid_and_popular_favored() {
        let us = neighborhoods(Country::UnitedStates, 200);
        let mut popular = 0usize;
        let mut total = 0usize;
        for ap in us.iter().flatten() {
            match ap.channel.band {
                Band::Ghz24 => {
                    assert!((1..=11).contains(&ap.channel.number));
                    total += 1;
                    if matches!(ap.channel.number, 1 | 6 | 11) {
                        popular += 1;
                    }
                }
                Band::Ghz5 => assert!(matches!(ap.channel.number, 36 | 40 | 44 | 48)),
            }
            assert!((-91..=-35).contains(&ap.signal_dbm));
            assert!((0.0..=0.3).contains(&ap.airtime_load));
        }
        assert!(popular as f64 > 0.6 * total as f64, "1/6/11 clustering");
    }

    #[test]
    fn deterministic_per_stream() {
        let a = sample_neighborhood(Country::Brazil, &mut DetRng::new(9).derive("x"));
        let b = sample_neighborhood(Country::Brazil, &mut DetRng::new(9).derive("x"));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bssid, y.bssid);
        }
    }
}
