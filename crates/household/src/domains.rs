//! The simulated Internet's domain universe and per-home domain
//! preferences — the generative side of the paper's §6.4.
//!
//! Structure that matters to the figures:
//!
//! * a **whitelist** of 200 popular domains (the paper used the Alexa US
//!   top-200): traffic to these is reported by name; everything else is
//!   anonymized by the firmware and lands in the analysis as an obfuscated
//!   token. Whitelisted traffic carries ≈65% of bytes on average (§6.4).
//! * **category structure**: video/music domains serve large rate-limited
//!   sessions over few connections, search/social domains serve many small
//!   connections — the source of Fig 19's volume-vs-connection asymmetry.
//! * **per-home taste**: every home permutes the within-category rankings,
//!   so the most popular domains are shared across homes (Google, YouTube,
//!   Facebook are top-10 nearly everywhere — Fig 18) while the tail is
//!   idiosyncratic.

use netstack::AppKind;
use serde::{Deserialize, Serialize};
use simnet::dns::{DomainName, ZoneDb};
use simnet::rng::{DetRng, ZipfTable};
use simnet::time::SimDuration;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Service category of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Search engines and portals.
    Search,
    /// Video streaming.
    Video,
    /// Audio streaming.
    Music,
    /// Social networks.
    Social,
    /// Shopping.
    Shopping,
    /// Cloud storage / sync.
    CloudStorage,
    /// News and media sites.
    News,
    /// Software/OS vendors, updates, CDNs.
    Tech,
    /// VoIP services.
    Voip,
    /// Gaming services.
    Gaming,
    /// Everything else (the unlisted tail).
    Other,
}

/// One domain in the universe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainInfo {
    /// The (base) domain name.
    pub name: DomainName,
    /// Service category.
    pub category: Category,
    /// The address its servers resolve to.
    pub addr: Ipv4Addr,
    /// True for the 200 whitelisted popular domains.
    pub whitelisted: bool,
}

/// Index into [`DomainUniverse::domains`].
pub type DomainIdx = usize;

/// The full set of domains the simulated Internet serves.
#[derive(Debug, Clone)]
pub struct DomainUniverse {
    domains: Vec<DomainInfo>,
    by_category: BTreeMap<Category, Vec<DomainIdx>>,
}

/// Named heads of the whitelist: (name, category). Order is global
/// popularity rank; categories drawn to mirror the Alexa-US mix of the era.
const NAMED_HEAD: &[(&str, Category)] = &[
    ("google.com", Category::Search),
    ("youtube.com", Category::Video),
    ("facebook.com", Category::Social),
    ("amazon.com", Category::Shopping),
    ("apple.com", Category::Tech),
    ("twitter.com", Category::Social),
    ("netflix.com", Category::Video),
    ("yahoo.com", Category::Search),
    ("wikipedia.org", Category::News),
    ("ebay.com", Category::Shopping),
    ("bing.com", Category::Search),
    ("hulu.com", Category::Video),
    ("pandora.com", Category::Music),
    ("dropbox.com", Category::CloudStorage),
    ("linkedin.com", Category::Social),
    ("craigslist.org", Category::Shopping),
    ("cnn.com", Category::News),
    ("espn.com", Category::News),
    ("microsoft.com", Category::Tech),
    ("akamai.net", Category::Tech),
    ("spotify.com", Category::Music),
    ("skype.com", Category::Voip),
    ("xboxlive.com", Category::Gaming),
    ("steampowered.com", Category::Gaming),
    ("instagram.com", Category::Social),
    ("tumblr.com", Category::Social),
    ("reddit.com", Category::News),
    ("nytimes.com", Category::News),
    ("paypal.com", Category::Shopping),
    ("vimeo.com", Category::Video),
];

/// Number of whitelisted domains (the paper's Alexa top-200 default).
pub const WHITELIST_LEN: usize = 200;
/// Number of non-whitelisted tail domains in the universe.
pub const TAIL_LEN: usize = 400;

impl DomainUniverse {
    /// Build the standard deterministic universe: 200 whitelisted domains
    /// (30 named heads plus generated fillers) and a 400-domain tail.
    pub fn standard() -> DomainUniverse {
        let mut domains = Vec::with_capacity(WHITELIST_LEN + TAIL_LEN);
        let filler_categories = [
            Category::News,
            Category::Shopping,
            Category::Tech,
            Category::Social,
            Category::Search,
            Category::Video,
            Category::Music,
        ];
        for (i, (name, category)) in NAMED_HEAD.iter().enumerate() {
            domains.push(DomainInfo {
                name: DomainName::new(name).expect("static names are valid"),
                category: *category,
                addr: Self::addr_for(i),
                whitelisted: true,
            });
        }
        for i in NAMED_HEAD.len()..WHITELIST_LEN {
            let category = filler_categories[i % filler_categories.len()];
            domains.push(DomainInfo {
                name: DomainName::new(&format!("site{i:03}.com")).expect("generated name valid"),
                category,
                addr: Self::addr_for(i),
                whitelisted: true,
            });
        }
        for i in 0..TAIL_LEN {
            // The tail mixes generic sites with unlisted CDN/video hosts, so
            // anonymized traffic still carries meaningful volume (≈35%).
            let category = match i % 10 {
                0 | 1 => Category::Video,
                2 => Category::CloudStorage,
                3 => Category::Tech,
                _ => Category::Other,
            };
            domains.push(DomainInfo {
                name: DomainName::new(&format!("tail{i:03}.net")).expect("generated name valid"),
                category,
                addr: Self::addr_for(WHITELIST_LEN + i),
                whitelisted: false,
            });
        }
        let mut by_category: BTreeMap<Category, Vec<DomainIdx>> = BTreeMap::new();
        for (idx, d) in domains.iter().enumerate() {
            by_category.entry(d.category).or_default().push(idx);
        }
        DomainUniverse { domains, by_category }
    }

    fn addr_for(i: usize) -> Ipv4Addr {
        // Spread servers across documentation-safe public space.
        Ipv4Addr::new(23, 64 + (i / 250) as u8, (i % 250) as u8 + 1, 10)
    }

    /// All domains, whitelist first.
    pub fn domains(&self) -> &[DomainInfo] {
        &self.domains
    }

    /// Look up a domain by index.
    pub fn get(&self, idx: DomainIdx) -> &DomainInfo {
        &self.domains[idx]
    }

    /// Indices of all domains in a category.
    pub fn in_category(&self, category: Category) -> &[DomainIdx] {
        self.by_category.get(&category).map_or(&[], Vec::as_slice)
    }

    /// The default whitelist (first 200 domains), as the firmware consumes it.
    pub fn whitelist(&self) -> Vec<DomainName> {
        self.domains.iter().filter(|d| d.whitelisted).map(|d| d.name.clone()).collect()
    }

    /// Populate a DNS zone with every domain (a `www.` CNAME plus the base
    /// A record, so captured responses include CNAME chains).
    pub fn build_zone(&self) -> ZoneDb {
        let mut zone = ZoneDb::new();
        for d in &self.domains {
            zone.insert_a(d.name.clone(), d.addr, SimDuration::from_secs(300));
            let www = DomainName::new(&format!("www.{}", d.name)).expect("www name valid");
            zone.insert_cname(www, d.name.clone(), SimDuration::from_secs(300));
        }
        zone
    }
}

/// Which categories an application class draws from, with weights.
fn categories_for(kind: AppKind) -> &'static [(Category, f64)] {
    match kind {
        AppKind::Web => &[
            (Category::Search, 0.34),
            (Category::Social, 0.26),
            (Category::Video, 0.08), // browsing video portals without streaming
            (Category::Shopping, 0.11),
            (Category::News, 0.11),
            (Category::Tech, 0.04),
            (Category::Other, 0.06),
        ],
        AppKind::StreamingVideo => &[(Category::Video, 0.82), (Category::Other, 0.18)],
        AppKind::StreamingAudio => &[(Category::Music, 0.9), (Category::Other, 0.1)],
        AppKind::Voip => &[(Category::Voip, 1.0)],
        AppKind::BulkUpload => &[(Category::Other, 0.75), (Category::CloudStorage, 0.25)],
        AppKind::CloudSync => &[(Category::CloudStorage, 0.9), (Category::Other, 0.1)],
        AppKind::Background => &[(Category::Tech, 0.75), (Category::Other, 0.25)],
        AppKind::Gaming => &[(Category::Gaming, 1.0)],
    }
}

/// A home's personal domain taste: a per-category jittered ranking over the
/// universe, fixed for the life of the home.
#[derive(Debug, Clone)]
pub struct HomeTaste {
    /// Per-category domain orderings (most preferred first).
    order: BTreeMap<Category, Vec<DomainIdx>>,
    /// Zipf sampler per category length.
    zipf: BTreeMap<Category, ZipfTable>,
}

impl HomeTaste {
    /// Sample a home's taste. Global rank is respected on average (rank
    /// scores are jittered log-normally), so Google/YouTube stay near the
    /// top of most homes while each home still has personal favorites.
    pub fn sample(universe: &DomainUniverse, rng: &mut DetRng) -> HomeTaste {
        let mut order = BTreeMap::new();
        let mut zipf = BTreeMap::new();
        // BTreeMap iteration is Category-ordered, so the per-category RNG
        // draws below are consumed identically on every construction.
        for (&category, indices) in universe.by_category.iter() {
            let mut scored: Vec<(f64, DomainIdx)> = indices
                .iter()
                .map(|&idx| {
                    // Global popularity decays with universe index; jitter
                    // lets a home promote a personal favorite.
                    let global = 1.0 / (idx as f64 + 2.0);
                    (global * rng.log_normal(0.0, 1.1), idx)
                })
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores finite"));
            let ordered: Vec<DomainIdx> = scored.into_iter().map(|(_, idx)| idx).collect();
            // Browsing-style categories concentrate hard on a favorite
            // (search engines, social networks); streaming catalogs spread
            // volume across more services. These exponents set the Fig 19
            // volume-vs-connection concentration.
            let exponent = match category {
                Category::Video | Category::Music | Category::Other => 1.5,
                _ => 1.9,
            };
            zipf.insert(category, ZipfTable::new(ordered.len(), exponent));
            order.insert(category, ordered);
        }
        HomeTaste { order, zipf }
    }

    /// Pick a destination domain for a session of the given kind.
    pub fn pick_domain(&self, kind: AppKind, rng: &mut DetRng) -> DomainIdx {
        let cats = categories_for(kind);
        let weights: Vec<f64> = cats.iter().map(|(_, w)| *w).collect();
        let category = cats[rng.weighted_index(&weights)].0;
        let ordered = &self.order[&category];
        let rank = rng.zipf(&self.zipf[&category]);
        ordered[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_counts() {
        let u = DomainUniverse::standard();
        assert_eq!(u.domains().len(), WHITELIST_LEN + TAIL_LEN);
        assert_eq!(u.whitelist().len(), WHITELIST_LEN);
        assert!(u.get(0).whitelisted);
        assert!(!u.get(WHITELIST_LEN).whitelisted);
    }

    #[test]
    fn named_heads_present_and_categorized() {
        let u = DomainUniverse::standard();
        assert_eq!(u.get(0).name.as_str(), "google.com");
        assert_eq!(u.get(6).name.as_str(), "netflix.com");
        assert_eq!(u.get(6).category, Category::Video);
        assert!(u.in_category(Category::Video).len() >= 4);
        assert!(!u.in_category(Category::Voip).is_empty());
        assert!(!u.in_category(Category::Gaming).is_empty());
    }

    #[test]
    fn addresses_unique() {
        let u = DomainUniverse::standard();
        let mut addrs = std::collections::HashSet::new();
        for d in u.domains() {
            assert!(addrs.insert(d.addr), "duplicate address {}", d.addr);
        }
    }

    #[test]
    fn zone_resolves_both_base_and_www() {
        let u = DomainUniverse::standard();
        let zone = u.build_zone();
        let q = simnet::dns::DnsQuery {
            id: 1,
            name: DomainName::new("www.netflix.com").unwrap(),
        };
        let resp = zone.resolve(&q);
        assert_eq!(resp.address(), Some(u.get(6).addr));
        assert_eq!(resp.answers.len(), 2, "CNAME chain captured");
    }

    #[test]
    fn taste_heads_are_shared_across_homes() {
        // Fig 18: the same few domains are top-ranked in most homes.
        let u = DomainUniverse::standard();
        let root = DetRng::new(31);
        let mut google_top = 0;
        let homes = 60;
        for i in 0..homes {
            let taste = HomeTaste::sample(&u, &mut root.derive_indexed("taste", i));
            let search_order = &taste.order[&Category::Search];
            // google.com is universe index 0.
            let google_rank = search_order.iter().position(|&d| d == 0).unwrap();
            if google_rank < 3 {
                google_top += 1;
            }
        }
        assert!(
            google_top > homes / 2,
            "google should rank top-3 in search for most homes: {google_top}/{homes}"
        );
    }

    #[test]
    fn taste_tails_are_idiosyncratic() {
        let u = DomainUniverse::standard();
        let root = DetRng::new(32);
        let t1 = HomeTaste::sample(&u, &mut root.derive_indexed("taste", 1));
        let t2 = HomeTaste::sample(&u, &mut root.derive_indexed("taste", 2));
        assert_ne!(
            t1.order[&Category::News], t2.order[&Category::News],
            "two homes should not share an identical ranking"
        );
    }

    #[test]
    fn video_sessions_hit_video_domains() {
        let u = DomainUniverse::standard();
        let root = DetRng::new(33);
        let taste = HomeTaste::sample(&u, &mut root.derive("taste"));
        let mut rng = root.derive("picks");
        let mut video_or_other = 0;
        for _ in 0..500 {
            let idx = taste.pick_domain(AppKind::StreamingVideo, &mut rng);
            let cat = u.get(idx).category;
            assert!(
                matches!(cat, Category::Video | Category::Other),
                "video session went to {cat:?}"
            );
            if cat == Category::Video {
                video_or_other += 1;
            }
        }
        assert!(video_or_other > 300, "most video sessions hit Video domains");
    }

    #[test]
    fn picks_concentrate_on_preferred_head() {
        let u = DomainUniverse::standard();
        let root = DetRng::new(34);
        let taste = HomeTaste::sample(&u, &mut root.derive("taste"));
        let mut rng = root.derive("picks");
        let mut counts: BTreeMap<DomainIdx, u32> = BTreeMap::new();
        for _ in 0..2_000 {
            *counts.entry(taste.pick_domain(AppKind::Web, &mut rng)).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 100, "a favorite domain must dominate: max {max}");
        assert!(counts.len() > 30, "the tail must be long: {} distinct", counts.len());
    }

    #[test]
    fn bulk_upload_mostly_unwhitelisted() {
        // The paper's scientific-data uploader pushed to a university host,
        // invisible to the whitelist. Our BulkUpload class mirrors that.
        let u = DomainUniverse::standard();
        let root = DetRng::new(35);
        let taste = HomeTaste::sample(&u, &mut root.derive("taste"));
        let mut rng = root.derive("picks");
        let unlisted = (0..300)
            .filter(|_| !u.get(taste.pick_domain(AppKind::BulkUpload, &mut rng)).whitelisted)
            .count();
        assert!(unlisted > 150, "bulk uploads should often leave the whitelist: {unlisted}");
    }
}
