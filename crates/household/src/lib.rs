//! # household — population and behavior models
//!
//! Everything *human* about the reproduction lives here: where the homes
//! are ([`country`], Table 1), how people power their routers and how often
//! their ISPs fail ([`availability`], §4), what devices they own and which
//! one dominates usage ([`devices`], §5/§6.3), when they are active
//! ([`diurnal`], Fig 13), which services they talk to ([`domains`], §6.4),
//! and how crowded their radio neighborhood is ([`neighborhood`], Fig 11).
//! [`home`] assembles these into complete households and instantiates the
//! 126-home deployment.
//!
//! Every model is calibrated to the paper's published marginals and is
//! deterministic given a seed. The models generate *behavior*; the
//! measured numbers in the figures come from the firmware instrument
//! observing that behavior, never from these models directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod country;
pub mod devices;
pub mod diurnal;
pub mod domains;
pub mod home;
pub mod interval;
pub mod neighborhood;

pub use availability::{AvailabilityModel, PowerMode};
pub use country::{Country, Region};
pub use devices::{Attachment, Device, DeviceType, VendorClass};
pub use diurnal::DiurnalModel;
pub use domains::{Category, DomainUniverse, HomeTaste};
pub use home::{build_deployment, build_deployment_scaled, HomeConfig, HomeId, Quirk};
pub use interval::Interval;
