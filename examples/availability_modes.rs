//! Figure 6 up close: simulate three archetype households — an always-on
//! US home, a router-as-appliance Chinese home, and a flaky-ISP home —
//! and print their heartbeat availability timelines.
//!
//! ```sh
//! cargo run --release --example availability_modes
//! ```

use analysis::render;
use bismark::homesim::{HomeSim, SimParams};
use bismark::study::StudyWindows;
use collector::windows::Window;
use collector::{Collector, RouterMeta};
use firmware::records::RouterId;
use household::availability::{AvailabilityModel, PowerMode};
use household::domains::DomainUniverse;
use household::{Country, HomeConfig, HomeId};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

fn main() {
    let days = 21;
    let span = Window {
        start: SimTime::EPOCH,
        end: SimTime::EPOCH + SimDuration::from_days(days),
    };
    let windows = StudyWindows::scaled(span);
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let collector = Collector::new();

    // Three hand-built archetypes. We sample a base home per country and
    // then pin its availability model so each mode is guaranteed to show.
    let root = DetRng::new(6);
    let mut homes: Vec<HomeConfig> = Vec::new();

    let mut always_on =
        HomeConfig::sample(HomeId(0), Country::UnitedStates, &root.derive_indexed("home", 0));
    always_on.availability = AvailabilityModel {
        power: PowerMode::AlwaysOn { reboot_rate_per_month: 1.0, extended_off_rate_per_month: 0.0 },
        outage_rate_per_day: 0.02,
        outage_median_mins: 20.0,
        outage_sigma: 1.0,
        utc_offset_hours: -5,
    };
    homes.push(always_on);

    let mut appliance =
        HomeConfig::sample(HomeId(1), Country::China, &root.derive_indexed("home", 1));
    appliance.availability = AvailabilityModel {
        power: PowerMode::Appliance {
            weekday_on_hour: 18.5,
            weekday_hours: 3.0,
            weekend_on_hour: 11.0,
            weekend_hours: 8.0,
            skip_day_prob: 0.1,
        },
        outage_rate_per_day: 0.2,
        outage_median_mins: 30.0,
        outage_sigma: 1.2,
        utc_offset_hours: 8,
    };
    homes.push(appliance);

    let mut flaky =
        HomeConfig::sample(HomeId(2), Country::UnitedStates, &root.derive_indexed("home", 2));
    flaky.availability = AvailabilityModel {
        power: PowerMode::AlwaysOn { reboot_rate_per_month: 0.5, extended_off_rate_per_month: 0.0 },
        outage_rate_per_day: 3.0, // sporadic ISP outages for days on end
        outage_median_mins: 45.0,
        outage_sigma: 1.5,
        utc_offset_hours: -5,
    };
    homes.push(flaky);

    for home in &homes {
        collector.register(RouterMeta {
            router: RouterId(home.id.0),
            country: home.country,
            traffic_consent: false,
        });
        HomeSim::new(SimParams {
            cfg: home,
            universe: &universe,
            zone: &zone,
            windows: &windows,
            seed: 6,
            reliable_upload: false,
            faults: None,
            cgn: None,
        })
        .run(&collector);
    }

    let data = collector.snapshot();
    for (label, id, tz) in [
        ("(a) always-on (US, EDT)", 0u32, -5),
        ("(b) router as appliance (China, CST)", 1, 8),
        ("(c) sporadic ISP outages (US, EDT)", 2, -5),
    ] {
        let up = analysis::availability::fig6_timeline(&data, RouterId(id), span);
        println!(
            "{}",
            render::timeline(&format!("Figure 6{label} — '#' = heartbeats arriving"), &up, span)
        );
        let log = &data.heartbeats[&RouterId(id)];
        println!(
            "  coverage: {:.1}% of the window (local offset UTC{tz:+})\n",
            log.coverage(span.start, span.end) * 100.0
        );
    }
}
