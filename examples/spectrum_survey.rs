//! Spectrum deep-dive (§5.3): sweep neighborhood density and watch what
//! the router's scans see — how crowded 2.4 GHz is versus 5 GHz, how much
//! airtime co-channel neighbors steal, and how the Fig 11 bimodality
//! arises from dense vs sparse environments.
//!
//! ```sh
//! cargo run --release --example spectrum_survey
//! ```

use firmware::anonymize::Anonymizer;
use simnet::rng::DetRng;
use simnet::wifi::{Band, Channel, NeighborAp, Radio};
use simnet::packet::MacAddr;

/// Build a synthetic neighborhood with `n24` APs on 2.4 GHz (clustered on
/// channels 1/6/11) and `n5` on 5 GHz.
fn neighborhood(n24: usize, n5: usize, rng: &mut DetRng) -> Vec<NeighborAp> {
    let mut aps = Vec::new();
    for i in 0..n24 {
        let number = [1u8, 6, 11][i % 3];
        aps.push(NeighborAp {
            bssid: MacAddr::from_oui_nic(0xF8_1A_67, i as u32),
            channel: Channel::new(Band::Ghz24, number).expect("valid"),
            signal_dbm: rng.normal(-70.0, 8.0).clamp(-91.0, -40.0) as i8,
            airtime_load: rng.uniform_range(0.02, 0.2),
        });
    }
    for i in 0..n5 {
        aps.push(NeighborAp {
            bssid: MacAddr::from_oui_nic(0x00_26_5A, 0x8000 + i as u32),
            channel: Channel::new(Band::Ghz5, [36u8, 40, 44, 48][i % 4]).expect("valid"),
            signal_dbm: rng.normal(-75.0, 6.0).clamp(-91.0, -45.0) as i8,
            airtime_load: rng.uniform_range(0.01, 0.08),
        });
    }
    aps
}

fn main() {
    let mut rng = DetRng::new(2013);
    let anonymizer = Anonymizer::new(1, []);
    let _ = &anonymizer;

    println!("Neighborhood density sweep: two weeks of 10-minute scans per row\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>16}",
        "APs (2.4)", "seen (2.4)", "seen (5)", "airtime left", "per-station Mbps"
    );
    for &n24 in &[0usize, 2, 5, 10, 20, 40, 65] {
        let n5 = (n24 / 8).max(if n24 > 0 { 1 } else { 0 });
        let hood = neighborhood(n24, n5, &mut rng);
        let mut radio24 = Radio::new(Band::Ghz24);
        let mut radio5 = Radio::new(Band::Ghz5);
        let mut seen24 = std::collections::HashSet::new();
        let mut seen5 = std::collections::HashSet::new();
        // Two weeks of scans at the firmware's 10-minute cadence.
        for _ in 0..(14 * 24 * 6) {
            for entry in radio24.scan(&hood, &mut rng).visible {
                seen24.insert(entry.bssid);
            }
            for entry in radio5.scan(&hood, &mut rng).visible {
                seen5.insert(entry.bssid);
            }
        }
        let share = radio24.airtime_share(&hood);
        let throughput = radio24.per_station_throughput_bps(&hood, 2) as f64 / 1e6;
        println!(
            "{n24:>10} {:>12} {:>12} {:>13.0}% {:>15.1}",
            seen24.len(),
            seen5.len(),
            share * 100.0,
            throughput
        );
    }

    println!("\nReading the table:");
    println!("- 'seen' counts unique BSSIDs accumulated over all scans: weak APs are");
    println!("  detected intermittently, so two weeks of scanning approaches the true");
    println!("  co-channel population — Fig 11's median of ~20 in developed countries");
    println!("  corresponds to the dense rows, and its ~2 in developing to the sparse.");
    println!("- 5 GHz stays nearly empty at every density (Fig 9/10: the 2.4 GHz band");
    println!("  is where the contention is).");
    println!("- airtime left is what the home's own BSS can use once co-channel");
    println!("  neighbors take their share; per-station throughput falls with it.");
}
