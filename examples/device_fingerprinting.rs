//! §7 future-work extension: device fingerprinting from traffic patterns.
//!
//! The paper observes (Fig 20) that device *types* send very different
//! distributions of traffic to domains, and suggests using that for
//! fingerprinting. Two experiments, both on the `analysis::fingerprint`
//! nearest-centroid classifier:
//!
//! 1. **Vendor-level** — labels come from the OUI the firmware reports in
//!    clear. Weak on purpose: a vendor like Apple spans phones, laptops,
//!    tablets, and set-top boxes, so its traffic centroid is mush.
//! 2. **Type-level** — labels come from a survey, exactly as the paper
//!    obtained ground truth for Fig 20 ("we surveyed users from six homes
//!    and asked them to manually identify the devices"). We emulate the
//!    survey by matching each anonymized device back to the home's device
//!    inventory through its OUI when the match is unambiguous.
//!
//! ```sh
//! cargo run --release --example device_fingerprinting
//! ```

use analysis::fingerprint::{evaluate, evaluate_labeled, features, Features};
use analysis::usage::fig20;
use bismark::study::{run_study, StudyConfig};
use household::DeviceType;
use std::collections::HashMap;

fn main() {
    println!("Running a 20-day study for fingerprinting data...");
    let output = run_study(&StudyConfig::quick(77, 20));
    let windows = output.windows.report_windows();
    let devices = fig20(&output.datasets, windows.traffic, 200 * 1024);
    println!("{} devices with enough traffic to fingerprint.\n", devices.len());

    // Experiment 1: vendor labels straight from the OUI.
    match evaluate(&devices, 4) {
        Some(eval) => println!(
            "Vendor-level accuracy: {:.0}% over {} devices (chance {:.0}%) — vendors are \
             heterogeneous, so this is expected to be weak",
            eval.accuracy * 100.0,
            eval.tested,
            eval.baseline * 100.0
        ),
        None => println!("Vendor-level: not enough diversity."),
    }

    // Experiment 2: survey-style type labels. For each anonymized device we
    // look at its home's inventory; when exactly one owned device carries
    // the same OUI, the "survey" tells us its type.
    let mut labeled: Vec<(DeviceType, Features)> = Vec::new();
    let mut ambiguous = 0usize;
    for observed in &devices {
        let home = &output.homes[observed.router.0 as usize];
        let candidates: Vec<&household::Device> =
            home.devices.iter().filter(|d| d.mac.oui() == observed.device.oui).collect();
        match candidates.as_slice() {
            [only] => labeled.push((only.kind, features(observed))),
            _ => ambiguous += 1,
        }
    }
    println!(
        "\nSurvey matching: {} devices labeled by type, {} ambiguous (shared OUI within home).",
        labeled.len(),
        ambiguous
    );
    match evaluate_labeled(&labeled, 4) {
        Some(eval) => {
            println!(
                "Type-level accuracy: {:.0}% over {} devices (chance {:.0}%)",
                eval.accuracy * 100.0,
                eval.tested,
                eval.baseline * 100.0
            );
            let mut per_type: HashMap<DeviceType, usize> = HashMap::new();
            for (kind, _) in &labeled {
                *per_type.entry(*kind).or_default() += 1;
            }
            let mut rows: Vec<(DeviceType, usize)> = per_type.into_iter().collect();
            rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
            println!("Labeled population:");
            for (kind, n) in rows {
                println!("  {kind:?}: {n}");
            }
            println!("Top confusions:");
            for ((truth, predicted), n) in eval.confusion.iter().take(6) {
                println!("  {truth:?} -> {predicted:?} x{n}");
            }
        }
        None => println!("Type-level: not enough diversity."),
    }
}
