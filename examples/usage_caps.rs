//! The usage-cap manager the BISmark firmware shipped (the paper's
//! reference [24], "Communicating with caps"): per-device quota tracking
//! on top of the Traffic data, with the threshold alerts the router's web
//! UI showed to users on capped plans.
//!
//! ```sh
//! cargo run --release --example usage_caps
//! ```

use analysis::caps::{account, Plan};
use bismark::study::{run_study, StudyConfig};

fn main() {
    println!("Running a 20-day study...");
    let output = run_study(&StudyConfig::quick(123, 20));
    let windows = output.windows.report_windows();

    // A 10 GB/month plan, prorated to the capture window.
    let plan = Plan::monthly(10 * 1_000_000_000, windows.traffic);
    println!(
        "Plan: 10 GB/month, prorated to {:.1} GB over the {:.1}-day window.\n",
        plan.cap_bytes as f64 / 1e9,
        windows.traffic.duration().as_days_f64()
    );

    let usage = account(&output.datasets, windows.traffic, &plan);
    for home in usage.iter().take(3) {
        println!(
            "{}: {:.2} GB used ({:.0}% of cap)",
            home.router,
            home.total_bytes as f64 / 1e9,
            home.cap_fraction(&plan) * 100.0
        );
        for (device, bytes) in home.per_device.iter().take(4) {
            println!(
                "    {device}  {:.2} GB ({:.0}% of home usage)",
                *bytes as f64 / 1e9,
                100.0 * *bytes as f64 / home.total_bytes as f64
            );
        }
        if home.alerts.is_empty() {
            println!("    no alerts fired");
        }
        for alert in &home.alerts {
            println!(
                "    alert: crossed {:.0}% of cap at {}",
                alert.threshold * 100.0,
                alert.at
            );
        }
        println!();
    }
    let exhausted = usage.iter().filter(|h| h.exhausted(&plan)).count();
    println!(
        "{} of {} Traffic homes would have exhausted a 10 GB/month plan.",
        exhausted,
        usage.len()
    );
}
