//! Quickstart: run a scaled-down BISmark study (the full 126-home
//! deployment over a two-week virtual span) and print the paper's
//! highlight numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bismark::study::{run_study, StudyConfig};

fn main() {
    // Seed 2013 — everything (homes, behavior, measurements) derives from it.
    let config = StudyConfig::quick(2013, 14);
    println!("Simulating 126 homes in 19 countries over 14 virtual days...");
    let output = run_study(&config);
    println!(
        "Collected {} records from {} routers.\n",
        output.datasets.record_count(),
        output.datasets.heartbeats.len()
    );

    let report = output.report();

    // §4 Availability.
    println!("== Availability ==");
    println!(
        "Median downtimes/day: developed {:.3}, developing {:.3}",
        report.fig3.developed.median(),
        report.fig3.developing.median()
    );
    if !report.fig4.developing.is_empty() {
        println!(
            "Median downtime duration: developed {:.0} min, developing {:.0} min",
            report.fig4.developed.median() / 60.0,
            report.fig4.developing.median() / 60.0
        );
    }

    // §5 Infrastructure.
    println!("\n== Infrastructure ==");
    println!("Median devices per home: {:.0}", report.fig7.median());
    println!(
        "Unique devices per band (median): 2.4 GHz {:.0}, 5 GHz {:.0}",
        report.fig10.ghz24.median(),
        report.fig10.ghz5.median()
    );
    println!(
        "Visible APs (median): developed {:.0}, developing {:.0}",
        report.fig11.developed.median(),
        report.fig11.developing.median()
    );

    // §6 Usage.
    println!("\n== Usage ==");
    println!(
        "Dominant device carries {:.0}% of home traffic on average",
        report.fig17.mean_top_share * 100.0
    );
    println!(
        "Top domain: {:.0}% of bytes, {:.0}% of connections",
        report.fig19.volume_share_by_rank.first().unwrap_or(&0.0) * 100.0,
        report.fig19.connections_of_volume_rank.first().unwrap_or(&0.0) * 100.0
    );
    println!(
        "{} home(s) oversaturate their uplink (bufferbloat)",
        report.table6.oversaturating_homes
    );
}
