//! The full reproduction: the complete 126-home deployment over a
//! configurable virtual span (default 60 days; pass `--full` for the
//! paper's entire October–April window), rendering every figure and table.
//!
//! ```sh
//! cargo run --release --example global_study            # 60 virtual days
//! cargo run --release --example global_study -- --full  # 197 virtual days
//! cargo run --release --example global_study -- --days 30
//! ```

use bismark::study::{run_study, StudyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = if args.iter().any(|a| a == "--full") {
        StudyConfig::full(2013)
    } else if let Some(pos) = args.iter().position(|a| a == "--days") {
        let days: u64 = args
            .get(pos + 1)
            .and_then(|d| d.parse().ok())
            .expect("--days requires a number");
        StudyConfig::quick(2013, days)
    } else {
        StudyConfig::quick(2013, 60)
    };

    let span_days = config.windows.span.duration().as_days_f64();
    eprintln!("Running the deployment over {span_days:.0} virtual days on {} threads...", config.threads);
    // simlint: allow(wall-clock) — example prints wall-clock runtime for the reader; the study itself runs on SimTime
    let started = std::time::Instant::now();
    let output = run_study(&config);
    eprintln!(
        "Simulation finished in {:.1}s wall clock; {} records collected.",
        started.elapsed().as_secs_f64(),
        output.datasets.record_count()
    );

    let report = output.report();
    println!("{}", report.render(&output.datasets));
}
