//! End-to-end pipeline tests: single homes driven through the full stack
//! (behavior → gateway firmware → wire → collector → analysis), checking
//! that each measurement path produces coherent data.

use bismark::homesim::{HomeSim, SimParams};
use bismark::study::StudyWindows;
use collector::windows::Window;
use collector::{Collector, Datasets, RouterMeta};
use firmware::records::RouterId;
use household::availability::PowerMode;
use household::domains::DomainUniverse;
use household::{Country, HomeConfig, HomeId};
use simnet::rng::DetRng;
use simnet::time::{SimDuration, SimTime};

fn run_one(mut mutate: impl FnMut(&mut HomeConfig), days: u64, seed: u64) -> (Datasets, Window) {
    let span = Window {
        start: SimTime::EPOCH,
        end: SimTime::EPOCH + SimDuration::from_days(days),
    };
    let windows = StudyWindows::scaled(span);
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let root = DetRng::new(seed);
    let mut cfg = HomeConfig::sample(HomeId(0), Country::UnitedStates, &root.derive("home"));
    mutate(&mut cfg);
    let collector = Collector::new();
    collector.register(RouterMeta {
        router: RouterId(0),
        country: cfg.country,
        traffic_consent: cfg.traffic_consent,
    });
    HomeSim::new(SimParams {
        cfg: &cfg,
        universe: &universe,
        zone: &zone,
        windows: &windows,
        seed,
        reliable_upload: false,
        faults: None,
        cgn: None,
    })
        .run(&collector);
    (collector.snapshot(), span)
}

#[test]
fn heartbeats_arrive_once_a_minute_while_up() {
    let (data, span) = run_one(
        |cfg| {
            cfg.availability.power = PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 };
            cfg.availability.outage_rate_per_day = 0.0;
            cfg.traffic_consent = false;
        },
        10,
        1,
    );
    let log = &data.heartbeats[&RouterId(0)];
    let expected = span.duration().as_mins();
    let received = log.total_heartbeats();
    // Allow for WAN loss (~0.2%) and boot jitter.
    assert!(
        received as f64 > 0.98 * expected as f64 && received <= expected,
        "{received} heartbeats vs {expected} minutes"
    );
    assert!(log.coverage(span.start, span.end) > 0.999);
}

#[test]
fn outages_produce_matching_heartbeat_gaps() {
    let (data, span) = run_one(
        |cfg| {
            cfg.availability.power = PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 };
            cfg.availability.outage_rate_per_day = 1.0;
            cfg.availability.outage_median_mins = 45.0;
            cfg.availability.outage_sigma = 0.5;
            cfg.traffic_consent = false;
        },
        15,
        2,
    );
    let log = &data.heartbeats[&RouterId(0)];
    let gaps = log.downtimes(span.start, span.end, SimDuration::from_mins(10));
    // ~15 outages expected; jitter allows a broad band, but they must exist
    // and have plausible lengths.
    assert!((4..=40).contains(&gaps.len()), "{} gaps", gaps.len());
    for (s, e) in &gaps {
        let dur = e.since(*s);
        assert!(dur >= SimDuration::from_mins(10));
        assert!(dur < SimDuration::from_days(3));
    }
}

#[test]
fn appliance_home_reports_low_coverage_and_short_uptimes() {
    let (data, span) = run_one(
        |cfg| {
            cfg.availability.power = PowerMode::Appliance {
                weekday_on_hour: 18.0,
                weekday_hours: 3.0,
                weekend_on_hour: 12.0,
                weekend_hours: 6.0,
                skip_day_prob: 0.1,
            };
            cfg.availability.outage_rate_per_day = 0.0;
            cfg.traffic_consent = false;
        },
        20,
        3,
    );
    let log = &data.heartbeats[&RouterId(0)];
    let coverage = log.coverage(span.start, span.end);
    assert!(coverage < 0.4, "appliance coverage {coverage}");
    // Uptime reports (12-hourly) can only catch the router on; when they
    // do, the reported uptime must be shorter than a day's window.
    for report in &data.uptime {
        assert!(report.uptime < SimDuration::from_hours(24), "uptime {}", report.uptime);
    }
}

#[test]
fn capacity_estimates_match_link_and_detect_shaping() {
    let (data, _) = run_one(
        |cfg| {
            cfg.availability.power = PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 };
            cfg.availability.outage_rate_per_day = 0.0;
            cfg.down_link = simnet::link::LinkConfig::shaped(
                20_000_000,
                40_000_000,
                192 * 1024,
                SimDuration::from_millis(10),
                256 * 1024,
            );
            cfg.up_link = simnet::link::LinkConfig::simple(
                2_000_000,
                SimDuration::from_millis(10),
                256 * 1024,
            );
            cfg.traffic_consent = false;
        },
        20,
        4,
    );
    assert!(!data.capacity.is_empty());
    for rec in &data.capacity {
        let down_err = (rec.down_bps as f64 - 20e6).abs() / 20e6;
        let up_err = (rec.up_bps as f64 - 2e6).abs() / 2e6;
        assert!(down_err < 0.1, "down estimate {}", rec.down_bps);
        assert!(up_err < 0.1, "up estimate {}", rec.up_bps);
        assert!(rec.shaping_detected, "burst shaping must be detected");
    }
}

#[test]
fn traffic_pipeline_attributes_flows_to_devices_and_domains() {
    let (data, _) = run_one(|cfg| cfg.traffic_consent = true, 20, 5);
    assert!(!data.flows.is_empty(), "flows recorded");
    assert!(!data.dns.is_empty(), "dns samples recorded");
    // Every flow is attributed to a device whose OUI is a known vendor.
    let mut clear_domains = 0;
    for flow in &data.flows {
        assert!(flow.total_bytes() > 0);
        assert!(
            household::VendorClass::from_oui(flow.device.oui).is_some(),
            "unknown OUI {:06x}",
            flow.device.oui
        );
        if flow.domain.is_clear() {
            clear_domains += 1;
        }
    }
    assert!(clear_domains > 0, "whitelisted domains appear in clear");
    assert!(
        clear_domains < data.flows.len(),
        "non-whitelisted domains must be obfuscated sometimes"
    );
    // Packet statistics exist and are internally consistent.
    for stats in &data.packet_stats {
        assert!(stats.peak_down_1s <= stats.bytes_down.max(stats.peak_down_1s));
        assert!(stats.bytes_down + stats.bytes_up > 0);
    }
}

#[test]
fn non_consenting_home_never_uploads_traffic_records() {
    let (data, _) = run_one(|cfg| cfg.traffic_consent = false, 12, 6);
    assert!(data.flows.is_empty());
    assert!(data.dns.is_empty());
    assert!(data.packet_stats.is_empty());
    assert!(data.macs.is_empty());
    // The consent-free data sets still flow.
    assert!(!data.devices.is_empty());
    assert!(!data.wifi.is_empty());
    assert!(!data.capacity.is_empty());
}

#[test]
fn wifi_scans_respect_throttle_and_see_neighbors() {
    let (data, _) = run_one(
        |cfg| {
            cfg.traffic_consent = false;
            cfg.availability.power = PowerMode::AlwaysOn { reboot_rate_per_month: 0.0, extended_off_rate_per_month: 0.0 };
            cfg.availability.outage_rate_per_day = 0.0;
        },
        20,
        7,
    );
    let scans_24: Vec<_> = data
        .wifi
        .iter()
        .filter(|s| s.band == simnet::wifi::Band::Ghz24)
        .collect();
    assert!(!scans_24.is_empty());
    // With clients typically associated, the throttle caps scan frequency:
    // the number of scans must be well below one per 10-minute slot.
    let window_slots = data
        .wifi
        .iter()
        .map(|s| s.at)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(window_slots > 10);
    // Any sighted APs have sane fields.
    for scan in &data.wifi {
        for ap in &scan.aps {
            assert!((-92..=-30).contains(&ap.signal_dbm));
        }
    }
}

#[test]
fn public_release_excludes_traffic() {
    let (data, _) = run_one(|cfg| cfg.traffic_consent = true, 12, 8);
    assert!(!data.flows.is_empty(), "precondition: traffic exists");
    let json = collector::export::to_json(&data).expect("export serializes");
    assert!(!json.contains("remote_ip_hash"));
    assert!(!json.contains("suffix_hash"));
    assert!(json.contains("heartbeats"));
}

// ---- CLI deployment scaling (--homes) ---------------------------------

const BIN: &str = env!("CARGO_BIN_EXE_bismark-study");

fn run_cli(args: &[&str]) -> std::process::Output {
    std::process::Command::new(BIN).args(args).output().expect("spawn bismark-study")
}

/// Strict-parser contract from the observability PR, extended to the
/// scaling axis: every bad `--homes` spelling exits 2 and names the flag.
#[test]
fn cli_rejects_bad_homes_values_by_name_with_exit_2() {
    for args in [
        &["run", "--homes", "0"][..],
        &["run", "--homes", "many"][..],
        &["run", "--homes"][..],
        &["run", "--homes", "500", "--full"][..],
        &["run", "--full", "--homes", "500"][..],
    ] {
        let out = run_cli(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--homes"), "stderr must name the flag for {args:?}: {stderr}");
    }
    // The --full conflict names both sides.
    let out = run_cli(&["run", "--homes", "500", "--full"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--full"), "conflict error must also name --full: {stderr}");
}

/// Strict-parser contract for the spill axis: `--spill-dir` without
/// `--spill-budget` is a configuration that silently never spills, so it
/// exits 2 and the error names both flags.
#[test]
fn cli_rejects_spill_dir_without_budget_by_name_with_exit_2() {
    for args in [
        &["run", "--spill-dir", "/tmp/spill"][..],
        &["run", "--homes", "50", "--spill-dir", "/tmp/spill"][..],
    ] {
        let out = run_cli(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--spill-dir"), "stderr must name --spill-dir for {args:?}: {stderr}");
        assert!(stderr.contains("--spill-budget"), "stderr must name --spill-budget for {args:?}: {stderr}");
    }
}

/// A generatively scaled study runs end to end: 1000 synthetic homes,
/// every one of them reporting through the full pipeline.
#[test]
fn cli_scales_the_deployment_to_1000_homes() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("scaling");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let report = dir.join("homes1000.report");
    let metrics = dir.join("homes1000.metrics");
    let out = run_cli(&[
        "run", "--seed", "7", "--days", "2", "--homes", "1000",
        "--report", report.to_str().unwrap(), "--metrics", metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "scaled run failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("across 1000 homes"), "progress line: {stderr}");
    // The manifest pins the deployment size; the reporter count in the
    // progress line can be a handful lower (appliance-mode homes that
    // never power on inside a 2-day window).
    let manifest = std::fs::read_to_string(&metrics).expect("read metrics");
    assert!(manifest.contains("\"homes\":\"1000\""), "meta homes: {manifest}");
    assert!(manifest.contains("\"study_homes\":1000"), "study_homes gauge");
    let rendered = std::fs::read_to_string(&report).expect("read report");
    assert!(!rendered.is_empty(), "scaled report renders");
}

/// Strict-parser contract for the CGN axis: every bad `--cgn` spelling —
/// unknown scenario, missing value, combination with `--faults` — exits 2
/// and names the flag.
#[test]
fn cli_rejects_bad_cgn_values_by_name_with_exit_2() {
    for args in [
        &["run", "--cgn", "bogus"][..],
        &["run", "--cgn"][..],
        &["run", "--cgn", "isp-mix", "--faults", "lossy-wan"][..],
        &["run", "--faults", "lossy-wan", "--cgn", "isp-mix"][..],
    ] {
        let out = run_cli(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--cgn"), "stderr must name the flag for {args:?}: {stderr}");
    }
    // The unknown-scenario error teaches the valid spellings.
    let out = run_cli(&["run", "--cgn", "bogus"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("isp-mix"), "error must list valid scenarios: {stderr}");
    // The --faults conflict names both sides.
    let out = run_cli(&["run", "--cgn", "isp-mix", "--faults", "lossy-wan"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--faults"), "conflict error must also name --faults: {stderr}");
}
