//! End-to-end tests for the carrier-grade NAT tier and the STUN-style
//! NAT-type characterization experiment.
//!
//! The contract under test:
//!
//! * no `--cgn` scenario → the subsystem is fully disengaged: no probe
//!   tables, no report section, and datasets identical to a run where the
//!   crate might as well not exist;
//! * armed scenario → every home probes, the report gains the NAT
//!   characterization section, and — scored against the simulator's own
//!   CGN plan — both CGN detection and NAT-type classification clear 0.9
//!   precision/recall (the experiment is an instrument, not a heuristic);
//! * punch trials match the RFC 3489 feasibility rule for the probed
//!   type pair;
//! * armed runs are deterministic, bit for bit.

use analysis::natchar;
use bismark::study::{run_study, StudyConfig, StudyOutput};
use cgn::{expected_success, CgnScenario};
use firmware::records::RouterId;
use std::collections::BTreeSet;

fn quick(seed: u64, days: u64, cgn: Option<CgnScenario>) -> StudyConfig {
    let mut config = StudyConfig::quick(seed, days);
    config.cgn = cgn;
    config
}

fn fronted(output: &StudyOutput) -> BTreeSet<RouterId> {
    output
        .cgn_plan
        .homes
        .iter()
        .filter(|h| h.is_fronted())
        .map(|h| h.router)
        .collect()
}

/// Without a scenario the subsystem is invisible: empty plan, empty probe
/// tables, no report section.
#[test]
fn unarmed_study_has_no_cgn_trace() {
    let output = run_study(&quick(7, 6, None));
    assert!(output.cgn_plan.is_empty());
    assert!(output.datasets.nat_probes.is_empty());
    assert!(output.datasets.punch_trials.is_empty());
    let report = output.report();
    assert!(report.natchar.is_none());
    let rendered = report.render(&output.datasets);
    assert!(!rendered.contains("NAT characterization"), "unarmed report grew a NAT section");
}

/// An armed scenario populates both probe tables and the report's NAT
/// section, and the probes see through to the CGN: detection and type
/// classification both clear 0.9 precision/recall against the plan.
#[test]
fn armed_study_characterizes_nats_above_point_nine() {
    let output = run_study(&quick(7, 10, Some(CgnScenario::IspMix)));
    assert!(!output.cgn_plan.is_empty());
    assert!(output.cgn_plan.stats.fronted_homes > 0);
    assert!(!output.datasets.nat_probes.is_empty(), "armed homes must probe");
    assert!(!output.datasets.punch_trials.is_empty(), "armed homes must punch");

    let report = output.report();
    let nc = report.natchar.as_ref().expect("armed report has a NAT section");
    // Fronted or not, nearly every home probes; the stragglers are
    // appliance-mode homes powered off at every 12-hour probe instant.
    assert!(
        nc.homes.len() as f64 >= 0.9 * output.homes.len() as f64,
        "only {} of {} homes produced probe verdicts",
        nc.homes.len(),
        output.homes.len()
    );

    let score = natchar::score_detection(&nc.homes, &fronted(&output));
    assert!(
        score.precision >= 0.9,
        "CGN detection precision {:.2} ({} false positives)",
        score.precision,
        score.false_positives
    );
    assert!(
        score.recall >= 0.9,
        "CGN detection recall {:.2} ({} of {} missed)",
        score.recall,
        score.missed,
        score.detected + score.missed
    );

    // Modal NAT type vs. the plan's ground truth, same bar.
    let correct = nc
        .homes
        .iter()
        .filter(|h| {
            output
                .cgn_plan
                .for_router(h.router)
                .is_some_and(|truth| truth.truth_nat_type() == h.modal_type)
        })
        .count();
    assert!(
        correct as f64 >= 0.9 * nc.homes.len() as f64,
        "only {correct} of {} homes classified to the planned type",
        nc.homes.len()
    );

    let rendered = report.render(&output.datasets);
    for section in [
        "NAT characterization: modal NAT type per home",
        "CGN detection by country",
        "Hole-punch success by NAT-type pair",
    ] {
        assert!(rendered.contains(section), "report missing {section:?}");
    }
}

/// Every recorded punch outcome obeys the RFC 3489 feasibility rule for
/// the *probed* type pair: hole punching fails exactly when a symmetric
/// NAT faces a symmetric or port-restricted peer.
#[test]
fn punch_outcomes_match_the_type_pair_rule() {
    let output = run_study(&quick(11, 10, Some(CgnScenario::AllCgn)));
    let mut total = 0usize;
    let mut agree = 0usize;
    for trial in output.datasets.punch_trials.iter() {
        total += 1;
        agree += usize::from(trial.success == expected_success(trial.local_type, trial.peer_type));
    }
    assert!(total > 0);
    assert!(
        agree as f64 >= 0.9 * total as f64,
        "only {agree} of {total} punch outcomes match the feasibility rule"
    );
}

/// The port-starved scenario actually exercises exhaustion: the plan
/// records evictions, and the session path sees blocked flows.
#[test]
fn port_starved_scenario_exhausts_blocks() {
    let output = run_study(&quick(3, 8, Some(CgnScenario::PortStarved)));
    assert!(output.cgn_plan.stats.exhaustion_events > 0, "no exhaustion under port-starved");
    assert!(output.cgn_plan.stats.evictions > 0, "no evictions under port-starved");
}

/// Same seed, same scenario → bit-identical datasets and plan.
#[test]
fn armed_runs_are_deterministic() {
    let a = run_study(&quick(5, 6, Some(CgnScenario::IspMix)));
    let b = run_study(&quick(5, 6, Some(CgnScenario::IspMix)));
    assert!(a.datasets == b.datasets, "armed datasets differ across identical runs");
    assert_eq!(a.cgn_plan, b.cgn_plan);
}
