//! Continuous-operation mode, end to end: the differential harness that
//! proves streaming ingestion plus incremental reporting is *batch-exact*.
//!
//! The contract, clause by clause:
//!
//! * after the final window a streamed study's accumulated datasets, its
//!   rolling report, and every public export are byte-identical to a batch
//!   run of the same config — the headline guarantee;
//! * the guarantee holds at any thread count, with the spill budget armed
//!   or not, and with the CGN tier injecting NAT probe tables;
//! * mid-stream, every window callback sees a consistent prefix: indices
//!   are sequential, window ends advance by the cadence, and the rolling
//!   artifacts only ever grow;
//! * faultlab scenarios double as live chaos drills: a flapping collector
//!   or churning routers mid-stream must converge to the batch-faulted
//!   run once the store-and-forward queue drains, and router churn's
//!   losses must surface as explicit gap declarations in the windowed
//!   datasets — not silently missing rows.

use bismark::study::{run_study, run_study_stream, StudyConfig};
use collector::SpillConfig;
use faultlab::FaultScenario;
use simnet::time::SimDuration;

/// The headline differential: quick(7, 20) streamed at a 3-day cadence is
/// byte-identical to the batch run — datasets, rendered report, JSON and
/// CSV exports — while the per-window callbacks observe a monotonically
/// growing prefix.
#[test]
fn streamed_quick_study_is_byte_identical_to_batch() {
    let config = StudyConfig::quick(7, 20);
    let batch = run_study(&config);

    let mut seen = Vec::new();
    let streamed = run_study_stream(&config, SimDuration::from_days(3), |w| {
        seen.push((w.index, w.window.end, w.datasets.record_count(), w.report.routers.len()));
    });

    // 20 days at a 3-day cadence: six full windows plus a 2-day remainder.
    assert_eq!(streamed.windows_run, 7);
    assert_eq!(seen.len(), 7);
    for (i, (index, end, records, routers)) in seen.iter().enumerate() {
        assert_eq!(*index as usize, i, "window indices must be sequential");
        assert!(*routers > 0, "every window must already see registered routers");
        if i > 0 {
            assert!(*end > seen[i - 1].1, "window ends must advance");
            assert!(
                *records >= seen[i - 1].2,
                "the accumulated record count may never shrink"
            );
        }
    }
    let last = seen.last().expect("at least one window");
    assert_eq!(last.1, config.windows.span.end, "final window ends at span end");
    assert_eq!(last.2, streamed.study.datasets.record_count());

    // The headline guarantee, strongest form first: raw datasets...
    assert!(
        batch.datasets == streamed.study.datasets,
        "streamed datasets diverged from batch"
    );
    // ...the rolling report against the batch recompute...
    let report_batch = batch.report().render(&batch.datasets);
    let report_streamed = streamed.report.render(&streamed.study.datasets);
    assert_eq!(report_batch, report_streamed, "reports must match byte for byte");
    // ...and both public exports.
    let json_batch = collector::export::to_json(&batch.datasets).expect("export");
    let json_streamed = collector::export::to_json(&streamed.study.datasets).expect("export");
    assert_eq!(json_batch, json_streamed, "JSON exports must match byte for byte");
    let csv_batch = collector::export::to_csv(&batch.datasets);
    let csv_streamed = collector::export::to_csv(&streamed.study.datasets);
    assert_eq!(csv_batch, csv_streamed, "CSV exports must match byte for byte");
}

/// Thread-count invariance: the stream loop partitions homes across worker
/// threads per window, so the sealed deltas arrive in a thread-dependent
/// interleaving — and the incremental state must not care.
#[test]
fn streamed_studies_are_deterministic_across_thread_counts() {
    let mut one = StudyConfig::quick(3, 5);
    one.threads = 1;
    let mut eight = StudyConfig::quick(3, 5);
    eight.threads = 8;
    let cadence = SimDuration::from_hours(30);
    let a = run_study_stream(&one, cadence, |_| {});
    let b = run_study_stream(&eight, cadence, |_| {});
    assert_eq!(a.windows_run, b.windows_run);
    assert!(a.study.datasets == b.study.datasets);
    assert_eq!(
        a.report.render(&a.study.datasets),
        b.report.render(&b.study.datasets),
        "rolling reports must not depend on the thread count"
    );
}

/// Streaming composes with the out-of-core spill: window deltas may be
/// disk-backed when they cross the watermark, and the final output must
/// still be byte-identical to the *unwindowed* spilled run.
#[test]
fn streamed_spilled_study_matches_unwindowed_spilled_run() {
    let days = 10;
    let mut spilled_cfg = StudyConfig::quick(7, days);
    // Windowed draining keeps the collector's resident footprint small, so
    // the budget must be tight enough (16 KiB) that traffic tables seal
    // segments *inside* individual stream windows, before each drain.
    spilled_cfg.spill = Some(SpillConfig { budget_bytes: 1 << 14, dir: None });
    let batch = run_study(&spilled_cfg);
    let streamed = run_study_stream(&spilled_cfg, SimDuration::from_days(2), |_| {});

    let stats = streamed.study.spill.as_ref().expect("spill stats present when armed");
    assert!(stats.segments > 0, "the budget must force segment seals mid-stream");
    assert_eq!(stats.error, None, "segment I/O must not fail");

    assert!(batch.datasets == streamed.study.datasets);
    let report_batch = batch.report().render(&batch.datasets);
    let report_streamed = streamed.report.render(&streamed.study.datasets);
    assert_eq!(report_batch, report_streamed, "spilled stream must match spilled batch");
    let json_batch = collector::export::to_json(&batch.datasets).expect("export");
    let json_streamed = collector::export::to_json(&streamed.study.datasets).expect("export");
    assert_eq!(json_batch, json_streamed);
}

/// Streaming composes with the CGN tier: NAT probes and punch trials ride
/// the window deltas, and the rolling report's NAT characterization —
/// including the port-allocation table — finalizes to the batch section.
#[test]
fn streamed_cgn_study_matches_batch_nat_characterization() {
    let mut config = StudyConfig::quick(7, 10);
    config.cgn = Some(cgn::CgnScenario::IspMix);
    let batch = run_study(&config);
    let streamed = run_study_stream(&config, SimDuration::from_days(2), |_| {});

    assert!(!streamed.study.datasets.nat_probes.is_empty(), "armed run collects probes");
    assert!(batch.datasets == streamed.study.datasets);

    let report_batch = batch.report().render(&batch.datasets);
    let report_streamed = streamed.report.render(&streamed.study.datasets);
    assert!(
        report_streamed.contains("NAT characterization"),
        "streamed CGN report must include the NAT section"
    );
    assert_eq!(report_batch, report_streamed, "CGN reports must match byte for byte");
}

/// Chaos drill #1 — flapping collector. Uploads are nacked during the
/// announced downtime and retried across window boundaries; once the
/// queue drains the streamed study must converge to the batch-faulted
/// run exactly, delivery accounting included.
#[test]
fn collector_flap_drill_converges_to_batch_exact() {
    let mut config = StudyConfig::quick(7, 6);
    config.faults = Some(FaultScenario::CollectorFlap);
    let batch = run_study(&config);
    let streamed = run_study_stream(&config, SimDuration::from_hours(36), |_| {});

    // The drill was real: downtime was injected and uploads bounced.
    assert!(!streamed.study.fault_plan.is_empty());
    assert!(streamed.study.upload_counters.rejected > 0);
    assert!(streamed.study.upload_counters.retried_accepted > 0);
    assert!(streamed.study.dropped_in_downtime > 0);

    // Convergence: datasets, delivery accounting, and the report all match
    // the batch-faulted run byte for byte.
    assert!(batch.datasets == streamed.study.datasets);
    assert_eq!(batch.upload_counters, streamed.study.upload_counters);
    assert_eq!(batch.dropped_in_downtime, streamed.study.dropped_in_downtime);
    assert_eq!(
        batch.report().render(&batch.datasets),
        streamed.report.render(&streamed.study.datasets)
    );
}

/// Chaos drill #2 — router churn. Flash wipes destroy spooled data, and
/// the stream must account every loss as an explicit gap declaration in
/// the windowed datasets (visible live, not only at study end) while the
/// final state still matches the batch-churned run.
#[test]
fn router_churn_drill_ledgers_gaps_in_windowed_datasets() {
    let mut config = StudyConfig::quick(7, 6);
    config.faults = Some(FaultScenario::RouterChurn);
    let batch = run_study(&config);

    let mut gap_windows = Vec::new();
    let streamed = run_study_stream(&config, SimDuration::from_hours(36), |w| {
        if !w.datasets.upload_gaps.is_empty() {
            gap_windows.push((w.index, w.datasets.upload_gaps.len()));
        }
    });

    assert!(streamed.study.fault_plan.flash_wipe_count() > 0);
    assert!(
        !streamed.study.datasets.upload_gaps.is_empty(),
        "wipes must appear on the gap ledger"
    );
    // The ledger surfaces live: some window *before the last* already
    // carries gap declarations, and the per-window counts only grow.
    assert!(
        gap_windows.iter().any(|(index, _)| *index + 1 < streamed.windows_run),
        "gap declarations must be visible mid-stream, not only at study end: {gap_windows:?}"
    );
    for pair in gap_windows.windows(2) {
        assert!(pair[1].1 >= pair[0].1, "the gap ledger may never shrink");
    }

    // Convergence with the batch-churned run: identical ledger, datasets,
    // and report.
    assert_eq!(batch.datasets.upload_gaps, streamed.study.datasets.upload_gaps);
    assert!(batch.datasets == streamed.study.datasets);
    assert_eq!(
        batch.report().render(&batch.datasets),
        streamed.report.render(&streamed.study.datasets)
    );
}
