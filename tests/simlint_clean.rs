//! Workspace gate: `cargo test` fails on any new unsuppressed simlint
//! finding, so the invariants hold on every build — not only when
//! someone remembers to run the binary.
//!
//! Registered as a test target of the `simlint` crate itself (see
//! `crates/simlint/Cargo.toml`), so it needs nothing but the linter.

use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {}", root.display());

    let report = simlint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files > 100, "scan must cover the whole workspace, saw {}", report.files);
    assert!(
        report.is_clean(),
        "simlint found {} unsuppressed finding(s):\n{}",
        report.findings.len(),
        report.render_human(),
    );
}

#[test]
fn suppressions_all_carry_justifications() {
    // `scan_workspace` already turns unjustified suppressions into
    // findings; this test documents the policy separately so a failure
    // names it directly. Every allow-comment must end in a justification.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf();
    let report = simlint::scan_workspace(&root).expect("workspace scan succeeds");
    let bad: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "unjustified-suppression" || f.rule == "unused-suppression")
        .collect();
    assert!(bad.is_empty(), "suppression hygiene violations: {bad:#?}");
}
