//! End-to-end tests for the beyond-the-paper extensions: latency probing,
//! the uCap manager, device fingerprinting, and instrument validation, all
//! over one shared reduced study.

use analysis::caps::{account, Plan};
use analysis::fingerprint::{evaluate_labeled, features, Features};
use bismark::study::{run_study, StudyConfig, StudyOutput};
use bismark::validation;
use household::DeviceType;
use std::sync::OnceLock;

const SEED: u64 = 90210;

fn study() -> &'static StudyOutput {
    static STUDY: OnceLock<StudyOutput> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::quick(SEED, 16)))
}

#[test]
fn latency_dataset_is_regional_and_sane() {
    let output = study();
    assert!(!output.datasets.latency.is_empty(), "latency probes collected");
    for rec in &output.datasets.latency {
        assert!(rec.rtt_min <= rec.rtt_median && rec.rtt_median <= rec.rtt_max);
        assert!(rec.rtt_min.as_secs_f64() > 0.005, "RTT above 5 ms");
        assert!(rec.rtt_max.as_secs_f64() < 30.0, "RTT below 30 s");
    }
    let windows = output.windows.report_windows();
    let regions = analysis::latency::by_region(&output.datasets, windows.heartbeats);
    let developed = regions
        .iter()
        .find(|r| r.region == household::Region::Developed)
        .expect("developed row");
    let developing = regions
        .iter()
        .find(|r| r.region == household::Region::Developing)
        .expect("developing row");
    assert!(developed.homes > 50 && developing.homes > 20);
    assert!(
        developing.median_rtt_ms > 1.5 * developed.median_rtt_ms,
        "the US-hosted server is farther from developing homes: {} vs {}",
        developing.median_rtt_ms,
        developed.median_rtt_ms
    );
}

#[test]
fn caps_manager_accounts_every_traffic_home() {
    let output = study();
    let windows = output.windows.report_windows();
    let plan = Plan::monthly(10 * 1_000_000_000, windows.traffic);
    let usage = account(&output.datasets, windows.traffic, &plan);
    assert!(!usage.is_empty());
    // Descending order, consistent per-device sums.
    for pair in usage.windows(2) {
        assert!(pair[0].total_bytes >= pair[1].total_bytes);
    }
    for home in &usage {
        let device_sum: u64 = home.per_device.iter().map(|(_, b)| *b).sum();
        assert_eq!(device_sum, home.total_bytes, "device breakdown must sum to total");
        // Alerts are ordered by threshold and usage at the alert is at or
        // past the mark.
        for alert in &home.alerts {
            assert!(alert.usage_bytes as f64 >= plan.cap_bytes as f64 * alert.threshold - 1.0);
        }
    }
}

#[test]
fn fingerprinting_beats_chance_on_type_labels() {
    let output = study();
    let windows = output.windows.report_windows();
    let devices = analysis::usage::fig20(&output.datasets, windows.traffic, 200 * 1024);
    // Survey-style labels: unambiguous OUI matches within each home.
    let mut labeled: Vec<(DeviceType, Features)> = Vec::new();
    for observed in &devices {
        let home = &output.homes[observed.router.0 as usize];
        let candidates: Vec<_> =
            home.devices.iter().filter(|d| d.mac.oui() == observed.device.oui).collect();
        if let [only] = candidates.as_slice() {
            labeled.push((only.kind, features(observed)));
        }
    }
    assert!(labeled.len() >= 20, "enough survey-labeled devices: {}", labeled.len());
    let eval = evaluate_labeled(&labeled, 4).expect("multiple device types present");
    assert!(
        eval.accuracy > 1.5 * eval.baseline,
        "traffic features must beat chance: {:.2} vs {:.2}",
        eval.accuracy,
        eval.baseline
    );
}

#[test]
fn collector_outage_produces_detectable_correlated_gap() {
    use collector::windows::Window;
    use simnet::time::{SimDuration, SimTime};
    // Inject a 45-minute collector outage on day 3 and confirm the
    // artifact detector finds it — and finds nothing in the clean study.
    let outage = Window {
        start: SimTime::EPOCH + SimDuration::from_days(3),
        end: SimTime::EPOCH + SimDuration::from_days(3) + SimDuration::from_mins(45),
    };
    let mut config = StudyConfig::quick(SEED, 6);
    config.collector_outages = vec![outage];
    let broken = run_study(&config);
    let span = Window { start: broken.windows.span.start, end: broken.windows.span.end };
    let flagged = analysis::artifacts::correlated_gaps(
        &broken.datasets,
        span,
        0.7,
        SimDuration::from_mins(20),
    );
    assert_eq!(flagged.len(), 1, "the injected outage must be flagged: {flagged:?}");
    let gap = flagged[0];
    assert!(gap.start >= outage.start - SimDuration::from_mins(5));
    assert!(gap.end <= outage.end + SimDuration::from_mins(5));
    // The clean shared study has no correlated gaps.
    let clean = study();
    let clean_span =
        Window { start: clean.windows.span.start, end: clean.windows.span.end };
    let clean_flags = analysis::artifacts::correlated_gaps(
        &clean.datasets,
        clean_span,
        0.7,
        SimDuration::from_mins(20),
    );
    assert!(clean_flags.is_empty(), "{clean_flags:?}");
}

#[test]
fn instrument_validation_within_tolerance() {
    let output = study();
    let report = validation::validate_availability(output, SEED);
    assert!(report.homes.len() > 100);
    assert!(
        report.mean_coverage_error < 0.03,
        "coverage error {}",
        report.mean_coverage_error
    );
    for home in &report.homes {
        // The instrument can only under-measure availability (losses), up
        // to boundary effects from boot jitter and run tolerance.
        assert!(
            home.measured_coverage <= home.true_up_fraction + 0.02,
            "{}: measured {} > true {}",
            home.router,
            home.measured_coverage,
            home.true_up_fraction
        );
    }
}

#[test]
fn handshake_classification_over_study_traffic() {
    // Re-derive connection endpoints from flow records and check the
    // handshake layer classifies fresh SYNs for them — the mechanism the
    // sim exercises for every TCP session.
    use netstack::handshake::{classify, open_connection, SegmentKind};
    use simnet::packet::{Endpoint, IpProtocol};
    use simnet::rng::DetRng;
    use simnet::time::{SimDuration, SimTime};
    let output = study();
    let mut rng = DetRng::new(5);
    let mut checked = 0;
    for flow in output.datasets.flows.iter().take(50) {
        if flow.proto != IpProtocol::Tcp {
            continue;
        }
        let client = Endpoint::new(std::net::Ipv4Addr::new(192, 168, 1, 10), 40_000);
        let server = Endpoint::new(std::net::Ipv4Addr::new(23, 64, 1, 10), flow.remote_port);
        let trace = open_connection(
            SimTime::EPOCH,
            client,
            server,
            SimDuration::from_millis(60),
            &mut rng,
        );
        let kinds: Vec<SegmentKind> = trace
            .segments
            .iter()
            .map(|(_, wire)| classify(wire).expect("valid handshake segment"))
            .collect();
        assert_eq!(kinds[0], SegmentKind::Syn);
        assert_eq!(kinds[1], SegmentKind::SynAck);
        checked += 1;
    }
    assert!(checked > 10, "TCP flows exist to check: {checked}");
}
