//! Privacy guarantees, end to end: the §3.2.2 anonymization rules must
//! hold for every record a full study uploads, and the public release must
//! exclude the Traffic data set entirely — the properties the paper's IRB
//! approval rested on.

use bismark::study::{run_study, StudyConfig, StudyOutput};
use firmware::anonymize::ReportedDomain;
use std::collections::HashSet;
use std::sync::OnceLock;

fn study() -> &'static StudyOutput {
    static STUDY: OnceLock<StudyOutput> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::quick(1606, 10)))
}

#[test]
fn no_raw_nic_bits_anywhere() {
    let output = study();
    // Ground truth: every (OUI, NIC) pair owned by any home.
    let truth: HashSet<(u32, u32)> = output
        .homes
        .iter()
        .flat_map(|h| h.devices.iter().map(|d| (d.mac.oui(), d.mac.nic())))
        .collect();
    let check = |oui: u32, suffix: u32, what: &str| {
        assert!(
            !truth.contains(&(oui, suffix)),
            "{what} carries a raw NIC suffix for OUI {oui:06x}"
        );
    };
    for r in &output.datasets.flows {
        check(r.device.oui, r.device.suffix_hash, "flow record");
    }
    for r in &output.datasets.dns {
        check(r.device.oui, r.device.suffix_hash, "dns sample");
    }
    for r in &output.datasets.macs {
        check(r.device.oui, r.device.suffix_hash, "mac sighting");
    }
    for r in &output.datasets.associations {
        check(r.device.oui, r.device.suffix_hash, "association report");
    }
}

#[test]
fn ouis_are_preserved_for_vendor_analysis() {
    // The flip side of MAC anonymization: the OUI must survive, or Fig 12
    // would be impossible.
    let output = study();
    assert!(!output.datasets.macs.is_empty());
    for r in &output.datasets.macs {
        assert!(
            household::VendorClass::from_oui(r.device.oui).is_some(),
            "sighting OUI {:06x} is not a deployed vendor",
            r.device.oui
        );
    }
}

#[test]
fn unlisted_domains_never_appear_in_clear() {
    let output = study();
    let whitelist: HashSet<String> = household::DomainUniverse::standard()
        .whitelist()
        .into_iter()
        .map(|d| d.as_str().to_string())
        .collect();
    let mut clear = 0usize;
    let mut obfuscated = 0usize;
    for flow in &output.datasets.flows {
        match &flow.domain {
            ReportedDomain::Clear(name) => {
                clear += 1;
                assert!(
                    whitelist.contains(name.as_str()),
                    "clear domain {name} is not whitelisted"
                );
            }
            ReportedDomain::Obfuscated(_) => obfuscated += 1,
        }
    }
    assert!(clear > 0, "whitelisted traffic must appear in clear");
    assert!(obfuscated > 0, "tail traffic must be obfuscated");
    for dns in &output.datasets.dns {
        if let ReportedDomain::Clear(name) = &dns.name {
            assert!(whitelist.contains(name.as_str()), "clear DNS name {name} not whitelisted");
        }
    }
}

#[test]
fn obfuscated_tokens_are_stable_within_a_home_but_not_across_homes() {
    let output = study();
    // Group tokens by (router, remote_ip_hash): the same service in the
    // same home must always produce the same token.
    use std::collections::HashMap;
    let mut per_key: HashMap<(u32, u64), HashSet<u64>> = HashMap::new();
    for flow in &output.datasets.flows {
        if let ReportedDomain::Obfuscated(token) = flow.domain {
            per_key
                .entry((flow.router.0, flow.remote_ip_hash))
                .or_default()
                .insert(token);
        }
    }
    for ((router, ip), tokens) in &per_key {
        assert!(
            tokens.len() <= 2, // IP reuse across domains is possible but rare
            "home {router} service {ip:x} produced {} distinct tokens",
            tokens.len()
        );
    }
}

#[test]
fn public_release_contains_no_traffic_artifacts() {
    let output = study();
    assert!(!output.datasets.flows.is_empty(), "precondition");
    let json = collector::export::to_json(&output.datasets).expect("serializes");
    for forbidden in ["remote_ip_hash", "suffix_hash", "bytes_down", "Obfuscated", "cname"] {
        assert!(!json.contains(forbidden), "public JSON leaks `{forbidden}`");
    }
    for (name, body) in collector::export::to_csv(&output.datasets) {
        assert!(!body.contains("anon-"), "{name} leaks domain tokens");
        assert!(!name.contains("flow") && !name.contains("traffic"), "{name} should not exist");
    }
}

#[test]
fn consent_boundary_is_absolute() {
    let output = study();
    let consenting: HashSet<u32> =
        output.datasets.routers.iter().filter(|m| m.traffic_consent).map(|m| m.router.0).collect();
    let non_consenting_with_traffic: Vec<u32> = output
        .datasets
        .flows
        .iter()
        .map(|f| f.router.0)
        .filter(|r| !consenting.contains(r))
        .collect();
    assert!(
        non_consenting_with_traffic.is_empty(),
        "traffic uploaded without consent: {non_consenting_with_traffic:?}"
    );
    // And consent implies US-only in this study window (§3.3).
    for meta in &output.datasets.routers {
        if meta.traffic_consent {
            assert_eq!(meta.country, household::Country::UnitedStates);
        }
    }
}
