//! Calibration tests: the paper's headline results, asserted as *shapes*
//! (who wins, by roughly what factor) on one shared reduced study.
//!
//! A single 24-virtual-day study of the full 126-home deployment is run
//! once and shared by every test in this binary. Absolute values are not
//! expected to match the paper (shorter window, synthetic substrate); the
//! directions and rough magnitudes are.

use analysis::StudyReport;
use bismark::study::{run_study, StudyConfig, StudyOutput};
use std::sync::OnceLock;

fn study() -> &'static (StudyOutput, StudyReport) {
    static STUDY: OnceLock<(StudyOutput, StudyReport)> = OnceLock::new();
    STUDY.get_or_init(|| {
        let output = run_study(&StudyConfig::quick(2013, 24));
        let report = output.report();
        (output, report)
    })
}

// ---- §4 Availability ----

#[test]
fn fig3_developing_sees_far_more_downtime() {
    let (_, report) = study();
    let developed = &report.fig3.developed;
    let developing = &report.fig3.developing;
    assert!(developed.len() > 60 && developing.len() > 20, "most routers analyzable");
    // Developed median: well under one downtime every 3 days; developing:
    // several per week at least.
    assert!(developed.median() < 0.34, "developed median {}", developed.median());
    assert!(developing.median() > 0.3, "developing median {}", developing.median());
    assert!(
        developing.median() > 5.0 * developed.median().max(0.02),
        "region gap must be large"
    );
}

#[test]
fn fig4_median_downtime_tens_of_minutes_developing_longer() {
    let (_, report) = study();
    let developed = report.fig4.developed.median();
    let developing = report.fig4.developing.median();
    // Median downtime is tens of minutes (paper: ~30 min), hours at most.
    assert!((10.0 * 60.0..4.0 * 3600.0).contains(&developed), "developed {developed}");
    assert!(developing > developed, "developing downtimes last longer");
}

#[test]
fn fig5_poorest_countries_have_most_downtime() {
    let (_, report) = study();
    assert!(report.fig5.len() >= 4, "several countries have >=3 routers");
    // The two lowest-GDP points are India and Pakistan, and their median
    // downtime counts top the developed countries'.
    let poorest: Vec<&str> = report.fig5.iter().take(2).map(|p| p.code).collect();
    assert!(poorest.contains(&"IN") && poorest.contains(&"PK"));
    let worst_poor = report.fig5[..2]
        .iter()
        .map(|p| p.median_downtimes)
        .fold(f64::MIN, f64::max);
    let best_rich = report
        .fig5
        .iter()
        .filter(|p| p.region == household::Region::Developed)
        .map(|p| p.median_downtimes)
        .fold(f64::MAX, f64::min);
    assert!(worst_poor > 4.0 * best_rich.max(0.5), "{worst_poor} vs {best_rich}");
}

#[test]
fn fig6_archetypes_exist() {
    let (_, report) = study();
    let (always_on, appliance, flaky) = report.fig6;
    assert!(always_on.is_some(), "an always-on exemplar exists");
    assert!(appliance.is_some(), "an appliance-mode exemplar exists");
    assert!(flaky.is_some(), "a flaky-ISP exemplar exists");
}

#[test]
fn coverage_us_high_india_lower() {
    let (_, report) = study();
    let find = |c: household::Country| {
        report
            .coverage
            .iter()
            .find(|(country, ..)| *country == c)
            .map(|(_, cov, _)| *cov)
            .expect("country present")
    };
    let us = find(household::Country::UnitedStates);
    let india = find(household::Country::India);
    // Paper: US 98.25%, India 76%.
    assert!(us > 0.93, "US coverage {us}");
    assert!(india < 0.90, "India coverage {india}");
    assert!(us > india, "US above India");
}

#[test]
fn table3_gap_between_downtimes() {
    let (_, report) = study();
    // Developed: more than two weeks between downtimes at the median
    // (paper: more than a month over the full window); developing: around
    // a day or less.
    assert!(report.table3.developed_median_time_between > simnet::time::SimDuration::from_days(14));
    assert!(report.table3.developing_median_time_between < simnet::time::SimDuration::from_days(3));
    assert!(["IN", "PK"].contains(&report.table3.worst_two[0]));
    assert!(report.table3.appliance_mode_observed);
}

// ---- §5 Infrastructure ----

#[test]
fn fig7_median_five_or_more_devices() {
    let (_, report) = study();
    assert!(report.fig7.len() > 100, "most homes censused");
    assert!(report.fig7.median() >= 5.0, "median devices {}", report.fig7.median());
    assert!(report.fig7.quantile(0.95) <= 16.0, "sane upper tail");
}

#[test]
fn fig8_developed_more_devices_more_wired() {
    let (_, report) = study();
    let fig8 = &report.fig8;
    assert!(fig8.developed.0.mean > fig8.developing.0.mean, "more wired in developed");
    assert!(fig8.developed.1.mean > fig8.developing.1.mean, "more wireless too");
    // Wireless outnumbers wired in both regions (the §5.2 result).
    assert!(fig8.developed.1.mean > fig8.developed.0.mean);
    assert!(fig8.developing.1.mean > fig8.developing.0.mean);
    // Average wired ports used is below one in both regions.
    assert!(fig8.developed.0.mean < 1.0 && fig8.developing.0.mean < 1.0);
}

#[test]
fn fig9_and_fig10_band_asymmetry() {
    let (_, report) = study();
    assert!(
        report.fig9.ghz24.mean > 1.8 * report.fig9.ghz5.mean,
        "2.4 GHz must carry far more stations: {} vs {}",
        report.fig9.ghz24.mean,
        report.fig9.ghz5.mean
    );
    // Paper: medians 5 vs 2 unique devices.
    let m24 = report.fig10.ghz24.median();
    let m5 = report.fig10.ghz5.median();
    assert!((4.0..=7.0).contains(&m24), "2.4 GHz median {m24}");
    assert!((1.0..=3.0).contains(&m5), "5 GHz median {m5}");
}

#[test]
fn fig11_ap_density_gap_and_bimodality() {
    let (_, report) = study();
    let developed = &report.fig11.developed;
    let developing = &report.fig11.developing;
    // Paper: medians ~20 vs ~2.
    assert!(developed.median() >= 10.0, "developed AP median {}", developed.median());
    assert!(developing.median() <= 6.0, "developing AP median {}", developing.median());
    assert!(developed.median() > 3.0 * developing.median().max(1.0));
    // Bimodality: in developed countries a noticeable mass sits at "very
    // few" even though the median is high.
    let low_mass = developed.fraction_at_or_below(6.0);
    assert!((0.05..0.5).contains(&low_mass), "low mode mass {low_mass}");
}

#[test]
fn fig12_apple_leads_vendor_histogram() {
    let (_, report) = study();
    assert!(report.fig12.len() >= 5, "several vendor classes observed");
    assert_eq!(report.fig12[0].0, household::VendorClass::Apple, "Apple leads");
    let total: usize = report.fig12.iter().map(|(_, n)| *n).sum();
    assert!(total >= 50, "enough Traffic-home devices: {total}");
}

#[test]
fn table5_always_connected_gap() {
    let (_, report) = study();
    let developed = report
        .table5
        .iter()
        .find(|r| r.region == household::Region::Developed)
        .expect("developed row");
    let developing = report
        .table5
        .iter()
        .find(|r| r.region == household::Region::Developing)
        .expect("developing row");
    let dev_frac = developed.wired as f64 / developed.total.max(1) as f64;
    let ding_frac = developing.wired as f64 / developing.total.max(1) as f64;
    // Paper: 43% vs 12%.
    assert!((0.25..0.65).contains(&dev_frac), "developed always-on wired {dev_frac}");
    assert!(ding_frac < 0.30, "developing always-on wired {ding_frac}");
    assert!(dev_frac > 1.5 * ding_frac.max(0.05));
}

// ---- §6 Usage ----

#[test]
fn fig13_weekday_more_diurnal_than_weekend() {
    let (_, report) = study();
    let weekday_spread = analysis::usage::Fig13::spread(&report.fig13.weekday);
    let weekend_spread = analysis::usage::Fig13::spread(&report.fig13.weekend);
    assert!(weekday_spread > weekend_spread, "{weekday_spread} vs {weekend_spread}");
    // Weekday evening (local 19–22) beats weekday afternoon (13–16).
    let evening: f64 = report.fig13.weekday[19..22].iter().sum();
    let afternoon: f64 = report.fig13.weekday[13..16].iter().sum();
    assert!(evening > afternoon, "evening {evening} vs afternoon {afternoon}");
}

#[test]
fn fig15_most_homes_lightly_used() {
    let (_, report) = study();
    assert!(report.fig15.len() >= 15, "enough Traffic homes: {}", report.fig15.len());
    let under_half = report.fig15.iter().filter(|p| p.down_utilization < 0.5).count();
    assert!(
        under_half * 2 > report.fig15.len(),
        "most homes use <50% of downlink at p95: {under_half}/{}",
        report.fig15.len()
    );
    let down_saturators = report.fig15.iter().filter(|p| p.down_utilization >= 0.95).count();
    assert!(down_saturators <= 4, "only a couple of homes saturate the downlink");
}

#[test]
fn fig16_a_few_homes_exceed_uplink_capacity() {
    let (output, report) = study();
    let over = report.fig16.len();
    assert!((1..=5).contains(&over), "oversaturating homes: {over}");
    // At least one scientific-uploader home must be among them.
    let quirky: Vec<u32> =
        output.homes.iter().filter(|h| h.quirk.is_some()).map(|h| h.id.0).collect();
    let flagged: Vec<u32> = report.fig16.iter().map(|f| f.router.0).collect();
    let caught = quirky.iter().filter(|id| flagged.contains(id)).count();
    assert!(caught >= 1, "uploader detected: quirky {quirky:?} flagged {flagged:?}");
}

#[test]
fn fig17_dominant_device_carries_most_traffic() {
    let (_, report) = study();
    // Paper: ~60% top, ~20% second.
    assert!(
        (0.45..0.75).contains(&report.fig17.mean_top_share),
        "top share {}",
        report.fig17.mean_top_share
    );
    assert!(
        (0.10..0.30).contains(&report.fig17.mean_second_share),
        "second share {}",
        report.fig17.mean_second_share
    );
}

#[test]
fn fig18_streaming_and_portal_heads_shared_across_homes() {
    let (_, report) = study();
    assert!(report.fig18.len() > 10, "a long tail of top-10 domains");
    let homes = report.fig15.len().max(10);
    // The #1 domain is top-5 in a large fraction of homes.
    assert!(
        report.fig18[0].top5_homes * 2 >= homes,
        "head domain {} only top-5 in {}/{homes}",
        report.fig18[0].domain,
        report.fig18[0].top5_homes
    );
    // And the known heavy hitters appear.
    let names: Vec<&str> = report.fig18.iter().map(|r| r.domain.as_str()).collect();
    assert!(names.contains(&"youtube.com") || names.contains(&"netflix.com"));
    // The tail is long: many domains are top-10 in only one or two homes.
    let rare = report.fig18.iter().filter(|r| r.top10_homes <= 2).count();
    assert!(rare >= 5, "tail domains: {rare}");
}

#[test]
fn fig19_volume_concentrated_connections_less_so() {
    let (_, report) = study();
    let top_volume = report.fig19.volume_share_by_rank[0];
    let top_conn = report.fig19.connection_share_by_rank[0];
    let conns_of_top_volume = report.fig19.connections_of_volume_rank[0];
    // Paper: 38% of bytes, 19% of connections (by conn rank), 14% of
    // connections for the top-by-volume domain.
    assert!((0.25..0.50).contains(&top_volume), "top volume share {top_volume}");
    assert!((0.08..0.30).contains(&top_conn), "top connection share {top_conn}");
    assert!(
        conns_of_top_volume < top_volume / 2.0,
        "top-by-volume domain must be connection-light: {conns_of_top_volume} vs {top_volume}"
    );
    // Ranks decay.
    assert!(report.fig19.volume_share_by_rank[1] < top_volume);
    // Whitelist captures roughly two thirds of bytes (paper: ~65%).
    assert!(
        (0.5..0.85).contains(&report.fig19.whitelisted_byte_fraction),
        "whitelisted fraction {}",
        report.fig19.whitelisted_byte_fraction
    );
}

#[test]
fn fig20_streamer_and_computer_differ() {
    let (_, report) = study();
    let (computer, streamer) = analysis::usage::fig20_exemplars(&report.fig20);
    let streamer = streamer.expect("a streaming box with enough traffic");
    let computer = computer.expect("a computer with enough traffic");
    // The streamer's top domain is a streaming service with a large share.
    let (top_domain, top_share) = &streamer.domains[0];
    assert!(
        ["netflix.com", "youtube.com", "hulu.com", "vimeo.com", "pandora.com", "spotify.com"]
            .contains(&top_domain.as_str())
            || top_domain.starts_with("anon-"),
        "streamer top domain {top_domain}"
    );
    assert!(*top_share > 0.2, "streamer concentration {top_share}");
    let top3: f64 = streamer.domains.iter().take(3).map(|(_, s)| s).sum();
    assert!(top3 > 0.5, "streamer top-3 domains carry most bytes: {top3}");
    // The computer's mix is broader than the streamer's.
    assert!(computer.domains.len() >= 3);
}

#[test]
fn tables_1_and_2_match_deployment() {
    let (output, report) = study();
    let total: usize = report.table1.iter().map(|r| r.routers).sum();
    assert_eq!(total, 126);
    assert_eq!(report.table1.len(), 19);
    let heartbeats = report.table2.iter().find(|r| r.dataset == "Heartbeats").unwrap();
    assert_eq!(heartbeats.routers, 126);
    assert_eq!(heartbeats.countries, 19);
    let traffic = report.table2.iter().find(|r| r.dataset == "Traffic").unwrap();
    assert_eq!(traffic.countries, 1, "Traffic homes are US-only");
    assert!((15..=40).contains(&traffic.routers), "{} traffic homes", traffic.routers);
    assert_eq!(output.datasets.routers.len(), 126);
}

#[test]
fn table6_highlights() {
    let (_, report) = study();
    let t6 = &report.table6;
    assert!(t6.weekday_spread > t6.weekend_spread);
    assert!((0.45..0.75).contains(&t6.dominant_device_share));
    assert!(t6.top_domain_volume_share > 2.0 * t6.top_domain_connection_share);
}
