//! Reproducibility guarantees: identical seeds yield bit-identical data
//! sets regardless of thread count; different seeds diverge.

use bismark::study::{run_study, StudyConfig};

#[test]
fn same_seed_same_datasets_across_thread_counts() {
    let mut single = StudyConfig::quick(99, 5);
    single.threads = 1;
    let mut many = StudyConfig::quick(99, 5);
    many.threads = 12;
    let a = run_study(&single).datasets;
    let b = run_study(&many).datasets;

    assert_eq!(a.routers, b.routers);
    assert_eq!(a.heartbeats, b.heartbeats);
    assert_eq!(a.uptime, b.uptime);
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.wifi, b.wifi);
    assert_eq!(a.associations, b.associations);
    assert_eq!(a.flows, b.flows);
    assert_eq!(a.dns, b.dns);
    assert_eq!(a.packet_stats, b.packet_stats);
    assert_eq!(a.macs, b.macs);
    // Capacity records contain floats only via u64 estimates; compare too.
    assert_eq!(a.capacity.len(), b.capacity.len());
    for (x, y) in a.capacity.iter().zip(&b.capacity) {
        assert_eq!((x.router, x.at, x.down_bps, x.up_bps), (y.router, y.at, y.down_bps, y.up_bps));
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_study(&StudyConfig::quick(1, 3)).datasets;
    let b = run_study(&StudyConfig::quick(2, 3)).datasets;
    assert_ne!(a.heartbeats, b.heartbeats, "different worlds must differ");
}

#[test]
fn report_is_deterministic() {
    let out1 = run_study(&StudyConfig::quick(7, 5));
    let out2 = run_study(&StudyConfig::quick(7, 5));
    let r1 = out1.report();
    let r2 = out2.report();
    assert_eq!(r1.render(&out1.datasets), r2.render(&out2.datasets));
}
