//! Data-set integrity tests: internal consistency constraints that must
//! hold for any study output, mirroring the sanity checks the paper's
//! authors would have run on the deployment's database.

use bismark::study::{run_study, StudyConfig, StudyOutput};
use firmware::records::RouterId;
use std::collections::HashSet;
use std::sync::OnceLock;

fn study() -> &'static StudyOutput {
    static STUDY: OnceLock<StudyOutput> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&StudyConfig::quick(4242, 10)))
}

#[test]
fn every_record_belongs_to_a_registered_router() {
    let data = &study().datasets;
    let registered: HashSet<RouterId> = data.routers.iter().map(|m| m.router).collect();
    for router in data.heartbeats.keys() {
        assert!(registered.contains(router));
    }
    for r in &data.uptime {
        assert!(registered.contains(&r.router));
    }
    for r in &data.capacity {
        assert!(registered.contains(&r.router));
    }
    for r in &data.devices {
        assert!(registered.contains(&r.router));
    }
    for r in &data.wifi {
        assert!(registered.contains(&r.router));
    }
    for r in &data.flows {
        assert!(registered.contains(&r.router));
    }
}

#[test]
fn records_fall_inside_their_windows() {
    let output = study();
    let w = &output.windows;
    for r in &output.datasets.uptime {
        assert!(w.uptime.contains(r.at), "uptime at {}", r.at);
    }
    for r in &output.datasets.capacity {
        assert!(w.capacity.contains(r.at), "capacity at {}", r.at);
    }
    for r in &output.datasets.devices {
        assert!(w.devices.contains(r.at), "census at {}", r.at);
    }
    for r in &output.datasets.wifi {
        assert!(w.wifi.contains(r.at), "scan at {}", r.at);
    }
    for r in &output.datasets.packet_stats {
        assert!(w.traffic.contains(r.at), "stats at {}", r.at);
    }
    for log in output.datasets.heartbeats.values() {
        if let Some((first, last)) = log.extent() {
            assert!(first >= w.span.start && last < w.span.end);
        }
    }
}

#[test]
fn traffic_records_only_from_consenting_homes() {
    let data = &study().datasets;
    let consenting: HashSet<RouterId> = data.traffic_routers().into_iter().collect();
    for r in &data.flows {
        assert!(consenting.contains(&r.router));
    }
    for r in &data.dns {
        assert!(consenting.contains(&r.router));
    }
    for r in &data.packet_stats {
        assert!(consenting.contains(&r.router));
    }
    for r in &data.macs {
        assert!(consenting.contains(&r.router));
    }
}

#[test]
fn census_totals_equal_association_counts() {
    let data = &study().datasets;
    // For every census instant, the association reports at that instant
    // must count exactly the devices the census tallied.
    use std::collections::HashMap;
    let mut assoc_counts: HashMap<(RouterId, simnet::time::SimTime), u32> = HashMap::new();
    for a in &data.associations {
        *assoc_counts.entry((a.router, a.at)).or_default() += 1;
    }
    for census in &data.devices {
        let n = assoc_counts.get(&(census.router, census.at)).copied().unwrap_or(0);
        assert_eq!(census.total(), n, "census/association mismatch at {}", census.at);
    }
}

#[test]
fn flows_are_time_ordered_and_positive() {
    let data = &study().datasets;
    for flow in &data.flows {
        assert!(flow.ended >= flow.started);
        assert!(flow.total_bytes() > 0, "empty flow record");
        assert!(flow.remote_port > 0);
    }
}

#[test]
fn heartbeat_runs_are_disjoint_and_ordered() {
    let data = &study().datasets;
    for log in data.heartbeats.values() {
        for pair in log.runs().windows(2) {
            assert!(pair[0].last < pair[1].first, "runs must be disjoint and ordered");
        }
        for run in log.runs() {
            assert!(run.count >= 1);
            assert!(run.last >= run.first);
        }
    }
}

#[test]
fn capacity_estimates_are_physical() {
    let output = study();
    for rec in &output.datasets.capacity {
        assert!(rec.down_bps > 100_000, "down {}", rec.down_bps);
        assert!(rec.up_bps > 50_000, "up {}", rec.up_bps);
        assert!(rec.down_bps < 1_000_000_000);
        // Home broadband of the era: downstream at least upstream-class.
        let home = &output.homes[rec.router.0 as usize];
        assert!(
            rec.down_bps as f64 <= 1.2 * home.down_link.peak_bps as f64,
            "estimate cannot exceed the physical peak"
        );
    }
}

#[test]
fn anonymization_holds_in_every_uploaded_record() {
    let output = study();
    let data = &output.datasets;
    // Ground-truth NIC bits must never appear in uploaded MACs.
    let truth: HashSet<(u32, u32)> = output
        .homes
        .iter()
        .flat_map(|h| h.devices.iter().map(|d| (d.mac.oui(), d.mac.nic())))
        .collect();
    for flow in &data.flows {
        assert!(
            !truth.contains(&(flow.device.oui, flow.device.suffix_hash)),
            "a raw NIC leaked through anonymization"
        );
    }
    // Obfuscated domains never carry a readable name.
    for dns in &data.dns {
        if let Some(name) = dns.name.clear_name() {
            assert!(!name.as_str().starts_with("tail"), "tail domains must be obfuscated");
        }
    }
}

#[test]
fn device_counts_match_ground_truth_upper_bound() {
    let output = study();
    // A census can never count more devices than the home owns.
    for census in &output.datasets.devices {
        let home = &output.homes[census.router.0 as usize];
        assert!(
            census.total() as usize <= home.devices.len(),
            "census {} exceeds owned {}",
            census.total(),
            home.devices.len()
        );
    }
}
