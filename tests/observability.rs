//! Observer-effect and metric-semantics tests for the `obs` layer.
//!
//! The instrumentation contract, clause by clause:
//!
//! * **no observer effect** — every byte of scientific output (rendered
//!   report, public data export) is identical whether metrics are collected
//!   or not; the simulation never reads a metric, so it cannot steer on one;
//! * **deterministic manifests** — `metrics.json` is byte-identical across
//!   repeat runs of the same configuration (sim-time aggregates only; the
//!   wall-clock host profile lives in the text summary, never the JSON);
//! * **metrics tell the truth** — a collector-flap fault plan must move the
//!   uploader-retry and collector-reject counters, and a fault-free run
//!   must leave them at exactly zero;
//! * **strict CLI** — a misspelled flag aborts the run with the offending
//!   flag named, instead of silently running with defaults.

use bismark::study::{run_study, StudyConfig};
use faultlab::FaultScenario;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;

/// The process-wide obs registry is shared by every `#[test]` thread in
/// this binary; tests that reset and read it must not interleave.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

const BIN: &str = env!("CARGO_BIN_EXE_bismark-study");

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("observability");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(BIN).args(args).output().expect("spawn bismark-study")
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// quick(7, 20) with metrics off, then on, then on again: the report and
/// export must not change by a single byte when instrumentation is enabled,
/// and the manifest must not change by a single byte across repeat
/// instrumented runs.
#[test]
fn instrumentation_has_no_observer_effect_and_manifests_are_deterministic() {
    let (r0, e0) = (tmp("plain.report"), tmp("plain.export"));
    let (r1, e1, m1) = (tmp("obs1.report"), tmp("obs1.export"), tmp("obs1.metrics"));
    let m2 = tmp("obs2.metrics");
    let quick = ["run", "--seed", "7", "--days", "20"];

    let base = run_cli(&[&quick[..], &["--report", r0.to_str().unwrap(), "--export", e0.to_str().unwrap()]].concat());
    assert!(base.status.success(), "plain run failed: {}", String::from_utf8_lossy(&base.stderr));

    let inst = run_cli(
        &[
            &quick[..],
            &[
                "--report",
                r1.to_str().unwrap(),
                "--export",
                e1.to_str().unwrap(),
                "--metrics",
                m1.to_str().unwrap(),
                "--metrics-text",
            ],
        ]
        .concat(),
    );
    assert!(inst.status.success(), "instrumented run failed: {}", String::from_utf8_lossy(&inst.stderr));

    let again = run_cli(&[&quick[..], &["--report", "/dev/null", "--metrics", m2.to_str().unwrap()]].concat());
    assert!(again.status.success(), "repeat run failed: {}", String::from_utf8_lossy(&again.stderr));

    assert!(read(&r0) == read(&r1), "rendered report changed when metrics were enabled");
    assert!(read(&e0) == read(&e1), "public export changed when metrics were enabled");
    assert!(read(&m1) == read(&m2), "metrics.json differs across two identical instrumented runs");

    // The manifest carries the advertised sections and the headline series.
    let manifest = String::from_utf8(read(&m1)).expect("metrics.json is UTF-8");
    for key in [
        "\"meta\"",
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"schema\"",
        "bismark-metrics/1",
        "\"packets_forwarded_total\"",
        "\"heartbeats_emitted_total\"",
        "\"dhcp_leases_total\"",
        "\"collector_accepted_total\"",
        "\"dataset_heartbeat_records\"",
        "\"flow_duration_micros\"",
        "\"home_powered_interval_micros\"",
    ] {
        assert!(manifest.contains(key), "metrics.json is missing {key}");
    }
    // Wall-clock host profiling is text-summary-only: its spans must never
    // leak into the deterministic JSON.
    assert!(!manifest.contains("wall"), "wall-clock spans leaked into metrics.json");
    let text = String::from_utf8_lossy(&inst.stderr);
    assert!(text.contains("wall-clock host profile"), "--metrics-text summary missing from stderr");
}

/// A typo'd flag must abort with the flag named, not silently run a study
/// with default settings (the old behaviour: `--exprot e.json` produced a
/// full report on stdout and no export, with exit code 0).
#[test]
fn unknown_flags_abort_with_the_flag_named() {
    let out = run_cli(&["run", "--seed", "7", "--exprot", "e.json"]);
    assert!(!out.status.success(), "unknown flag was accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--exprot"), "stderr does not name the bad flag: {stderr}");

    let out = run_cli(&["run", "--seed=7"]);
    assert!(!out.status.success(), "equals-style flag was accepted");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--seed=7"),
        "stderr does not name the bad flag"
    );
}

/// Fault injection must be visible in the metrics: a collector-flap run
/// records uploader retries and collector rejections, and the same
/// configuration without faults pins both counters at exactly zero.
#[test]
fn fault_runs_move_the_failure_counters_and_clean_runs_do_not() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    obs::reset();
    let mut faulted = StudyConfig::quick(7, 6);
    faulted.faults = Some(FaultScenario::CollectorFlap);
    let _ = run_study(&faulted);
    let snap = obs::snapshot();
    assert!(
        snap.counters["uploader_retries_total"] > 0,
        "collector flaps must force uploader retries"
    );
    assert!(
        snap.counters["collector_rejected_total"] > 0,
        "collector flaps must reject uploads during announced downtime"
    );

    obs::reset();
    let _ = run_study(&StudyConfig::quick(7, 6));
    let snap = obs::snapshot();
    assert_eq!(snap.counters["uploader_retries_total"], 0, "fault-free run saw retries");
    assert_eq!(snap.counters["collector_rejected_total"], 0, "fault-free run saw rejections");
    // The clean run still does real work; spot-check a throughput counter.
    assert!(snap.counters["heartbeats_emitted_total"] > 0);
    assert!(snap.counters["packets_forwarded_total"] > 0);
}

/// `reset()` zeroes values but keeps the registered key set, so manifests
/// from consecutive in-process runs always expose the same series.
#[test]
fn key_set_is_stable_across_runs() {
    let _guard = METRICS_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    obs::reset();
    let _ = run_study(&StudyConfig::quick(3, 5));
    let first: Vec<String> = obs::snapshot().counters.keys().cloned().collect();

    obs::reset();
    let _ = run_study(&StudyConfig::quick(11, 5));
    let second: Vec<String> = obs::snapshot().counters.keys().cloned().collect();

    assert_eq!(first, second, "counter key set depends on the run");
    assert!(!first.is_empty());
}
