//! Out-of-core spill, end to end: the full quick study run under a tight
//! `--spill-budget` must be observationally identical to the unbounded
//! in-memory run — byte-identical rendered report and byte-identical
//! public-release export — while actually sealing segments to disk.

use bismark::study::{run_study, StudyConfig};
use collector::SpillConfig;

#[test]
fn spilled_quick_study_report_and_export_are_byte_identical() {
    let unbounded = run_study(&StudyConfig::quick(7, 20));
    let mut config = StudyConfig::quick(7, 20);
    // ~1 MiB across 128 shards: every active traffic shard seals multiple
    // segment generations over 20 virtual days.
    config.spill = Some(SpillConfig { budget_bytes: 1 << 20, dir: None });
    let spilled = run_study(&config);

    let stats = spilled.spill.as_ref().expect("spill stats present when armed");
    assert!(stats.segments > 0, "a 1 MiB budget must force segment seals");
    assert!(stats.bytes_written > 0);
    assert_eq!(stats.error, None, "segment I/O must not fail");
    assert_eq!(unbounded.spill, None, "unarmed run must not report spill stats");
    assert!(
        spilled.datasets.spilled_bytes() > 0,
        "merged data sets must be backed by on-disk segments"
    );
    assert_eq!(unbounded.datasets.spilled_bytes(), 0);

    let report_memory = unbounded.report().render(&unbounded.datasets);
    let report_spilled = spilled.report().render(&spilled.datasets);
    assert_eq!(report_memory, report_spilled, "reports must match byte for byte");

    let export_memory = collector::export::to_json(&unbounded.datasets).expect("export");
    let export_spilled = collector::export::to_json(&spilled.datasets).expect("export");
    assert_eq!(export_memory, export_spilled, "JSON exports must match byte for byte");

    let csv_memory = collector::export::to_csv(&unbounded.datasets);
    let csv_spilled = collector::export::to_csv(&spilled.datasets);
    assert_eq!(csv_memory, csv_spilled, "CSV exports must match byte for byte");
}

/// Same property with the CGN tier armed: the NAT probe and punch-trial
/// tables ride the spill path too, so a 1 MiB budget must leave the
/// rendered report — including its NAT characterization section — byte
/// for byte identical to the unbounded run.
#[test]
fn spilled_cgn_study_report_is_byte_identical() {
    let days = 10;
    let mut unbounded_cfg = StudyConfig::quick(7, days);
    unbounded_cfg.cgn = Some(cgn::CgnScenario::IspMix);
    let unbounded = run_study(&unbounded_cfg);

    let mut spilled_cfg = StudyConfig::quick(7, days);
    spilled_cfg.cgn = Some(cgn::CgnScenario::IspMix);
    spilled_cfg.spill = Some(SpillConfig { budget_bytes: 1 << 20, dir: None });
    let spilled = run_study(&spilled_cfg);

    let stats = spilled.spill.as_ref().expect("spill stats present when armed");
    assert!(stats.segments > 0, "a 1 MiB budget must force segment seals");
    assert_eq!(stats.error, None, "segment I/O must not fail");
    assert!(!spilled.datasets.nat_probes.is_empty(), "armed run must collect NAT probes");

    let report_memory = unbounded.report().render(&unbounded.datasets);
    let report_spilled = spilled.report().render(&spilled.datasets);
    assert!(
        report_memory.contains("NAT characterization"),
        "armed report must include the NAT section"
    );
    assert_eq!(report_memory, report_spilled, "CGN reports must match byte for byte");

    let export_memory = collector::export::to_json(&unbounded.datasets).expect("export");
    let export_spilled = collector::export::to_json(&spilled.datasets).expect("export");
    assert_eq!(export_memory, export_spilled, "JSON exports must match byte for byte");
}
