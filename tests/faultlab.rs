//! End-to-end tests for the fault-injection subsystem and the reliable
//! store-and-forward upload pipeline.
//!
//! The contract under test, scenario by scenario:
//!
//! * no faults → the upload queue is disengaged and nothing changes;
//!   engaging the queue *without* faults still yields identical datasets
//!   (the pipeline is lossless, not merely usually-lossless);
//! * `lossy-wan` → retries absorb every WAN loss: datasets byte-identical
//!   to the fault-free run;
//! * `collector-flap` → zero batch records lost, the announced downtime is
//!   recorded exactly, only heartbeat datagrams die — and the artifacts
//!   detector finds the outages from the data alone;
//! * `router-churn` → flash wipes destroy data but every loss is accounted
//!   on the gap ledger.

use bismark::homesim::{HomeSim, SimParams};
use bismark::study::{run_study, StudyConfig, StudyWindows};
use collector::windows::Window;
use collector::{Collector, RouterMeta};
use faultlab::FaultScenario;
use firmware::records::RouterId;
use household::domains::DomainUniverse;
use household::Country;
use simnet::time::{SimDuration, SimTime};

fn quick(seed: u64, days: u64, faults: Option<FaultScenario>) -> StudyConfig {
    let mut config = StudyConfig::quick(seed, days);
    config.faults = faults;
    config
}

/// The store-and-forward queue without any faults is invisible: one home
/// run through the uploader produces byte-identical datasets to the legacy
/// direct-flush path.
#[test]
fn unfaulted_upload_queue_is_invisible() {
    let universe = DomainUniverse::standard();
    let zone = universe.build_zone();
    let windows = StudyWindows::scaled(Window {
        start: SimTime::EPOCH,
        end: SimTime::EPOCH + SimDuration::from_days(8),
    });
    let root = simnet::rng::DetRng::new(5);
    let cfg = household::HomeConfig::sample(
        household::HomeId(1),
        Country::UnitedStates,
        &root.derive("h"),
    );
    let run = |reliable_upload: bool| {
        let collector = Collector::new();
        collector.register(RouterMeta {
            router: RouterId(1),
            country: cfg.country,
            traffic_consent: cfg.traffic_consent,
        });
        HomeSim::new(SimParams {
            cfg: &cfg,
            universe: &universe,
            zone: &zone,
            windows: &windows,
            seed: 5,
            reliable_upload,
            faults: None,
            cgn: None,
        })
        .run(&collector);
        collector.snapshot()
    };
    let direct = run(false);
    let queued = run(true);
    assert!(direct == queued, "upload queue changed the data");
    assert!(queued.upload_gaps.is_empty());
}

#[test]
fn lossy_wan_delivers_everything() {
    let baseline = run_study(&quick(7, 6, None));
    let lossy = run_study(&quick(7, 6, Some(FaultScenario::LossyWan)));
    assert!(!lossy.fault_plan.is_empty());
    // Retries happened — the impairment was real...
    assert!(lossy.upload_counters.accepted > 0);
    assert!(
        lossy.upload_counters.retried_accepted > 0,
        "lossy WAN must force at least one retry: {:?}",
        lossy.upload_counters
    );
    // ...and absorbed: every table, byte for byte.
    assert!(baseline.datasets == lossy.datasets, "lossy WAN lost or altered records");
}

#[test]
fn collector_flap_loses_no_batch_records_and_ledgers_downtime_exactly() {
    let baseline = run_study(&quick(7, 6, None));
    let flap = run_study(&quick(7, 6, Some(FaultScenario::CollectorFlap)));
    let plan = &flap.fault_plan;
    assert!(plan.collector_downtime.len() >= 2);
    // The announced downtime is recorded in the datasets exactly as
    // injected — this is the gap ledger for infrastructure outages.
    assert_eq!(flap.datasets.collector_downtime, plan.collector_downtime);
    // Batch uploads were nacked during downtime and retried to success:
    // zero loss, so every batch-carried table matches the baseline.
    assert!(flap.upload_counters.rejected > 0, "{:?}", flap.upload_counters);
    assert!(flap.upload_counters.retried_accepted > 0);
    assert!(flap.datasets.upload_gaps.is_empty(), "no batch data may be lost");
    assert_eq!(baseline.datasets.uptime, flap.datasets.uptime);
    assert_eq!(baseline.datasets.capacity, flap.datasets.capacity);
    assert_eq!(baseline.datasets.devices, flap.datasets.devices);
    assert_eq!(baseline.datasets.wifi, flap.datasets.wifi);
    assert_eq!(baseline.datasets.associations, flap.datasets.associations);
    assert_eq!(baseline.datasets.flows, flap.datasets.flows);
    assert_eq!(baseline.datasets.dns, flap.datasets.dns);
    assert_eq!(baseline.datasets.macs, flap.datasets.macs);
    assert_eq!(baseline.datasets.packet_stats, flap.datasets.packet_stats);
    assert_eq!(baseline.datasets.latency, flap.datasets.latency);
    // Heartbeat datagrams are the one casualty.
    assert!(flap.dropped_in_downtime > 0);
    let base_beats: u64 =
        baseline.datasets.heartbeats.values().map(|l| l.total_heartbeats()).sum();
    let flap_beats: u64 = flap.datasets.heartbeats.values().map(|l| l.total_heartbeats()).sum();
    assert_eq!(base_beats, flap_beats + flap.dropped_in_downtime);
}

#[test]
fn collector_flap_outages_are_detectable_from_data_alone() {
    let flap = run_study(&quick(7, 6, Some(FaultScenario::CollectorFlap)));
    let flagged = analysis::artifacts::correlated_gaps(
        &flap.datasets,
        flap.windows.span,
        0.8,
        SimDuration::from_mins(15),
    );
    let score = analysis::artifacts::score_against_truth(
        &flagged,
        &flap.fault_plan.collector_downtime,
        SimDuration::from_mins(5),
    );
    assert!(score.precision >= 0.9, "precision {:.2}: {flagged:?}", score.precision);
    assert!(
        score.recall >= 0.9,
        "recall {:.2} ({} of {} missed)",
        score.recall,
        score.missed,
        flap.fault_plan.collector_downtime.len()
    );
}

#[test]
fn router_churn_accounts_every_wipe_on_the_gap_ledger() {
    let churn = run_study(&quick(7, 6, Some(FaultScenario::RouterChurn)));
    let wipes = churn.fault_plan.flash_wipe_count();
    assert!(wipes > 0, "scenario must inject flash wipes");
    assert!(!churn.datasets.upload_gaps.is_empty(), "wipes must appear on the ledger");
    for gap in &churn.datasets.upload_gaps {
        assert!(gap.last_seq >= gap.first_seq);
        assert!(gap.to >= gap.from);
        // Every ledger entry names a router the plan actually afflicts.
        assert!(
            churn.fault_plan.for_router(gap.router).is_some(),
            "ledger names unafflicted router {:?}",
            gap.router
        );
    }
    // Wipes only destroy spooled/unsealed data; everything that survived
    // the reboots was still delivered (no silent loss on top of the
    // declared one).
    assert!(churn.upload_counters.accepted > 0);
    assert_eq!(churn.upload_counters.duplicates, 0);
}

#[test]
fn faulted_studies_are_deterministic_across_thread_counts() {
    let mut a_cfg = quick(3, 5, Some(FaultScenario::CollectorFlap));
    a_cfg.threads = 1;
    let mut b_cfg = quick(3, 5, Some(FaultScenario::CollectorFlap));
    b_cfg.threads = 8;
    let a = run_study(&a_cfg);
    let b = run_study(&b_cfg);
    assert!(a.datasets == b.datasets);
    assert_eq!(a.upload_counters, b.upload_counters);
    assert_eq!(a.dropped_in_downtime, b.dropped_in_downtime);
    assert_eq!(a.fault_plan, b.fault_plan);
}
